//! Offline shim of the `crossbeam` 0.8 API surface used by the s2c2
//! workspace: MPMC channels with bounded/unbounded capacity, timeouts, and
//! disconnect semantics matching upstream (`recv` fails only once the
//! channel is both disconnected and drained).
//!
//! Implemented on `std::sync` primitives (`Mutex` + two `Condvar`s), which
//! is more than adequate for the workspace's one-message-per-task master /
//! worker traffic. Swapping in the real crate is a manifest-only change.

pub mod channel {
    //! MPMC channels mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending side of a channel. Clonable; the channel disconnects when
    /// every `Sender` has been dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving side of a channel. Clonable; the channel disconnects when
    /// every `Receiver` has been dropped.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like upstream: the message itself need not be Debug.
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is
    /// disconnected and drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is disconnected and drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is disconnected and drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while `cap` messages
    /// are in flight.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message back when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                // Wake receivers so they can observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails once the channel is disconnected **and** drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the deadline passes;
        /// [`RecvTimeoutError::Disconnected`] once the channel is
        /// disconnected and drained.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("channel poisoned");
                inner = guard;
                if res.timed_out() && inner.queue.is_empty() {
                    if inner.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns a queued message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued;
        /// [`TryRecvError::Disconnected`] once the channel is disconnected
        /// and drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// `true` when no messages are queued.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                // Wake senders blocked on a full bounded channel.
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn round_trip() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn recv_after_sender_drop_drains_then_errors() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded::<u64>(4);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn try_recv_empty_vs_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
