//! Offline shim of the `rand` 0.8 API surface used by the s2c2 workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a drop-in, API-compatible subset of `rand` 0.8:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded via SplitMix64, not ChaCha12 like upstream;
//!   stream values therefore differ from upstream `rand`, which no code in
//!   this workspace depends on — only determinism per seed).
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive ranges over the
//!   float and integer types the workspace samples), `gen_bool`, `fill`.
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`.
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! Replacing this shim with the real crate is a one-line change in the
//! workspace manifest once a registry is reachable; no call site changes.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from its full domain (the subset of
/// `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn from, uniformly (the subset of
/// `rand::distributions::uniform::SampleRange` the workspace uses).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` via rejection sampling (no modulo bias).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    // 64 bits of entropy per draw is plenty: every bound in this workspace
    // fits in u64.
    let bound64 = bound as u64;
    let zone = u64::MAX - (u64::MAX % bound64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % bound64) as u128;
        }
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills `dest` with values drawn from the standard distribution.
    fn fill<T: Standard + Copy>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for v in dest {
            *v = T::sample_standard(self);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (expanded internally).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator seeded from operating-system entropy.
    ///
    /// This shim has no OS entropy source; it mixes the current time, which
    /// is sufficient for the non-reproducible paths that call it.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(t)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++; upstream uses
    /// ChaCha12 — streams differ, determinism per seed is identical).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                return StdRng::from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A convenience whole-crate RNG seeded from entropy (`rand::thread_rng`
/// equivalent, minus thread-local caching).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(42);
        let mut b = super::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f64 = rng.gen_range(0.5..=2.0);
            assert!((0.5..=2.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_int_in_bounds_and_covers() {
        let mut rng = super::rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(3usize..=3);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = super::rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = super::rngs::StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
