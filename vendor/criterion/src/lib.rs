//! Offline shim of the `criterion` 0.5 API surface used by the s2c2
//! workspace: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples (default 10) of adaptively-batched iterations, and
//! the per-iteration median / min / max are printed. There are no plots,
//! baselines, or statistical regression tests — `cargo bench` stays useful
//! for relative comparisons, and `cargo bench --no-run` keeps the benches
//! compiling in CI, which is what the workspace relies on.

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark's (group-qualified) name; mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from just a parameter (the common in-group form).
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of an
    /// adaptively-chosen batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: aim for ≥ ~1 ms per sample so the clock
        // resolution never dominates, but never run a single payload more
        // than necessary (figure sweeps take seconds each).
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let batch = if once >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&self, label: &str) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "bench {label:<50} median {:>12?}  (min {:?}, max {:?}, n={})",
            median,
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len()
        );
        Some(median)
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    measurements: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequently created benches.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Every `(label, median)` recorded so far, in run order.
    ///
    /// Extension over upstream criterion: custom `harness = false` drivers
    /// use this to compute speedup ratios and persist committed regression
    /// baselines (e.g. `BENCH_KERNELS.json`) without re-parsing stdout.
    #[must_use]
    pub fn measurements(&self) -> &[(String, Duration)] {
        &self.measurements
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        if let Some(median) = b.report(name) {
            self.measurements.push((name.to_string(), median));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        if let Some(median) = b.report(&label) {
            self.criterion.measurements.push((label, median));
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id);
        if let Some(median) = b.report(&label) {
            self.criterion.measurements.push((label, median));
        }
        self
    }

    /// Ends the group (drop would do; kept for source compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function; mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes the binary with `--test`; the
            // benches are compile-checked but not timed in that mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
