//! Offline shim of the `proptest` 1.x API surface used by the s2c2
//! workspace: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `any`, `Just`, weighted
//! `prop_oneof!`, `collection::vec`, `prop_assert*` / `prop_assume!`, and a
//! deterministic `TestRunner`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** On failure the macro panics with the case number and
//!   the `Debug` rendering of every generated input, which (with the
//!   deterministic runner) is reproducible but not minimal.
//! * **Deterministic by default.** Every test function seeds its own
//!   generator from the test name, so failures reproduce without a
//!   persistence file.
//! * `PROPTEST_CASES` overrides the per-suite case count, exactly like
//!   upstream — CI uses this to cap runtime.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Something usable as a length specification for [`vec()`]: a fixed
    /// `usize` or a (half-open / inclusive) range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, runner: &mut TestRunner) -> usize {
            runner.gen_usize_range(self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, runner: &mut TestRunner) -> usize {
            runner.gen_usize_range(*self.start(), *self.end())
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length comes from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = self.size.sample_len(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case fails with the formatted message (no process abort mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case (it is retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks among several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`). All arms must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The property-test harness macro. Mirrors upstream's surface for blocks
/// of `#[test]` functions whose arguments are `name in strategy` pairs,
/// with an optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.effective_cases();
                let mut runner =
                    $crate::test_runner::TestRunner::deterministic_for(stringify!($name));
                let mut executed = 0u32;
                let mut attempts = 0u32;
                // Rejected cases (prop_assume) do not count toward `cases`,
                // but a runaway rejection rate must not loop forever.
                while executed < cases && attempts < cases.saturating_mul(10).max(100) {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {} of `{}` failed: {}\ninputs: {:#?}",
                                executed,
                                stringify!($name),
                                msg,
                                ($(&$arg,)+)
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
