//! Test execution state: configuration, case errors, and the RNG-bearing
//! runner (the `proptest::test_runner` subset).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-suite configuration; `ProptestConfig` in the prelude.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (used by CI to cap suite runtime).
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Carries the generator state across a test's cases.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Runner with a fixed seed — `TestRunner::deterministic()` upstream.
    #[must_use]
    pub fn deterministic() -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0x5EED_CAFE_F00D_D00D),
        }
    }

    /// Runner seeded deterministically from a label (the test name), so
    /// every test gets an independent but reproducible stream.
    #[must_use]
    pub fn deterministic_for(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Runner honouring `config` (the config carries no RNG state in this
    /// shim, so this is `deterministic()`).
    #[must_use]
    pub fn new(_config: Config) -> Self {
        Self::deterministic()
    }

    /// Raw 64 random bits.
    pub fn gen_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64_below(0)");
        self.rng.gen_range(0..bound)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn gen_usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `u64` in `[lo, hi]`.
    pub fn gen_u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `u32` in `[lo, hi]`.
    pub fn gen_u32_range(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `i32` in `[lo, hi]`.
    pub fn gen_i32_range(&mut self, lo: i32, hi: i32) -> i32 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `i64` in `[lo, hi]`.
    pub fn gen_i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng
            .gen_range(lo..hi.max(lo + f64::EPSILON * lo.abs().max(1.0)))
    }
}
