//! Value-generation strategies (the `proptest::strategy` subset).

use crate::test_runner::TestRunner;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A way to generate values of one type.
///
/// Unlike upstream there is no shrinking: a strategy is just a generator.
/// [`Strategy::new_tree`] exists for source compatibility and returns a
/// tree whose `current()` is one generated value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }

    /// Generates one value wrapped in a [`ValueTree`] (source
    /// compatibility with upstream's `Strategy::new_tree`).
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors upstream.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SimpleTree<Self::Value>, String>
    where
        Self: Sized,
    {
        Ok(SimpleTree(self.generate(runner)))
    }
}

/// A generated value plus (upstream) its shrink state; here just the value.
pub trait ValueTree {
    /// The type of the held value.
    type Value;

    /// Returns the current value.
    fn current(&self) -> Self::Value;
}

/// Trivial [`ValueTree`] holding one generated value.
pub struct SimpleTree<T>(T);

impl<T: Clone> ValueTree for SimpleTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

/// Always produces a clone of one value; mirrors `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// Weighted choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.gen_u64_below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(runner);
            }
            pick -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty => $gen:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                runner.$gen(self.start, self.end - 1)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                runner.$gen(*self.start(), *self.end())
            }
        }
    )*};
}
impl_range_strategy_int!(usize => gen_usize_range, u64 => gen_u64_range, u32 => gen_u32_range, i32 => gen_i32_range, i64 => gen_i64_range);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        runner.gen_f64_range(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.gen_f64_range(*self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-domain strategy (the `any::<T>()` subset).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite values only; keeps numeric properties meaningful.
        runner.gen_f64_range(-1.0e9, 1.0e9)
    }
}

/// Strategy over a type's full domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Mirrors `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
