//! The complete paper pipeline in one test: generate cloud traces, train
//! the LSTM forecaster, deploy it inside the S²C² scheduler on a cloud
//! cluster, and train a model — prediction, coding, scheduling and
//! workload layers working together.

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_predict::lstm::{train, LstmConfig};
use s2c2_trace::{CloudTraceConfig, TraceSet};
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::exec::ExecConfig;
use s2c2_workloads::logreg::DistributedLogReg;

#[test]
fn lstm_trained_on_traces_drives_s2c2_training_run() {
    // 1. Measurement campaign (substitute): generate traces.
    let preset = CloudTraceConfig::paper();
    let traces = TraceSet::generate(&preset, 16, 140, 0xE2E);
    let series: Vec<Vec<f64>> = traces
        .traces()
        .iter()
        .map(|t| t.samples().to_vec())
        .collect();
    let refs: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();

    // 2. Train the paper's LSTM (1 -> 4 -> 1).
    let model = train(
        &LstmConfig {
            epochs: 12,
            ..LstmConfig::default()
        },
        &refs,
    );
    assert_eq!(model.param_count(), 101, "paper-sized model");

    // 3. Deploy in S2C2 on a cloud cluster and train logistic regression.
    let data = gisette_like(840, 36, 0xE2E);
    let cluster = ClusterSpec::builder(12)
        .compute_bound()
        .seed(0xE2E)
        .cloud(&preset)
        .build();
    let cfg = ExecConfig::new(MdsParams::new(12, 9), cluster)
        .strategy(StrategyKind::S2c2General)
        .predictor(PredictorSource::Prototype(Box::new(model.online())))
        .chunks_per_worker(12);
    let mut lr = DistributedLogReg::new(&data, &cfg, 0.5, 1e-4).unwrap();

    let initial_loss = lr.loss();
    let mut final_report = None;
    for _ in 0..12 {
        final_report = Some(lr.step().unwrap());
    }
    let report = final_report.unwrap();

    // The model learned...
    assert!(
        report.loss < initial_loss * 0.7,
        "loss should drop: {initial_loss} -> {}",
        report.loss
    );
    assert!(report.accuracy > 0.8, "accuracy {}", report.accuracy);
    // ...and the scheduler did useful adaptive work.
    assert!(lr.total_latency() > 0.0);
    let wasted =
        lr.forward_metrics().total_wasted_rows() + lr.backward_metrics().total_wasted_rows();
    let computed: usize = lr
        .forward_metrics()
        .rounds()
        .iter()
        .chain(lr.backward_metrics().rounds())
        .flat_map(|r| r.computed_rows.iter())
        .sum();
    assert!(
        (wasted as f64) < 0.25 * computed as f64,
        "waste should be a small fraction: {wasted} of {computed}"
    );
}

#[test]
fn conservative_code_with_s2c2_beats_aggressive_code_against_surprise_stragglers() {
    // The paper's closing argument: pick high redundancy, let S2C2 squeeze
    // the slack. (12,6)+S2C2 must beat (12,10) conventional MDS when 3
    // stragglers appear (beyond (12,10)'s tolerance) AND stay close when
    // none do.
    let data = gisette_like(960, 48, 0xE2F);
    let run = |kind: StrategyKind, params: MdsParams, stragglers: &[usize]| {
        let cluster = ClusterSpec::builder(12)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(stragglers, 0.15)
            .build();
        let cfg = ExecConfig::new(params, cluster)
            .strategy(kind)
            .predictor(PredictorSource::LastValue)
            .chunks_per_worker(12);
        let mut lr = DistributedLogReg::new(&data, &cfg, 0.5, 0.0).unwrap();
        for _ in 0..8 {
            lr.step().unwrap();
        }
        lr.total_latency()
    };

    // Surprise: 3 stragglers. (12,10)-MDS collapses; (12,6)+S2C2 doesn't.
    let mds_aggressive = run(StrategyKind::MdsCoded, MdsParams::new(12, 10), &[1, 5, 9]);
    let s2c2_conservative = run(StrategyKind::S2c2General, MdsParams::new(12, 6), &[1, 5, 9]);
    assert!(
        s2c2_conservative < mds_aggressive * 0.5,
        "s2c2 {s2c2_conservative} vs collapsed mds {mds_aggressive}"
    );

    // Healthy cluster: the conservative code costs little extra.
    let mds_aggressive_0 = run(StrategyKind::MdsCoded, MdsParams::new(12, 10), &[]);
    let s2c2_conservative_0 = run(StrategyKind::S2c2General, MdsParams::new(12, 6), &[]);
    assert!(
        s2c2_conservative_0 < mds_aggressive_0 * 1.15,
        "healthy: s2c2 {s2c2_conservative_0} vs mds {mds_aggressive_0}"
    );
}
