//! Cross-crate integration: every scheduling strategy, on every workload
//! family, must produce numerically exact results under any straggler
//! pattern — the paper's robustness claim (§4.4) as an executable test.

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_core::CodedJobBuilder;
use s2c2_linalg::{Matrix, Vector};
use s2c2_trace::CloudTraceConfig;
use s2c2_workloads::datasets::{gisette_like, power_law_graph};
use s2c2_workloads::exec::ExecConfig;
use s2c2_workloads::logreg::DistributedLogReg;
use s2c2_workloads::pagerank::DistributedPageRank;
use s2c2_workloads::svm::DistributedSvm;

fn controlled(n: usize, stragglers: &[usize]) -> ClusterSpec {
    ClusterSpec::builder(n)
        .compute_bound()
        .straggler_slowdown(5.0)
        .stragglers(stragglers, 0.2)
        .build()
}

#[test]
fn every_strategy_is_exact_under_every_straggler_count() {
    let a = Matrix::from_fn(720, 24, |r, c| ((r * 7 + c * 3) % 19) as f64 - 9.0);
    let x = Vector::from_fn(24, |i| (i as f64 * 0.37).cos() + 1.1);
    let expect = a.matvec(&x);
    for kind in StrategyKind::all() {
        for stragglers in [0usize, 1, 3, 5] {
            let ids: Vec<usize> = (0..stragglers).map(|i| (i * 5 + 1) % 12).collect();
            let mut job = CodedJobBuilder::new(a.clone(), MdsParams::new(12, 6))
                .chunks_per_worker(12)
                .strategy(kind)
                .build(controlled(12, &ids))
                .unwrap_or_else(|e| panic!("{kind}/{stragglers}: {e}"));
            for iter in 0..4 {
                let out = job
                    .run_iteration(&x)
                    .unwrap_or_else(|e| panic!("{kind}/{stragglers}/iter{iter}: {e}"));
                s2c2_linalg::assert_slices_close(out.result.as_slice(), expect.as_slice(), 1e-6);
                assert!(out.metrics.conserves_work(), "{kind}: work conservation");
            }
        }
    }
}

#[test]
fn misprediction_storm_never_corrupts_results() {
    // Uniform predictor (always wrong about everything) on a volatile
    // cloud: latency may suffer, correctness must not.
    let a = Matrix::from_fn(980, 20, |r, c| ((r + c * 11) % 17) as f64 * 0.5);
    let x = Vector::filled(20, 0.7);
    let expect = a.matvec(&x);
    let cluster = ClusterSpec::builder(10)
        .compute_bound()
        .seed(13)
        .cloud(&CloudTraceConfig::volatile())
        .build();
    let mut job = CodedJobBuilder::new(a, MdsParams::new(10, 7))
        .chunks_per_worker(14)
        .strategy(StrategyKind::S2c2General)
        .predictor(PredictorSource::Uniform)
        .build(cluster)
        .unwrap();
    for _ in 0..12 {
        let out = job.run_iteration(&x).unwrap();
        s2c2_linalg::assert_slices_close(out.result.as_slice(), expect.as_slice(), 1e-6);
    }
}

#[test]
fn logreg_and_svm_reach_the_same_model_on_different_strategies() {
    let data = gisette_like(240, 16, 99);
    let mut weights: Vec<Vec<f64>> = Vec::new();
    for kind in [
        StrategyKind::MdsCoded,
        StrategyKind::S2c2General,
        StrategyKind::Replication,
    ] {
        let cfg = ExecConfig::new(MdsParams::new(12, 6), controlled(12, &[4]))
            .strategy(kind)
            .chunks_per_worker(6);
        let mut lr = DistributedLogReg::new(&data, &cfg, 0.4, 1e-3).unwrap();
        for _ in 0..5 {
            lr.step().unwrap();
        }
        weights.push(lr.weights().as_slice().to_vec());
    }
    for w in &weights[1..] {
        s2c2_linalg::assert_slices_close(w, &weights[0], 1e-6);
    }

    // SVM likewise.
    let mut svm_weights: Vec<Vec<f64>> = Vec::new();
    for kind in [StrategyKind::Uncoded, StrategyKind::S2c2Basic] {
        let cfg = ExecConfig::new(MdsParams::new(12, 6), controlled(12, &[]))
            .strategy(kind)
            .chunks_per_worker(6);
        let mut svm = DistributedSvm::new(&data, &cfg, 0.2, 1e-3).unwrap();
        for _ in 0..5 {
            svm.step().unwrap();
        }
        svm_weights.push(svm.weights().as_slice().to_vec());
    }
    s2c2_linalg::assert_slices_close(&svm_weights[1], &svm_weights[0], 1e-6);
}

#[test]
fn pagerank_converges_identically_across_engines_and_strategies() {
    let graph = power_law_graph(300, 3, 21);
    let mut ranks: Vec<Vec<f64>> = Vec::new();
    for kind in [StrategyKind::MdsCoded, StrategyKind::S2c2General] {
        let cfg = ExecConfig::new(MdsParams::new(12, 6), controlled(12, &[2, 8]))
            .strategy(kind)
            .chunks_per_worker(10);
        let mut pr = DistributedPageRank::new(&graph, &cfg, 0.85).unwrap();
        let iters = pr.run_to_convergence(1e-10, 120).unwrap();
        assert!(iters < 120, "{kind} should converge");
        ranks.push(pr.rank().as_slice().to_vec());
    }
    s2c2_linalg::assert_slices_close(&ranks[1], &ranks[0], 1e-7);
}

#[test]
fn s2c2_latency_beats_conventional_mds_with_stragglers_present() {
    // The headline claim end-to-end: same data, same cluster, S2C2 on a
    // conservative code beats conventional MDS on the same code.
    let data = gisette_like(1200, 60, 7);
    let mut latencies = Vec::new();
    for kind in [StrategyKind::MdsCoded, StrategyKind::S2c2General] {
        let cfg = ExecConfig::new(MdsParams::new(12, 6), controlled(12, &[3]))
            .strategy(kind)
            .predictor(PredictorSource::LastValue)
            .chunks_per_worker(12);
        let mut lr = DistributedLogReg::new(&data, &cfg, 0.5, 0.0).unwrap();
        for _ in 0..8 {
            lr.step().unwrap();
        }
        latencies.push(lr.total_latency());
    }
    assert!(
        latencies[1] < latencies[0] * 0.8,
        "s2c2 {} should clearly beat mds {}",
        latencies[1],
        latencies[0]
    );
}
