//! End-to-end coded computing on the *real* threaded executor: OS-thread
//! workers, crossbeam message passing, injected slowdowns, fastest-k
//! collection, decode — validating that the strategy logic survives true
//! concurrency (out-of-order completion, late straggler replies).

use s2c2_cluster::threaded::{spin_delay_micros, ThreadedCluster};
use s2c2_coding::chunks::WorkerChunkResult;
use s2c2_coding::mds::{MdsCode, MdsParams};
use s2c2_linalg::{Matrix, Vector};
use std::sync::Arc;
use std::time::Duration;

/// Task: compute the given chunks of the worker's own coded partition.
#[derive(Debug)]
struct ChunkTask {
    chunks: Vec<usize>,
    x: Arc<Vector>,
}

/// Intra-worker data parallelism: each simulated worker splits its rows
/// over this many OS threads via `s2c2_linalg::parallel` (the same knob
/// the serve engine's compute model charges for).
const WORKER_THREADS: usize = 2;

fn spawn_coded_cluster(
    enc: Arc<s2c2_coding::mds::EncodedMatrix>,
    slow_workers: &[usize],
) -> ThreadedCluster<ChunkTask, Vec<WorkerChunkResult>> {
    let slow: Vec<usize> = slow_workers.to_vec();
    let n = enc.params().n;
    ThreadedCluster::spawn(n, move |worker| {
        let enc = Arc::clone(&enc);
        let is_slow = slow.contains(&worker);
        move |task: ChunkTask| {
            if is_slow {
                // 5x-ish slowdown via busy wait per chunk.
                spin_delay_micros(4_000 * task.chunks.len() as u64);
            }
            enc.worker_compute_chunks_par(worker, &task.chunks, &task.x, WORKER_THREADS)
        }
    })
}

#[test]
fn fastest_k_of_n_decode_on_real_threads() {
    let (n, k, chunks) = (8usize, 5usize, 4usize);
    let a = Matrix::from_fn(400, 12, |r, c| ((r * 3 + c * 5) % 13) as f64 - 6.0);
    let code = MdsCode::new(MdsParams::new(n, k)).unwrap();
    let enc = Arc::new(code.encode(&a, chunks).unwrap());
    let x = Arc::new(Vector::from_fn(12, |i| 0.5 + i as f64 * 0.25));
    let expect = a.matvec(&x);

    // Workers 6 and 7 are slow; the master should never need them.
    let mut cluster = spawn_coded_cluster(Arc::clone(&enc), &[6, 7]);
    let all_chunks: Vec<usize> = (0..chunks).collect();
    for w in 0..n {
        cluster.submit(
            w,
            ChunkTask {
                chunks: all_chunks.clone(),
                x: Arc::clone(&x),
            },
        );
    }
    // Fastest-k collection.
    let got = cluster.collect_until(Duration::from_secs(10), |rs| rs.len() >= k);
    assert!(got.len() >= k, "collected {} responses", got.len());
    let responses: Vec<WorkerChunkResult> = got.into_iter().flat_map(|r| r.result).collect();
    let y = code.decode_matvec(enc.layout(), &responses).unwrap();
    s2c2_linalg::assert_slices_close(y.as_slice(), expect.as_slice(), 1e-6);
    cluster.shutdown();
}

#[test]
fn s2c2_style_partial_assignments_on_real_threads() {
    // Each worker gets only part of its partition (exact-k coverage), as
    // the S2C2 allocator would assign; the master needs every response.
    let (n, k, chunks) = (6usize, 4usize, 6usize);
    let a = Matrix::from_fn(288, 10, |r, c| ((r + 2 * c) % 11) as f64);
    let code = MdsCode::new(MdsParams::new(n, k)).unwrap();
    let enc = Arc::new(code.encode(&a, chunks).unwrap());
    let x = Arc::new(Vector::filled(10, 1.5));
    let expect = a.matvec(&x);

    let assignment =
        s2c2_core::allocate_chunks(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], k, chunks).unwrap();
    let mut cluster = spawn_coded_cluster(Arc::clone(&enc), &[]);
    let mut submitted = 0;
    for w in 0..n {
        if !assignment.chunks[w].is_empty() {
            cluster.submit(
                w,
                ChunkTask {
                    chunks: assignment.chunks[w].clone(),
                    x: Arc::clone(&x),
                },
            );
            submitted += 1;
        }
    }
    let got = cluster.collect_until(Duration::from_secs(10), |rs| rs.len() >= submitted);
    let responses: Vec<WorkerChunkResult> = got.into_iter().flat_map(|r| r.result).collect();
    let y = code.decode_matvec(enc.layout(), &responses).unwrap();
    s2c2_linalg::assert_slices_close(y.as_slice(), expect.as_slice(), 1e-6);
    cluster.shutdown();
}

#[test]
fn late_straggler_replies_are_ignored_across_rounds() {
    let (n, k, chunks) = (5usize, 3usize, 2usize);
    let a = Matrix::from_fn(120, 6, |r, c| (r + c) as f64);
    let code = MdsCode::new(MdsParams::new(n, k)).unwrap();
    let enc = Arc::new(code.encode(&a, chunks).unwrap());
    let x = Arc::new(Vector::filled(6, 2.0));
    let expect = a.matvec(&x);

    let mut cluster = spawn_coded_cluster(Arc::clone(&enc), &[4]);
    let all_chunks: Vec<usize> = (0..chunks).collect();
    for round in 0..3 {
        cluster.drain_stale();
        // Track this round's task ids: stale replies from earlier rounds
        // (or the straggler's late replies) must be filtered by identity,
        // not just by worker — a fast worker's *previous-round* reply can
        // also linger in the queue.
        let mut fresh_ids = std::collections::BTreeSet::new();
        for w in 0..n {
            let id = cluster.submit(
                w,
                ChunkTask {
                    chunks: all_chunks.clone(),
                    x: Arc::clone(&x),
                },
            );
            fresh_ids.insert(id);
        }
        let got = cluster.collect_until(Duration::from_secs(10), |rs| {
            rs.iter()
                .filter(|r| r.worker != 4 && fresh_ids.contains(&r.task_id))
                .count()
                >= k
        });
        let responses: Vec<WorkerChunkResult> = got
            .into_iter()
            .filter(|r| r.worker != 4 && fresh_ids.contains(&r.task_id))
            .flat_map(|r| r.result)
            .collect();
        let y = code.decode_matvec(enc.layout(), &responses).unwrap();
        s2c2_linalg::assert_slices_close(y.as_slice(), expect.as_slice(), 1e-6);
        let _ = round;
    }
    cluster.shutdown();
}
