//! # S²C² — Slack Squeeze Coded Computing
//!
//! Facade crate re-exporting the whole workspace: a production-quality Rust
//! reproduction of *"Slack Squeeze Coded Computing for Adaptive Straggler
//! Mitigation"* (Narra, Lin, Kiamari, Avestimehr, Annavaram — SC '19).
//!
//! The workspace layers are:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | numeric substrate | [`linalg`] | dense matrices/vectors, LU, structured generators |
//! | speed substrate | [`trace`] | worker speed models, cloud-like trace generation |
//! | coding substrate | [`coding`] | (n,k)-MDS and polynomial codecs over ℝ |
//! | forecasting | [`predict`] | from-scratch LSTM + ARIMA speed predictors |
//! | execution | [`cluster`] | discrete-event and threaded cluster engines |
//! | **the paper** | [`core`] | Algorithm 1 allocator, S²C² strategies, job driver |
//! | applications | [`workloads`] | LR, SVM, PageRank, graph filtering, Hessian |
//! | service | [`serve`] | event-driven multi-job engine, shared-cluster S²C² |
//! | observability | [`telemetry`] | trace spans, metrics registry, phase profiles, exporters |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete iterative coded matvec job;
//! the short version:
//!
//! ```
//! use s2c2::prelude::*;
//!
//! // Data: a 1200 x 40 matrix we want to repeatedly multiply with vectors.
//! let a = Matrix::from_fn(1200, 40, |r, c| ((r * 31 + c * 17) % 13) as f64);
//!
//! // A 12-worker cluster where 2 workers are 5x-slow stragglers.
//! let cluster = ClusterSpec::builder(12)
//!     .stragglers(&[3, 7], 0.2)
//!     .build();
//!
//! // Conservative (12, 6) MDS encoding, S2C2 general scheduling.
//! let mut job = CodedJobBuilder::new(a, MdsParams::new(12, 6))
//!     .chunks_per_worker(12)
//!     .strategy(StrategyKind::S2c2General)
//!     .build(cluster)
//!     .expect("valid configuration");
//!
//! let x = Vector::filled(40, 1.0);
//! let out = job.run_iteration(&x).expect("iteration succeeds");
//! assert_eq!(out.result.len(), 1200);
//! ```

pub use s2c2_cluster as cluster;
pub use s2c2_coding as coding;
pub use s2c2_core as core;
pub use s2c2_linalg as linalg;
pub use s2c2_predict as predict;
pub use s2c2_serve as serve;
pub use s2c2_telemetry as telemetry;
pub use s2c2_trace as trace;
pub use s2c2_workloads as workloads;

/// One-stop imports for applications built on S²C².
pub mod prelude {
    pub use s2c2_cluster::spec::ClusterSpec;
    pub use s2c2_coding::mds::MdsParams;
    pub use s2c2_core::job::{CodedJob, CodedJobBuilder};
    pub use s2c2_core::strategy::StrategyKind;
    pub use s2c2_linalg::{Matrix, Vector};
    pub use s2c2_serve::prelude::{
        generate_workload, ArrivalPattern, BackendKind, ChurnConfig, DeadlineBoost, JobPreset,
        JobSpec, PipelinePolicy, QueuePolicy, RateLimit, SchedulerMode, ServeConfig, ServiceEngine,
        ServiceReport, TenantSummary,
    };
}
