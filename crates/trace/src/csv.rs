//! Minimal CSV persistence for trace sets.
//!
//! One column per node, one row per iteration, full `f64` round-trip
//! precision. Hand-rolled rather than pulling in a serialization framework:
//! the format is two lines of logic and the workspace stays dependency-light.

use crate::{Trace, TraceSet};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes a trace set as CSV (header `node0,node1,...`).
///
/// # Errors
///
/// Propagates I/O errors; fails with [`io::ErrorKind::InvalidInput`] when
/// traces have unequal lengths (the on-disk format is rectangular).
pub fn write_trace_set<W: Write>(out: W, set: &TraceSet) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    let nodes = set.len();
    if nodes == 0 {
        return Ok(());
    }
    let len = set.node(0).len();
    for i in 0..nodes {
        if set.node(i).len() != len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace {i} has length {} != {len}", set.node(i).len()),
            ));
        }
    }
    // Header.
    let header: Vec<String> = (0..nodes).map(|i| format!("node{i}")).collect();
    writeln!(w, "{}", header.join(","))?;
    // Rows.
    for t in 0..len {
        let mut row = String::new();
        for i in 0..nodes {
            if i > 0 {
                row.push(',');
            }
            // {:?} for f64 prints a shortest representation that round-trips.
            row.push_str(&format!("{:?}", set.node(i).samples()[t]));
        }
        writeln!(w, "{row}")?;
    }
    w.flush()
}

/// Reads a trace set previously written by [`write_trace_set`].
///
/// # Errors
///
/// Propagates I/O errors; fails with [`io::ErrorKind::InvalidData`] on
/// malformed numbers or ragged rows.
pub fn read_trace_set<R: BufRead>(input: R) -> io::Result<TraceSet> {
    let mut lines = input.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok(TraceSet::from_traces(vec![])),
    };
    let nodes = header.split(',').count();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); nodes];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != nodes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "row {} has {} fields, expected {nodes}",
                    lineno + 2,
                    fields.len()
                ),
            ));
        }
        for (col, field) in fields.iter().enumerate() {
            let v: f64 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("row {} col {col}: {e}", lineno + 2),
                )
            })?;
            columns[col].push(v);
        }
    }
    Ok(TraceSet::from_traces(
        columns.into_iter().map(Trace::new).collect(),
    ))
}

/// Convenience wrapper: writes a trace set to a file path.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn save(path: &Path, set: &TraceSet) -> io::Result<()> {
    write_trace_set(std::fs::File::create(path)?, set)
}

/// Convenience wrapper: reads a trace set from a file path.
///
/// # Errors
///
/// Propagates I/O errors from opening and parsing.
pub fn load(path: &Path) -> io::Result<TraceSet> {
    read_trace_set(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CloudTraceConfig;

    #[test]
    fn roundtrip_through_memory() {
        let set = TraceSet::generate(&CloudTraceConfig::volatile(), 7, 33, 77);
        let mut buf = Vec::new();
        write_trace_set(&mut buf, &set).unwrap();
        let back = read_trace_set(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(set, back, "CSV round trip must be bit-exact");
    }

    #[test]
    fn empty_set_roundtrip() {
        let set = TraceSet::from_traces(vec![]);
        let mut buf = Vec::new();
        write_trace_set(&mut buf, &set).unwrap();
        let back = read_trace_set(io::BufReader::new(&buf[..])).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn ragged_input_rejected() {
        let data = b"node0,node1\n1.0,2.0\n3.0\n";
        let err = read_trace_set(io::BufReader::new(&data[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_number_rejected() {
        let data = b"node0\nnot_a_number\n";
        let err = read_trace_set(io::BufReader::new(&data[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unequal_traces_rejected_on_write() {
        let set = TraceSet::from_traces(vec![Trace::new(vec![1.0, 2.0]), Trace::new(vec![1.0])]);
        let mut buf = Vec::new();
        let err = write_trace_set(&mut buf, &set).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("s2c2_trace_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.csv");
        let set = TraceSet::generate(&CloudTraceConfig::calm(), 3, 10, 5);
        save(&path, &set).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(set, back);
        std::fs::remove_file(&path).ok();
    }
}
