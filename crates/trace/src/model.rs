//! Per-worker speed processes.
//!
//! A [`SpeedModel`] yields the relative speed of one worker for each
//! iteration of an iterative workload. The cluster engines sample the model
//! once per iteration (the paper measures and predicts at exactly this
//! granularity) and convert `assigned_rows / speed` into simulated time.

use crate::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A worker's speed process, sampled once per iteration.
pub trait SpeedModel: Send {
    /// Relative speed for `iteration` (1.0 ≈ nominal fast node).
    ///
    /// Must be strictly positive and finite. Implementations are expected to
    /// be deterministic given their construction parameters (seeded RNGs)
    /// so experiments are reproducible.
    fn speed_at(&mut self, iteration: usize) -> f64;

    /// Clones the model into a boxed trait object (models are stateful, so
    /// `Clone` cannot be a supertrait of a dyn-safe trait directly).
    fn clone_box(&self) -> BoxedSpeedModel;
}

/// Owned, type-erased speed model.
pub type BoxedSpeedModel = Box<dyn SpeedModel>;

impl Clone for BoxedSpeedModel {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Fixed speed, no variation. The baseline "perfect cluster" model.
#[derive(Debug, Clone, Copy)]
pub struct ConstantSpeed {
    /// Relative speed value returned for every iteration.
    pub speed: f64,
}

impl ConstantSpeed {
    /// Creates a constant-speed model.
    ///
    /// # Panics
    ///
    /// Panics unless `speed > 0` and finite.
    #[must_use]
    pub fn new(speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        ConstantSpeed { speed }
    }
}

impl SpeedModel for ConstantSpeed {
    fn speed_at(&mut self, _iteration: usize) -> f64 {
        self.speed
    }
    fn clone_box(&self) -> BoxedSpeedModel {
        Box::new(*self)
    }
}

/// Base speed with bounded multiplicative jitter, resampled per iteration.
///
/// Models the paper's controlled-cluster observation that "even
/// non-straggler nodes may have up to 20% variation between their
/// processing speeds": `JitterSpeed::new(1.0, 0.2, seed)` draws uniformly
/// from `[0.8, 1.0] · base` each iteration (one-sided, matching "up to 20%
/// slower than the fastest").
#[derive(Debug, Clone)]
pub struct JitterSpeed {
    base: f64,
    jitter: f64,
    rng: StdRng,
}

impl JitterSpeed {
    /// Creates a jittered speed model: uniform in `[base·(1−jitter), base]`.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0` and `0 ≤ jitter < 1`.
    #[must_use]
    pub fn new(base: f64, jitter: f64, seed: u64) -> Self {
        assert!(
            base.is_finite() && base > 0.0,
            "base speed must be positive"
        );
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        JitterSpeed {
            base,
            jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SpeedModel for JitterSpeed {
    fn speed_at(&mut self, _iteration: usize) -> f64 {
        if self.jitter == 0.0 {
            return self.base;
        }
        let factor = self.rng.gen_range(1.0 - self.jitter..=1.0);
        self.base * factor
    }
    fn clone_box(&self) -> BoxedSpeedModel {
        Box::new(self.clone())
    }
}

/// A persistent straggler: a jittered node scaled down by `slowdown`.
///
/// The paper's controlled-cluster definition: "a straggler is a node that
/// is at least 5× slower than the fastest performing node".
#[derive(Debug, Clone)]
pub struct StragglerSpeed {
    inner: JitterSpeed,
    slowdown: f64,
}

impl StragglerSpeed {
    /// Creates a straggler `slowdown`× slower than a `base`-speed node.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown >= 1`.
    #[must_use]
    pub fn new(base: f64, jitter: f64, slowdown: f64, seed: u64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        StragglerSpeed {
            inner: JitterSpeed::new(base, jitter, seed),
            slowdown,
        }
    }
}

impl SpeedModel for StragglerSpeed {
    fn speed_at(&mut self, iteration: usize) -> f64 {
        self.inner.speed_at(iteration) / self.slowdown
    }
    fn clone_box(&self) -> BoxedSpeedModel {
        Box::new(self.clone())
    }
}

/// Cloud-like regime-switching process (the Figure 2 generator's engine).
///
/// The worker occupies one of several speed *regimes* (levels); each
/// iteration it stays in the current regime with probability
/// `1 − 1/mean_dwell` and otherwise jumps to a uniformly random different
/// regime. Within a regime, samples take the regime level times a small
/// multiplicative jitter. This reproduces the paper's observations: speed
/// stays within ~10% of a local level for ~`mean_dwell` samples, with
/// occasional drastic changes.
#[derive(Debug, Clone)]
pub struct MarkovRegimeSpeed {
    levels: Vec<f64>,
    mean_dwell: f64,
    jitter: f64,
    current: usize,
    last_iteration: Option<usize>,
    rng: StdRng,
}

impl MarkovRegimeSpeed {
    /// Creates a regime-switching model.
    ///
    /// * `levels` — the speed level of each regime (all positive).
    /// * `mean_dwell` — expected number of iterations between regime jumps.
    /// * `jitter` — within-regime multiplicative noise half-width.
    /// * `start` — initial regime index.
    ///
    /// # Panics
    ///
    /// Panics on empty `levels`, non-positive levels, `mean_dwell < 1`,
    /// jitter outside `[0, 1)`, or `start` out of range.
    #[must_use]
    pub fn new(levels: Vec<f64>, mean_dwell: f64, jitter: f64, start: usize, seed: u64) -> Self {
        assert!(!levels.is_empty(), "need at least one regime");
        assert!(
            levels.iter().all(|l| l.is_finite() && *l > 0.0),
            "levels must be positive"
        );
        assert!(mean_dwell >= 1.0, "mean dwell must be >= 1");
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        assert!(start < levels.len(), "start regime out of range");
        MarkovRegimeSpeed {
            levels,
            mean_dwell,
            jitter,
            current: start,
            last_iteration: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Index of the regime occupied right now (test/diagnostic hook).
    #[must_use]
    pub fn current_regime(&self) -> usize {
        self.current
    }

    fn maybe_jump(&mut self) {
        if self.levels.len() == 1 {
            return;
        }
        let p_jump = 1.0 / self.mean_dwell;
        if self.rng.gen::<f64>() < p_jump {
            // Jump to a uniformly random *different* regime.
            let mut next = self.rng.gen_range(0..self.levels.len() - 1);
            if next >= self.current {
                next += 1;
            }
            self.current = next;
        }
    }
}

impl SpeedModel for MarkovRegimeSpeed {
    fn speed_at(&mut self, iteration: usize) -> f64 {
        // Advance the chain once per *new* iteration. Sampling the same
        // iteration twice (e.g. a retry) must not advance time.
        if self.last_iteration != Some(iteration) {
            // Catch up if the caller skipped iterations.
            let from = match self.last_iteration {
                Some(li) if iteration > li => li + 1,
                _ => iteration,
            };
            for _ in from..=iteration {
                self.maybe_jump();
            }
            self.last_iteration = Some(iteration);
        }
        let noise = if self.jitter == 0.0 {
            1.0
        } else {
            self.rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
        };
        self.levels[self.current] * noise
    }
    fn clone_box(&self) -> BoxedSpeedModel {
        Box::new(self.clone())
    }
}

/// Replays a recorded [`Trace`], clamping past the end.
#[derive(Debug, Clone)]
pub struct ReplaySpeed {
    trace: Trace,
}

impl ReplaySpeed {
    /// Wraps a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        ReplaySpeed { trace }
    }
}

impl SpeedModel for ReplaySpeed {
    fn speed_at(&mut self, iteration: usize) -> f64 {
        self.trace.sample(iteration)
    }
    fn clone_box(&self) -> BoxedSpeedModel {
        Box::new(self.clone())
    }
}

/// Records a model's output into a [`Trace`] of `len` samples.
pub fn record(model: &mut dyn SpeedModel, len: usize) -> Trace {
    Trace::new((0..len).map(|i| model.speed_at(i)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantSpeed::new(2.5);
        assert_eq!(m.speed_at(0), 2.5);
        assert_eq!(m.speed_at(100), 2.5);
    }

    #[test]
    fn jitter_bounds_respected() {
        let mut m = JitterSpeed::new(1.0, 0.2, 42);
        for i in 0..1000 {
            let s = m.speed_at(i);
            assert!((0.8..=1.0).contains(&s), "sample {s} out of range");
        }
    }

    #[test]
    fn jitter_zero_is_constant() {
        let mut m = JitterSpeed::new(3.0, 0.0, 1);
        assert_eq!(m.speed_at(0), 3.0);
    }

    #[test]
    fn straggler_is_slowdown_times_slower() {
        let mut fast = JitterSpeed::new(1.0, 0.0, 7);
        let mut slow = StragglerSpeed::new(1.0, 0.0, 5.0, 7);
        assert!((fast.speed_at(0) / slow.speed_at(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn markov_stays_within_levels_and_jitter() {
        let levels = vec![1.0, 0.5, 0.2];
        let mut m = MarkovRegimeSpeed::new(levels.clone(), 10.0, 0.05, 0, 3);
        for i in 0..500 {
            let s = m.speed_at(i);
            let ok = levels
                .iter()
                .any(|l| s >= l * 0.95 - 1e-12 && s <= l * 1.05 + 1e-12);
            assert!(ok, "sample {s} not within 5% of any level");
        }
    }

    #[test]
    fn markov_dwell_time_roughly_matches() {
        // With mean_dwell = 10 over 2000 samples we expect ~200 jumps;
        // loosely assert the count is in a sane band.
        let mut m = MarkovRegimeSpeed::new(vec![1.0, 0.5], 10.0, 0.0, 0, 11);
        let mut jumps = 0;
        let mut prev = m.speed_at(0);
        for i in 1..2000 {
            let s = m.speed_at(i);
            if (s - prev).abs() > 1e-9 {
                jumps += 1;
            }
            prev = s;
        }
        assert!(
            (100..=320).contains(&jumps),
            "unexpected jump count {jumps}"
        );
    }

    #[test]
    fn markov_same_iteration_does_not_advance_chain() {
        let mut m = MarkovRegimeSpeed::new(vec![1.0, 0.5], 2.0, 0.0, 0, 5);
        let _ = m.speed_at(3);
        let regime = m.current_regime();
        // Re-sampling iteration 3 must not move the chain.
        for _ in 0..50 {
            let _ = m.speed_at(3);
            assert_eq!(m.current_regime(), regime);
        }
    }

    #[test]
    fn replay_clamps() {
        let mut m = ReplaySpeed::new(Trace::new(vec![1.0, 2.0]));
        assert_eq!(m.speed_at(0), 1.0);
        assert_eq!(m.speed_at(5), 2.0);
    }

    #[test]
    fn record_then_replay_matches() {
        let mut src = MarkovRegimeSpeed::new(vec![1.0, 0.4], 5.0, 0.02, 0, 9);
        let trace = record(&mut src, 64);
        let mut rep = ReplaySpeed::new(trace.clone());
        for i in 0..64 {
            assert_eq!(rep.speed_at(i), trace.sample(i));
        }
    }

    #[test]
    fn boxed_clone_is_independent() {
        let m: BoxedSpeedModel = Box::new(JitterSpeed::new(1.0, 0.2, 123));
        let mut a = m.clone();
        let mut b = m.clone();
        // Same seed state at clone time → same future samples.
        for i in 0..16 {
            assert_eq!(a.speed_at(i), b.speed_at(i));
        }
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn straggler_rejects_speedup() {
        let _ = StragglerSpeed::new(1.0, 0.0, 0.5, 0);
    }
}
