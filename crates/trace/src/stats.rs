//! Time-series diagnostics for speed traces and prediction quality.
//!
//! These are the measures the paper reports (§6.1): Mean Absolute
//! Percentage Error of speed forecasts, plus the autocorrelation structure
//! that justifies one-step-behind prediction in the first place.

/// Arithmetic mean; 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for slices shorter than 2.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Lag-`k` autocorrelation coefficient.
///
/// Returns 0 when the series is too short or has zero variance (a constant
/// series carries no linear predictive signal beyond its mean).
#[must_use]
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let numer: f64 = (0..xs.len() - lag)
        .map(|i| (xs[i] - m) * (xs[i + lag] - m))
        .sum();
    numer / denom
}

/// Mean Absolute Percentage Error of `predicted` against `actual`, in
/// percent (the paper's LSTM scores 16.7 on this metric).
///
/// # Panics
///
/// Panics if lengths differ, the slices are empty, or any actual value is
/// zero (speeds are strictly positive by construction).
#[must_use]
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mape: length mismatch");
    assert!(!actual.is_empty(), "mape: empty input");
    let total: f64 = actual
        .iter()
        .zip(predicted.iter())
        .map(|(a, p)| {
            assert!(*a != 0.0, "mape: zero actual value");
            ((a - p) / a).abs()
        })
        .sum();
    100.0 * total / actual.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mae: length mismatch");
    assert!(!actual.is_empty(), "mae: empty input");
    actual
        .iter()
        .zip(predicted.iter())
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Fraction (0–1) of predictions whose relative error exceeds `threshold`.
///
/// This is the paper's "mis-prediction rate": S²C²'s timeout machinery
/// treats a worker as mis-predicted when its response deviates ~15% from
/// expectation, and §7.2 characterizes environments by the rate at which
/// that happens (0% calm, up to 18% volatile).
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn misprediction_rate(actual: &[f64], predicted: &[f64], threshold: f64) -> f64 {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "misprediction_rate: length mismatch"
    );
    assert!(!actual.is_empty(), "misprediction_rate: empty input");
    let miss = actual
        .iter()
        .zip(predicted.iter())
        .filter(|(a, p)| ((*a - *p) / *a).abs() > threshold)
        .count();
    miss as f64 / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0);
    }

    #[test]
    fn autocorrelation_of_persistent_series_is_high() {
        // A slow random-walk-like series correlates strongly at lag 1.
        let xs: Vec<f64> = (0..100)
            .map(|i| 1.0 + 0.5 * ((i as f64) * 0.05).sin())
            .collect();
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    fn autocorrelation_short_series() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn mape_known_value() {
        // errors: 10% and 20% -> MAPE 15%.
        let m = mape(&[1.0, 1.0], &[0.9, 1.2]);
        assert!((m - 15.0).abs() < 1e-9);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[1.0, 2.0], &[1.5, 1.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn misprediction_rate_threshold() {
        let actual = [1.0, 1.0, 1.0, 1.0];
        let pred = [1.0, 1.1, 1.2, 0.5];
        // 20% and 50% errors exceed 15%; 0% and 10% do not.
        assert!((misprediction_rate(&actual, &pred, 0.15) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mape_length_mismatch() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }
}
