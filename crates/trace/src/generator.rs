//! Whole-cluster trace generation (the Figure 2 substitute).
//!
//! The paper measured 100 DigitalOcean droplets running matrix
//! multiplication, logging speed once per 1% of progress. We regenerate
//! statistically similar data: most nodes hover near full speed with small
//! jitter, some occupy lower regimes, and regime changes are rare relative
//! to the sampling rate. Two presets map to the paper's two cloud
//! environments:
//!
//! * [`CloudTraceConfig::calm`] — long dwell times, mild level spread; the
//!   "low mis-prediction rate" environment of §7.2.1.
//! * [`CloudTraceConfig::volatile`] — short dwells and a wide level spread
//!   (including 5×-slow straggler regimes); the "high mis-prediction rate"
//!   environment of §7.2.2.

use crate::model::{record, MarkovRegimeSpeed};
use crate::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for generating a cluster's worth of speed traces.
#[derive(Debug, Clone)]
pub struct CloudTraceConfig {
    /// Speed level of each regime a node can occupy (descending, positive).
    pub levels: Vec<f64>,
    /// Expected iterations between regime changes.
    pub mean_dwell: f64,
    /// Within-regime multiplicative noise half-width.
    pub jitter: f64,
    /// Probability that a node starts in the fastest regime (the rest start
    /// in a uniformly random slower one).
    pub p_start_fast: f64,
}

impl CloudTraceConfig {
    /// The low-mis-prediction environment: nodes sit in one of three nearby
    /// regimes, switching rarely (mean dwell 40 iterations) with ±3%
    /// within-regime noise. An LSTM predicting "same as last time" is right
    /// almost always, matching the paper's observed 0% mis-prediction runs.
    #[must_use]
    pub fn calm() -> Self {
        CloudTraceConfig {
            // Levels within ~15% of each other: even a regime jump stays
            // inside the scheduler's timeout margin, matching the paper's
            // observed 0% mis-prediction runs.
            levels: vec![1.0, 0.92, 0.85],
            mean_dwell: 40.0,
            jitter: 0.03,
            p_start_fast: 0.8,
        }
    }

    /// The high-mis-prediction environment: wide regime spread including a
    /// 5×-slow straggler level, short dwells (mean 6 iterations), ±8%
    /// within-regime noise. Speed jumps are frequent and large, driving
    /// the predictor's error up, as in §7.2.2 (highest observed
    /// mis-prediction rate 18%).
    #[must_use]
    pub fn volatile() -> Self {
        CloudTraceConfig {
            // Jumps are *large* (well past the 15% timeout margin) but
            // per-round rare: with ~10 workers and mean dwell 40, a
            // scheduler sees a mis-predicted round roughly 18% of the
            // time — the paper's highest observed mis-prediction rate.
            levels: vec![1.0, 0.72, 0.45],
            mean_dwell: 40.0,
            // Within-regime noise stays inside the scheduler's 15% margin
            // (two-sided 5% jitter deviates at most ~10.5% from a
            // persistence forecast); regime jumps alone cause
            // mis-predictions, as in the paper's measured traces.
            jitter: 0.05,
            p_start_fast: 0.6,
        }
    }

    /// Calibrated to the §3.2/§6.1 measurement campaign: speeds stay
    /// within ~10% of a local level for ~10 samples with occasional
    /// larger regime shifts, such that a well-trained one-step forecaster
    /// lands near the paper's 16.7% test MAPE. Used by the prediction
    /// experiment (`figures prediction`).
    #[must_use]
    pub fn paper() -> Self {
        CloudTraceConfig {
            levels: vec![1.0, 0.8, 0.6, 0.35],
            mean_dwell: 10.0,
            jitter: 0.07,
            p_start_fast: 0.7,
        }
    }

    /// Builds the speed model for node `node_id` under this configuration.
    ///
    /// Deterministic in `(seed, node_id)` so clusters are reproducible.
    #[must_use]
    pub fn model_for_node(&self, node_id: usize, seed: u64) -> MarkovRegimeSpeed {
        let mut meta_rng = StdRng::seed_from_u64(
            seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(node_id as u64 + 1)),
        );
        let start = if meta_rng.gen::<f64>() < self.p_start_fast || self.levels.len() == 1 {
            0
        } else {
            meta_rng.gen_range(1..self.levels.len())
        };
        MarkovRegimeSpeed::new(
            self.levels.clone(),
            self.mean_dwell,
            self.jitter,
            start,
            meta_rng.gen(),
        )
    }
}

/// A set of per-node speed traces (the Figure 2 dataset substitute).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Generates `nodes` traces of `len` samples each.
    #[must_use]
    pub fn generate(config: &CloudTraceConfig, nodes: usize, len: usize, seed: u64) -> Self {
        let traces = (0..nodes)
            .map(|id| {
                let mut model = config.model_for_node(id, seed);
                record(&mut model, len)
            })
            .collect();
        TraceSet { traces }
    }

    /// Wraps existing traces.
    #[must_use]
    pub fn from_traces(traces: Vec<Trace>) -> Self {
        TraceSet { traces }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when the set holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Trace of node `i`.
    #[must_use]
    pub fn node(&self, i: usize) -> &Trace {
        &self.traces[i]
    }

    /// All traces.
    #[must_use]
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Flattens every node's `(previous, next)` sample pairs into one
    /// supervised dataset — the form the speed predictors train on.
    #[must_use]
    pub fn one_step_pairs(&self) -> Vec<(f64, f64)> {
        let mut pairs = Vec::new();
        for t in &self.traces {
            for w in t.samples().windows(2) {
                pairs.push((w[0], w[1]));
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn generate_shapes() {
        let set = TraceSet::generate(&CloudTraceConfig::calm(), 10, 50, 1);
        assert_eq!(set.len(), 10);
        assert!(!set.is_empty());
        for i in 0..10 {
            assert_eq!(set.node(i).len(), 50);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceSet::generate(&CloudTraceConfig::volatile(), 5, 40, 9);
        let b = TraceSet::generate(&CloudTraceConfig::volatile(), 5, 40, 9);
        assert_eq!(a, b);
        let c = TraceSet::generate(&CloudTraceConfig::volatile(), 5, 40, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn calm_traces_are_slowly_varying() {
        // The paper's key observation: speeds stay within ~10% for ~10-sample
        // neighbourhoods. Check that the median relative step is small.
        let set = TraceSet::generate(&CloudTraceConfig::calm(), 20, 200, 2);
        let mut steps: Vec<f64> = Vec::new();
        for t in set.traces() {
            for w in t.samples().windows(2) {
                steps.push((w[1] - w[0]).abs() / w[0]);
            }
        }
        steps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = steps[steps.len() / 2];
        assert!(
            median < 0.05,
            "median relative step {median} too large for calm preset"
        );
    }

    #[test]
    fn volatile_traces_vary_more_than_calm() {
        let calm = TraceSet::generate(&CloudTraceConfig::calm(), 20, 300, 3);
        let volatile = TraceSet::generate(&CloudTraceConfig::volatile(), 20, 300, 3);
        let cv = |set: &TraceSet| {
            let mut total = 0.0;
            for t in set.traces() {
                total += stats::std_dev(t.samples()) / stats::mean(t.samples());
            }
            total / set.len() as f64
        };
        assert!(
            cv(&volatile) > 2.0 * cv(&calm),
            "volatile should be much noisier"
        );
    }

    #[test]
    fn one_step_pairs_counts() {
        let set = TraceSet::generate(&CloudTraceConfig::calm(), 3, 10, 4);
        assert_eq!(set.one_step_pairs().len(), 3 * 9);
    }

    #[test]
    fn volatile_hits_slow_regime() {
        // Over enough samples, some node should visit the slowest level
        // (0.45, i.e. a >2x slowdown — past any timeout margin).
        let set = TraceSet::generate(&CloudTraceConfig::volatile(), 10, 400, 5);
        let has_slow = set
            .traces()
            .iter()
            .any(|t| t.samples().iter().any(|&s| s < 0.5));
        assert!(
            has_slow,
            "volatile preset never produced a slow-regime speed"
        );
    }
}
