//! Worker speed models and cloud-like speed trace generation.
//!
//! The S²C² paper's motivation (§3.2) rests on empirically measured speed
//! traces from 100 DigitalOcean droplets: node speeds vary over time but
//! *slowly* — within ~10% across ~10-sample neighbourhoods — with occasional
//! abrupt regime shifts. Those statistical properties are what make
//! speed *prediction* (and therefore S²C²'s proactive work allocation)
//! feasible.
//!
//! We do not have the authors' droplet traces, so this crate provides:
//!
//! * [`SpeedModel`] — the per-worker speed process abstraction consumed by
//!   the cluster engines. Speeds are *relative* (1.0 = nominal fast node)
//!   and sampled once per computation iteration, matching the paper's
//!   measurement granularity.
//! * Concrete models: [`model::ConstantSpeed`], [`model::JitterSpeed`]
//!   (controlled-cluster ±20% variation), [`model::StragglerSpeed`]
//!   (≥5× slowdown scenarios), [`model::MarkovRegimeSpeed`] (cloud-like
//!   regime switching), and [`model::ReplaySpeed`] (recorded traces).
//! * [`generator`] — builds whole-cluster trace sets mimicking Figure 2,
//!   with calm (low mis-prediction) and volatile (high mis-prediction)
//!   presets.
//! * [`stats`] — the time-series diagnostics used to validate that
//!   generated traces have the paper's properties.
//! * [`csv`] — minimal trace persistence (plain CSV, no external deps).

#![warn(missing_docs)]

pub mod csv;
pub mod generator;
pub mod model;
pub mod stats;

pub use generator::{CloudTraceConfig, TraceSet};
pub use model::{BoxedSpeedModel, SpeedModel};

/// A recorded speed series for one worker, one sample per iteration.
///
/// Speeds are relative throughput values (rows per unit time, normalized so
/// the nominal fast node is ≈ 1.0). The paper normalizes each node by its
/// maximum observed speed; [`Trace::normalized_by_max`] reproduces that
/// view for plotting/analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    samples: Vec<f64>,
}

impl Trace {
    /// Wraps a raw sample series.
    ///
    /// # Panics
    ///
    /// Panics if any sample is non-positive or non-finite — a speed of zero
    /// would make assigned work never complete, which the models never emit
    /// (a dead worker is modelled by the cluster layer as a failure event,
    /// not a zero speed).
    #[must_use]
    pub fn new(samples: Vec<f64>) -> Self {
        for (i, s) in samples.iter().enumerate() {
            assert!(
                s.is_finite() && *s > 0.0,
                "invalid speed sample {s} at index {i}"
            );
        }
        Trace { samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample accessor (`iteration` clamps to the last sample, so models can
    /// run longer than the recorded series — steady-state extension).
    #[must_use]
    pub fn sample(&self, iteration: usize) -> f64 {
        let idx = iteration.min(self.samples.len().saturating_sub(1));
        self.samples[idx]
    }

    /// Raw samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The paper's Figure 2 view: every sample divided by the maximum
    /// observed speed of this node.
    #[must_use]
    pub fn normalized_by_max(&self) -> Trace {
        let max = self.samples.iter().cloned().fold(f64::MIN, f64::max);
        Trace {
            samples: self.samples.iter().map(|s| s / max).collect(),
        }
    }

    /// Splits into `(train, test)` at `ratio` (e.g. 0.8 for the paper's
    /// 80:20 prediction-model split).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio < 1` or the trace has fewer than 2 samples.
    #[must_use]
    pub fn split(&self, ratio: f64) -> (Trace, Trace) {
        assert!(ratio > 0.0 && ratio < 1.0, "split ratio must be in (0,1)");
        assert!(self.samples.len() >= 2, "need at least 2 samples to split");
        let cut = ((self.samples.len() as f64) * ratio).round() as usize;
        let cut = cut.clamp(1, self.samples.len() - 1);
        (
            Trace {
                samples: self.samples[..cut].to_vec(),
            },
            Trace {
                samples: self.samples[cut..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_clamps_past_end() {
        let t = Trace::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.sample(0), 1.0);
        assert_eq!(t.sample(2), 3.0);
        assert_eq!(t.sample(99), 3.0);
    }

    #[test]
    fn normalized_by_max_peaks_at_one() {
        let t = Trace::new(vec![2.0, 4.0, 1.0]).normalized_by_max();
        assert_eq!(t.samples(), &[0.5, 1.0, 0.25]);
    }

    #[test]
    fn split_ratio() {
        let t = Trace::new((1..=10).map(|i| i as f64).collect());
        let (train, test) = t.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(test.samples(), &[9.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "invalid speed sample")]
    fn rejects_nonpositive_speed() {
        let _ = Trace::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "split ratio")]
    fn rejects_bad_split() {
        let _ = Trace::new(vec![1.0, 2.0]).split(1.5);
    }
}
