//! Log-bucketed streaming histogram over `f64` samples.
//!
//! Buckets are formed by truncating the *order-preserving bit image* of
//! each finite `f64` (the `total_cmp` trick: flip all bits but the sign
//! for negatives) to its top `sub_bits` mantissa bits. Consecutive
//! buckets therefore cover value ranges of geometrically increasing
//! width — a relative-error guarantee of `2^-sub_bits` per bucket —
//! while insertion stays `O(log buckets)` in a sparse `BTreeMap`.
//!
//! Two operating points matter here:
//!
//! * [`StreamingHistogram::coarse`] (7 mantissa bits, <1% relative
//!   error) for registry metrics, where compactness wins;
//! * [`StreamingHistogram::exact`] (all 52 mantissa bits — every
//!   distinct bit pattern its own bucket), whose nearest-rank
//!   [`percentile`](StreamingHistogram::percentile) returns the *exact
//!   sample values* the old sort-the-whole-vector path returned. This is
//!   what lets `ServiceReport` percentiles stream instead of sort
//!   without moving a single pinned figure.

use std::collections::BTreeMap;

/// Mantissa bits of an IEEE-754 double.
const MANTISSA_BITS: u32 = 52;

/// Order-preserving bit image of a finite `f64`: monotone with
/// `f64::total_cmp`, and an involution (applying it to the result of
/// itself recovers the original bits).
fn ordered_bits(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    // For negatives (sign bit set) flip every bit below the sign, so
    // more-negative values map to smaller integers.
    b ^ ((((b >> 63) as u64) >> 1) as i64)
}

/// Inverse of [`ordered_bits`] (same involution).
fn from_ordered_bits(ord: i64) -> f64 {
    let b = ord ^ ((((ord >> 63) as u64) >> 1) as i64);
    f64::from_bits(b as u64)
}

/// A streaming histogram: sparse log-spaced buckets plus running
/// count / sum / min / max.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    /// Low bits dropped from each ordered-bit key (`52 - sub_bits`).
    shift: u32,
    /// Bucket key (truncated ordered bits) → sample count.
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::coarse()
    }
}

impl StreamingHistogram {
    /// A histogram keeping the top `sub_bits` mantissa bits per bucket
    /// (`0..=52`); per-bucket relative error is bounded by
    /// `2^-sub_bits`.
    ///
    /// # Panics
    /// If `sub_bits > 52`.
    #[must_use]
    pub fn with_sub_bits(sub_bits: u32) -> Self {
        assert!(sub_bits <= MANTISSA_BITS, "sub_bits must be <= 52");
        Self {
            shift: MANTISSA_BITS - sub_bits,
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Compact default: 7 mantissa bits, relative error under 1%.
    #[must_use]
    pub fn coarse() -> Self {
        Self::with_sub_bits(7)
    }

    /// Exact mode: every distinct `f64` bit pattern is its own bucket,
    /// so percentiles reproduce the nearest-rank-over-sorted-vector
    /// result bit-for-bit.
    #[must_use]
    pub fn exact() -> Self {
        Self::with_sub_bits(MANTISSA_BITS)
    }

    /// Record one sample.
    ///
    /// # Panics
    /// If `x` is NaN or infinite.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "histogram samples must be finite: {x}");
        self.count += 1;
        self.sum += x;
        if x.total_cmp(&self.min).is_lt() {
            self.min = x;
        }
        if x.total_cmp(&self.max).is_gt() {
            self.max = x;
        }
        *self
            .buckets
            .entry(ordered_bits(x) >> self.shift)
            .or_insert(0) += 1;
    }

    /// Fold another histogram with the same bucketing into this one.
    ///
    /// # Panics
    /// If the two histograms use different `sub_bits`.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.shift, other.shift, "cannot merge mixed bucketings");
        for (&key, &c) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min.total_cmp(&self.min).is_lt() {
                self.min = other.min;
            }
            if other.max.total_cmp(&self.max).is_gt() {
                self.max = other.max;
            }
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of occupied buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`; returns `0.0` when
    /// empty (matching `s2c2_serve::percentile` on an empty slice). In
    /// exact mode the returned value is a recorded sample, bit-for-bit;
    /// in coarse modes it is the lower edge of the rank's bucket (within
    /// `2^-sub_bits` relative error of the true sample).
    ///
    /// # Panics
    /// If `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (&key, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return from_ordered_bits(key << self.shift);
            }
        }
        // Unreachable: bucket counts always sum to `count`.
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The old sort-then-index nearest-rank path, verbatim semantics.
    fn nearest_rank(values: &[f64], p: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    /// Deterministic awkward sample set: duplicates, negatives, zeros,
    /// huge magnitude spread.
    fn samples() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..200u32 {
            let x = f64::from(i % 37) * 1.7 - 20.0;
            v.push(x * (1.0 + f64::from(i) * 1e-3));
            if i % 11 == 0 {
                v.push(x); // exact duplicates
            }
        }
        v.push(0.0);
        v.push(-0.0);
        v.push(1e-300);
        v.push(1e12);
        v
    }

    #[test]
    fn exact_mode_matches_nearest_rank_bit_for_bit() {
        let vals = samples();
        let mut h = StreamingHistogram::exact();
        for &x in &vals {
            h.record(x);
        }
        for p in [0.0, 1.0, 25.0, 50.0, 73.5, 99.0, 100.0] {
            let want = nearest_rank(&vals, p);
            let got = h.percentile(p);
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "p={p}: want {want:?}, got {got:?}"
            );
        }
    }

    #[test]
    fn empty_percentile_is_zero() {
        let h = StreamingHistogram::exact();
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = StreamingHistogram::exact();
        h.record(42.5);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), 42.5);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(42.5));
    }

    #[test]
    fn p0_and_p100_are_min_and_max_in_exact_mode() {
        let mut h = StreamingHistogram::exact();
        for x in [3.0, -7.5, 12.0, 0.25] {
            h.record(x);
        }
        assert_eq!(h.percentile(0.0), -7.5);
        assert_eq!(h.percentile(100.0), 12.0);
        assert_eq!(h.min(), Some(-7.5));
        assert_eq!(h.max(), Some(12.0));
    }

    #[test]
    fn coarse_mode_bounds_relative_error() {
        let vals = samples();
        let mut h = StreamingHistogram::coarse();
        for &x in &vals {
            h.record(x);
        }
        let tol = 2f64.powi(-7) * 1.01;
        for p in [5.0, 50.0, 95.0] {
            let want = nearest_rank(&vals, p);
            let got = h.percentile(p);
            let rel = (got - want).abs() / want.abs().max(f64::MIN_POSITIVE);
            assert!(rel <= tol, "p={p}: want {want}, got {got}, rel {rel}");
        }
        // Far fewer buckets than samples is the point of coarse mode.
        assert!(h.buckets() < vals.len());
    }

    #[test]
    fn merge_equals_single_pass() {
        let vals = samples();
        let (a_half, b_half) = vals.split_at(vals.len() / 2);
        let mut a = StreamingHistogram::exact();
        let mut b = StreamingHistogram::exact();
        let mut whole = StreamingHistogram::exact();
        for &x in a_half {
            a.record(x);
        }
        for &x in b_half {
            b.record(x);
        }
        for &x in &vals {
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_percentile_panics() {
        let h = StreamingHistogram::exact();
        let _ = h.percentile(100.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_panics() {
        let mut h = StreamingHistogram::exact();
        h.record(f64::NAN);
    }

    #[test]
    fn ordered_bits_is_monotone_and_involutive() {
        let vals = [
            f64::MIN,
            -1e300,
            -2.5,
            -1e-308,
            -0.0,
            0.0,
            1e-308,
            1.0,
            2.5,
            1e300,
            f64::MAX,
        ];
        for w in vals.windows(2) {
            assert!(ordered_bits(w[0]) < ordered_bits(w[1]), "{w:?}");
        }
        for &x in &vals {
            assert_eq!(from_ordered_bits(ordered_bits(x)).to_bits(), x.to_bits());
        }
    }
}
