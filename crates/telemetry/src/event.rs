//! Typed trace events and the sink they are recorded into.
//!
//! Events carry **virtual-clock** timestamps only. Wall-clock timings are
//! deliberately excluded so that (a) the three execution backends emit
//! byte-identical traces for the same seed and (b) exported logs are
//! reproducible across runs and machines. Wall time lives in
//! [`crate::phases::PhaseTotals`] instead.

/// One step of the serve engine, tagged with the virtual time it
/// happened at.
///
/// Ids are plain integers — `job` is the engine's `JobId`, `worker` a
/// pool index, `generation` the iteration-dispatch generation used for
/// stale-event filtering, `tenant` the owning tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A job arrived at the front door (before any admission decision).
    JobArrival {
        /// Job id.
        job: u64,
        /// Owning tenant.
        tenant: u32,
        /// Workload preset name (`"small"`, `"medium"`, ...).
        preset: &'static str,
    },
    /// The job failed front-door validation and was dropped.
    Malformed {
        /// Job id.
        job: u64,
    },
    /// The tenant's token bucket had no tokens; the job was dropped.
    RateLimited {
        /// Job id.
        job: u64,
    },
    /// Deadline-aware admission judged the job's SLO infeasible.
    Rejected {
        /// Job id.
        job: u64,
    },
    /// The job was admitted to the resident set.
    Admitted {
        /// Job id.
        job: u64,
        /// Resident batch leader it rides with (== `job` when solo).
        leader: u64,
    },
    /// A multi-member batch formed around a leader at admission.
    BatchFormed {
        /// Leader job id.
        leader: u64,
        /// Number of member jobs coalesced into the round.
        members: usize,
    },
    /// A held time-window batch key was flushed by its timer.
    BatchFlush {
        /// Pending-queue depth at flush time.
        pending: usize,
    },
    /// An iteration round was dispatched.
    IterationStart {
        /// Leader job id.
        job: u64,
        /// Zero-based iteration index for the job.
        iteration: usize,
        /// Dispatch generation.
        generation: u64,
        /// Stacked right-hand sides in the round.
        rhs: usize,
        /// Capacity share the round was planned at.
        share: f64,
        /// Whether the round started degraded (rung 2).
        degraded: bool,
    },
    /// The recovery ladder moved: `rung` is 1-based (1 = normal
    /// predict-feasible start, 2 = degraded start, 3 = redo on finished
    /// workers, 4 = wait out stragglers, 5 = abandon and restart).
    RecoveryRung {
        /// Leader job id.
        job: u64,
        /// Dispatch generation the transition applies to.
        generation: u64,
        /// Ladder rung, `1..=5`.
        rung: u8,
    },
    /// Chunks were sent to one worker.
    TaskDispatch {
        /// Leader job id.
        job: u64,
        /// Worker index.
        worker: usize,
        /// Dispatch generation.
        generation: u64,
        /// Number of coded chunks assigned.
        chunks: usize,
        /// Whether this is a rung-3 redo task.
        redo: bool,
    },
    /// A worker's task finished and was credited.
    TaskComplete {
        /// Leader job id.
        job: u64,
        /// Worker index.
        worker: usize,
        /// Dispatch generation.
        generation: u64,
        /// Whether the credited task was a redo.
        redo: bool,
    },
    /// An in-flight task was cancelled (late original, churned worker,
    /// or round already satisfied).
    TaskCancel {
        /// Leader job id.
        job: u64,
        /// Worker index.
        worker: usize,
        /// Dispatch generation.
        generation: u64,
        /// Whether the cancelled task was a redo.
        redo: bool,
    },
    /// Master-side decode of the round's coverage.
    Decode {
        /// Leader job id.
        job: u64,
        /// Dispatch generation.
        generation: u64,
        /// Modeled decode time in virtual seconds.
        seconds: f64,
    },
    /// Verification point for the round (numeric backends check the
    /// decode against the reference here; emitted by the engine on every
    /// backend so traces stay backend-independent).
    Verify {
        /// Leader job id.
        job: u64,
        /// Dispatch generation.
        generation: u64,
    },
    /// The iteration round completed (decode included).
    IterationComplete {
        /// Leader job id.
        job: u64,
        /// Zero-based iteration index.
        iteration: usize,
        /// Dispatch generation.
        generation: u64,
    },
    /// A job finished all iterations.
    JobComplete {
        /// Job id.
        job: u64,
        /// Owning tenant.
        tenant: u32,
    },
    /// A job exhausted its retries and failed.
    JobFailed {
        /// Job id.
        job: u64,
        /// Owning tenant.
        tenant: u32,
    },
    /// A churned-out worker rejoined the pool.
    WorkerUp {
        /// Worker index.
        worker: usize,
    },
    /// A worker churned out of the pool.
    WorkerDown {
        /// Worker index.
        worker: usize,
    },
    /// Resident-set shares were rebalanced.
    Rebalance {
        /// Number of resident rounds after the rebalance.
        resident: usize,
    },
    /// A completed round parked because an earlier round of the same job
    /// had not retired yet (pipelined serving commits in order). Only
    /// emitted at pipeline depth ≥ 2.
    RoundParked {
        /// Leader job id.
        job: u64,
        /// Zero-based iteration index of the parked round.
        iteration: usize,
        /// Dispatch generation.
        generation: u64,
    },
    /// A round retired (decode/verify committed) under pipelined serving.
    /// Only emitted at pipeline depth ≥ 2; at depth 1 the plain
    /// `Decode`/`Verify`/`IterationComplete` sequence already tells the
    /// whole story.
    RoundRetired {
        /// Leader job id.
        job: u64,
        /// Zero-based iteration index of the retired round.
        iteration: usize,
        /// Dispatch generation.
        generation: u64,
        /// Virtual seconds the round spent parked behind its
        /// predecessors (0 when it retired immediately).
        parked: f64,
    },
    /// The head round of a job's pipeline window completed while later
    /// rounds sat parked behind it — the in-order-commit stall this
    /// window head was responsible for. Only emitted at depth ≥ 2.
    PipelineStall {
        /// Leader job id.
        job: u64,
        /// Dispatch generation of the head round that was blocking.
        generation: u64,
        /// Virtual seconds since the earliest parked successor finished.
        seconds: f64,
    },
}

/// A trace event: virtual timestamp plus typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time the event happened at, in seconds.
    pub time: f64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Destination for trace events.
///
/// The serve engine emits through [`TraceSink::record_with`], which takes
/// a closure so a disabled sink never pays for event construction.
pub trait TraceSink {
    /// Append one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether recording is active; `record_with` short-circuits on
    /// `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Record the event built by `f`, evaluating `f` only when the sink
    /// is enabled — the zero-cost-when-off emission path.
    fn record_with(&mut self, f: impl FnOnce() -> TraceEvent)
    where
        Self: Sized,
    {
        if self.is_enabled() {
            self.record(f());
        }
    }
}

/// A sink that drops everything without evaluating anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Growable append buffer of trace events — the default enabled sink.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the buffer, yielding the event vector.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Count of [`TraceEventKind::RecoveryRung`] events per rung,
    /// indexed `[rung-1]` — the trace-side mirror of
    /// `ServiceReport::recovery_rung_counts`.
    #[must_use]
    pub fn rung_counts(&self) -> [u64; 5] {
        let mut counts = [0u64; 5];
        for e in &self.events {
            if let TraceEventKind::RecoveryRung { rung, .. } = e.kind {
                let idx = usize::from(rung).saturating_sub(1).min(4);
                counts[idx] += 1;
            }
        }
        counts
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_records_in_order() {
        let mut buf = TraceBuffer::new();
        buf.record(TraceEvent {
            time: 0.0,
            kind: TraceEventKind::JobArrival {
                job: 1,
                tenant: 0,
                preset: "small",
            },
        });
        buf.record(TraceEvent {
            time: 1.5,
            kind: TraceEventKind::JobComplete { job: 1, tenant: 0 },
        });
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.events()[1].time, 1.5);
    }

    #[test]
    fn null_sink_never_evaluates_the_closure() {
        let mut sink = NullSink;
        sink.record_with(|| unreachable!("disabled sink must not build events"));
        assert!(!sink.is_enabled());
    }

    #[test]
    fn enabled_buffer_evaluates_and_records() {
        let mut buf = TraceBuffer::new();
        buf.record_with(|| TraceEvent {
            time: 2.0,
            kind: TraceEventKind::WorkerDown { worker: 3 },
        });
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn rung_counts_tally_ladder_events() {
        let mut buf = TraceBuffer::new();
        for rung in [1u8, 1, 2, 3, 5] {
            buf.record(TraceEvent {
                time: 0.0,
                kind: TraceEventKind::RecoveryRung {
                    job: 9,
                    generation: 1,
                    rung,
                },
            });
        }
        assert_eq!(buf.rung_counts(), [2, 1, 1, 0, 1]);
    }
}
