//! Observability substrate for the S²C² serve stack.
//!
//! The serve engine's only output used to be the end-of-run
//! [`ServiceReport`](../s2c2_serve/metrics/struct.ServiceReport.html); this
//! crate adds the *why* behind those numbers:
//!
//! * [`event`] — a structured trace recorder: typed events with
//!   virtual-clock timestamps appended to a cheap buffer behind the
//!   [`TraceSink`] trait. The disabled path is zero-cost: emission sites
//!   take a closure that is never evaluated when tracing is off.
//! * [`histogram`] — [`StreamingHistogram`], a log-bucketed streaming
//!   histogram over `f64` samples. Its *exact* mode (one bucket per
//!   distinct bit pattern) reproduces nearest-rank percentiles
//!   bit-for-bit, so report percentiles can route through it without
//!   perturbing any pinned figure.
//! * [`registry`] — [`MetricsRegistry`]: named counters, gauges,
//!   histograms, and time series sampled on engine events (queue depth,
//!   utilization, resident-set size).
//! * [`phases`] — [`PhaseTotals`]: per-iteration service time split into
//!   encode / dispatch / compute / collect / decode / verify, kept
//!   separately for the deterministic virtual clock and for
//!   (nondeterministic) wall time measured by the numeric backends.
//! * [`export`] — deterministic JSONL event logs and Chrome trace-event
//!   (`chrome://tracing` / Perfetto) timelines with one track per worker
//!   and per tenant.
//!
//! Everything here is dependency-free and engine-agnostic: events speak
//! in plain ids (`u64` jobs, `usize` workers, `u32` tenants) so the
//! crate sits below `s2c2-serve` in the workspace DAG.
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod histogram;
pub mod phases;
pub mod registry;

pub use event::{NullSink, TraceBuffer, TraceEvent, TraceEventKind, TraceSink};
pub use histogram::StreamingHistogram;
pub use phases::PhaseTotals;
pub use registry::{MetricsRegistry, TimeSeries};

/// Bundled trace buffer + metrics registry: the unit of telemetry state
/// an engine run carries when observability is enabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Ordered event log (virtual-clock timestamps).
    pub trace: TraceBuffer,
    /// Named counters, gauges, histograms, and time series.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// An empty telemetry bundle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}
