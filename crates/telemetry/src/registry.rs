//! Named metrics: counters, gauges, streaming histograms, and
//! event-sampled time series.
//!
//! Keys are `&'static str` and storage is `BTreeMap`, so iteration order
//! (and any rendering built on it) is deterministic. The registry is
//! engine-agnostic — the serve engine samples queue depth, utilization,
//! and resident-set size into it when telemetry is enabled.

use crate::histogram::StreamingHistogram;
use std::collections::BTreeMap;

/// A time-ordered series of `(virtual time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Timestamps are expected nondecreasing (engine
    /// virtual time); this is not enforced.
    pub fn push(&mut self, time: f64, value: f64) {
        self.points.push((time, value));
    }

    /// The recorded `(time, value)` points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded value, if any.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Time-weighted mean of the series over `[first sample, horizon]`,
    /// treating each value as holding until the next sample. `None` when
    /// empty or the horizon precedes the first sample.
    #[must_use]
    pub fn time_weighted_mean(&self, horizon: f64) -> Option<f64> {
        let first = self.points.first()?.0;
        let span = horizon - first;
        if span <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        for (i, &(t, v)) in self.points.iter().enumerate() {
            let end = self
                .points
                .get(i + 1)
                .map_or(horizon, |&(t2, _)| t2.min(horizon));
            if end > t {
                acc += v * (end - t);
            }
        }
        Some(acc / span)
    }
}

/// Registry of named counters, gauges, histograms, and time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, StreamingHistogram>,
    series: BTreeMap<&'static str, TimeSeries>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the counter `name` by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.inc_by(name, 1);
    }

    /// Increment the counter `name` by `delta`.
    pub fn inc_by(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name`, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into the (coarse) histogram `name`, creating it on
    /// first use.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(StreamingHistogram::coarse)
            .record(value);
    }

    /// The histogram `name`, if any samples were observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&StreamingHistogram> {
        self.histograms.get(name)
    }

    /// Append `(time, value)` to the series `name`, creating it on first
    /// use.
    pub fn sample(&mut self, name: &'static str, time: f64, value: f64) {
        self.series.entry(name).or_default().push(time, value);
    }

    /// The time series `name`, if any samples were taken.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All counters in deterministic (name) order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All series names in deterministic order.
    pub fn series_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.series.keys().copied()
    }
}

/// Resident-set size of the current process in bytes, read from
/// `/proc/self/statm` (Linux). Returns 0 where unavailable — callers
/// must treat it as best-effort and keep it out of deterministic
/// outputs.
#[must_use]
pub fn resident_set_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
            if let Some(pages) = statm.split_whitespace().nth(1) {
                if let Ok(pages) = pages.parse::<u64>() {
                    return pages * 4096;
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut m = MetricsRegistry::new();
        m.inc("jobs");
        m.inc_by("jobs", 4);
        m.set_gauge("queue_depth", 3.0);
        assert_eq!(m.counter("jobs"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("queue_depth"), Some(3.0));
        assert_eq!(m.gauge("never"), None);
    }

    #[test]
    fn histograms_accumulate_observations() {
        let mut m = MetricsRegistry::new();
        for x in [1.0, 2.0, 3.0] {
            m.observe("latency", x);
        }
        let h = m.histogram("latency").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn series_record_in_order_and_average() {
        let mut m = MetricsRegistry::new();
        m.sample("depth", 0.0, 2.0);
        m.sample("depth", 1.0, 4.0);
        let s = m.series("depth").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(4.0));
        // 2.0 holds for 1s, 4.0 for 1s over [0, 2].
        assert_eq!(s.time_weighted_mean(2.0), Some(3.0));
        assert_eq!(TimeSeries::new().time_weighted_mean(1.0), None);
    }

    #[test]
    fn iteration_order_is_name_sorted() {
        let mut m = MetricsRegistry::new();
        m.inc("zeta");
        m.inc("alpha");
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn resident_set_is_nonzero_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(resident_set_bytes() > 0);
        }
    }
}
