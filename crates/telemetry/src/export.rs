//! Trace exporters: deterministic JSONL event logs and Chrome
//! trace-event timelines.
//!
//! Both formats are emitted with hand-rolled JSON (the workspace builds
//! without registry access, so no serde): field order is fixed per event
//! type and floats use Rust's shortest-round-trip `Display`, making the
//! output byte-stable for a given event sequence. Since trace events
//! carry only virtual-clock times, two runs of the same seed export
//! byte-identical files — a property CI enforces.
//!
//! The Chrome format ([`chrome_trace`]) loads in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): pid 1 holds one track per
//! worker (task spans, redo spans), pid 2 one track per tenant (job
//! lifetime spans plus recovery-rung instants). Virtual seconds map to
//! trace microseconds.

use crate::event::{TraceEvent, TraceEventKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize events as JSON Lines: one object per event, fixed field
/// order, trailing newline after every line.
#[must_use]
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let t = e.time;
        match &e.kind {
            TraceEventKind::JobArrival {
                job,
                tenant,
                preset,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"job_arrival","job":{job},"tenant":{tenant},"preset":"{}"}}"#,
                    esc(preset)
                );
            }
            TraceEventKind::Malformed { job } => {
                let _ = writeln!(out, r#"{{"t":{t},"type":"malformed","job":{job}}}"#);
            }
            TraceEventKind::RateLimited { job } => {
                let _ = writeln!(out, r#"{{"t":{t},"type":"rate_limited","job":{job}}}"#);
            }
            TraceEventKind::Rejected { job } => {
                let _ = writeln!(out, r#"{{"t":{t},"type":"rejected","job":{job}}}"#);
            }
            TraceEventKind::Admitted { job, leader } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"admitted","job":{job},"leader":{leader}}}"#
                );
            }
            TraceEventKind::BatchFormed { leader, members } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"batch_formed","leader":{leader},"members":{members}}}"#
                );
            }
            TraceEventKind::BatchFlush { pending } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"batch_flush","pending":{pending}}}"#
                );
            }
            TraceEventKind::IterationStart {
                job,
                iteration,
                generation,
                rhs,
                share,
                degraded,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"iteration_start","job":{job},"iteration":{iteration},"generation":{generation},"rhs":{rhs},"share":{share},"degraded":{degraded}}}"#
                );
            }
            TraceEventKind::RecoveryRung {
                job,
                generation,
                rung,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"recovery_rung","job":{job},"generation":{generation},"rung":{rung}}}"#
                );
            }
            TraceEventKind::TaskDispatch {
                job,
                worker,
                generation,
                chunks,
                redo,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"task_dispatch","job":{job},"worker":{worker},"generation":{generation},"chunks":{chunks},"redo":{redo}}}"#
                );
            }
            TraceEventKind::TaskComplete {
                job,
                worker,
                generation,
                redo,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"task_complete","job":{job},"worker":{worker},"generation":{generation},"redo":{redo}}}"#
                );
            }
            TraceEventKind::TaskCancel {
                job,
                worker,
                generation,
                redo,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"task_cancel","job":{job},"worker":{worker},"generation":{generation},"redo":{redo}}}"#
                );
            }
            TraceEventKind::Decode {
                job,
                generation,
                seconds,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"decode","job":{job},"generation":{generation},"seconds":{seconds}}}"#
                );
            }
            TraceEventKind::Verify { job, generation } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"verify","job":{job},"generation":{generation}}}"#
                );
            }
            TraceEventKind::IterationComplete {
                job,
                iteration,
                generation,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"iteration_complete","job":{job},"iteration":{iteration},"generation":{generation}}}"#
                );
            }
            TraceEventKind::JobComplete { job, tenant } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"job_complete","job":{job},"tenant":{tenant}}}"#
                );
            }
            TraceEventKind::JobFailed { job, tenant } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"job_failed","job":{job},"tenant":{tenant}}}"#
                );
            }
            TraceEventKind::WorkerUp { worker } => {
                let _ = writeln!(out, r#"{{"t":{t},"type":"worker_up","worker":{worker}}}"#);
            }
            TraceEventKind::WorkerDown { worker } => {
                let _ = writeln!(out, r#"{{"t":{t},"type":"worker_down","worker":{worker}}}"#);
            }
            TraceEventKind::Rebalance { resident } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"rebalance","resident":{resident}}}"#
                );
            }
            TraceEventKind::RoundParked {
                job,
                iteration,
                generation,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"round_parked","job":{job},"iteration":{iteration},"generation":{generation}}}"#
                );
            }
            TraceEventKind::RoundRetired {
                job,
                iteration,
                generation,
                parked,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"round_retired","job":{job},"iteration":{iteration},"generation":{generation},"parked":{parked}}}"#
                );
            }
            TraceEventKind::PipelineStall {
                job,
                generation,
                seconds,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"t":{t},"type":"pipeline_stall","job":{job},"generation":{generation},"seconds":{seconds}}}"#
                );
            }
        }
    }
    out
}

/// How a Chrome span ended, recorded in its `args`.
#[derive(Clone, Copy)]
enum SpanEnd {
    Complete,
    Cancel,
    Superseded,
    Open,
    Failed,
    Rejected,
    RateLimited,
    Malformed,
}

impl SpanEnd {
    fn tag(self) -> &'static str {
        match self {
            SpanEnd::Complete => "complete",
            SpanEnd::Cancel => "cancel",
            SpanEnd::Superseded => "superseded",
            SpanEnd::Open => "open",
            SpanEnd::Failed => "failed",
            SpanEnd::Rejected => "rejected",
            SpanEnd::RateLimited => "rate_limited",
            SpanEnd::Malformed => "malformed",
        }
    }
}

/// Process id used for the per-worker track group.
const PID_WORKERS: u32 = 1;
/// Process id used for the per-tenant track group.
const PID_TENANTS: u32 = 2;

/// Serialize events into the Chrome trace-event JSON format
/// (`chrome://tracing` / Perfetto), one track per worker and per
/// tenant. Virtual seconds become trace microseconds.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let last_time = events.last().map_or(0.0, |e| e.time);
    let mut tenant_of: BTreeMap<u64, u32> = BTreeMap::new();
    let mut workers: BTreeSet<usize> = BTreeSet::new();
    let mut tenants: BTreeSet<u32> = BTreeSet::new();
    for e in events {
        match e.kind {
            TraceEventKind::JobArrival { job, tenant, .. } => {
                tenant_of.insert(job, tenant);
                tenants.insert(tenant);
            }
            TraceEventKind::TaskDispatch { worker, .. }
            | TraceEventKind::TaskComplete { worker, .. }
            | TraceEventKind::TaskCancel { worker, .. }
            | TraceEventKind::WorkerUp { worker }
            | TraceEventKind::WorkerDown { worker } => {
                workers.insert(worker);
            }
            // No worker or tenant identity to collect.
            TraceEventKind::Malformed { .. }
            | TraceEventKind::RateLimited { .. }
            | TraceEventKind::Rejected { .. }
            | TraceEventKind::Admitted { .. }
            | TraceEventKind::BatchFormed { .. }
            | TraceEventKind::BatchFlush { .. }
            | TraceEventKind::IterationStart { .. }
            | TraceEventKind::RecoveryRung { .. }
            | TraceEventKind::Decode { .. }
            | TraceEventKind::Verify { .. }
            | TraceEventKind::IterationComplete { .. }
            | TraceEventKind::JobComplete { .. }
            | TraceEventKind::JobFailed { .. }
            | TraceEventKind::Rebalance { .. }
            | TraceEventKind::RoundParked { .. }
            | TraceEventKind::RoundRetired { .. }
            | TraceEventKind::PipelineStall { .. } => {}
        }
    }

    let mut rows: Vec<String> = Vec::new();
    let meta = |name: &str, pid: u32, tid: u64, label: &str| {
        format!(
            r#"{{"name":"{name}","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            esc(label)
        )
    };
    rows.push(meta("process_name", PID_WORKERS, 0, "workers"));
    rows.push(meta("process_name", PID_TENANTS, 0, "tenants"));
    for &w in &workers {
        rows.push(meta(
            "thread_name",
            PID_WORKERS,
            w as u64,
            &format!("worker {w}"),
        ));
    }
    for &t in &tenants {
        rows.push(meta(
            "thread_name",
            PID_TENANTS,
            u64::from(t),
            &format!("tenant {t}"),
        ));
    }

    let span = |name: &str, cat: &str, pid: u32, tid: u64, start: f64, end: f64, args: String| {
        let ts = start * 1e6;
        let dur = (end - start).max(0.0) * 1e6;
        format!(
            r#"{{"name":"{}","cat":"{cat}","ph":"X","pid":{pid},"tid":{tid},"ts":{ts},"dur":{dur},"args":{{{args}}}}}"#,
            esc(name)
        )
    };

    // Worker tracks: one span per dispatched task, closed by its
    // complete/cancel (or superseded by a re-dispatch of the same redo
    // slot, or left open at end of trace).
    let mut open_tasks: BTreeMap<(u64, usize, u64, bool), f64> = BTreeMap::new();
    // Tenant tracks: one span per job lifetime.
    let mut open_jobs: BTreeMap<u64, f64> = BTreeMap::new();
    let close_task = |rows: &mut Vec<String>,
                      key: (u64, usize, u64, bool),
                      start: f64,
                      end: f64,
                      how: SpanEnd| {
        let (job, worker, generation, redo) = key;
        let name = if redo {
            format!("job {job} g{generation} redo")
        } else {
            format!("job {job} g{generation}")
        };
        let cat = if redo { "redo" } else { "task" };
        rows.push(span(
            &name,
            cat,
            PID_WORKERS,
            worker as u64,
            start,
            end,
            format!(
                r#""job":{job},"generation":{generation},"end":"{}""#,
                how.tag()
            ),
        ));
    };
    let close_job = |rows: &mut Vec<String>,
                     tenant_of: &BTreeMap<u64, u32>,
                     job: u64,
                     start: f64,
                     end: f64,
                     how: SpanEnd| {
        let tid = u64::from(tenant_of.get(&job).copied().unwrap_or(0));
        rows.push(span(
            &format!("job {job}"),
            "job",
            PID_TENANTS,
            tid,
            start,
            end,
            format!(r#""job":{job},"end":"{}""#, how.tag()),
        ));
    };

    for e in events {
        match e.kind {
            TraceEventKind::JobArrival { job, .. } => {
                open_jobs.insert(job, e.time);
            }
            TraceEventKind::JobComplete { job, .. } => {
                if let Some(start) = open_jobs.remove(&job) {
                    close_job(&mut rows, &tenant_of, job, start, e.time, SpanEnd::Complete);
                }
            }
            TraceEventKind::JobFailed { job, .. } => {
                if let Some(start) = open_jobs.remove(&job) {
                    close_job(&mut rows, &tenant_of, job, start, e.time, SpanEnd::Failed);
                }
            }
            TraceEventKind::Rejected { job } => {
                if let Some(start) = open_jobs.remove(&job) {
                    close_job(&mut rows, &tenant_of, job, start, e.time, SpanEnd::Rejected);
                }
            }
            TraceEventKind::RateLimited { job } => {
                if let Some(start) = open_jobs.remove(&job) {
                    close_job(
                        &mut rows,
                        &tenant_of,
                        job,
                        start,
                        e.time,
                        SpanEnd::RateLimited,
                    );
                }
            }
            TraceEventKind::Malformed { job } => {
                if let Some(start) = open_jobs.remove(&job) {
                    close_job(
                        &mut rows,
                        &tenant_of,
                        job,
                        start,
                        e.time,
                        SpanEnd::Malformed,
                    );
                }
            }
            TraceEventKind::TaskDispatch {
                job,
                worker,
                generation,
                redo,
                ..
            } => {
                let key = (job, worker, generation, redo);
                // A re-dispatch into the same slot (merged redo work)
                // supersedes the outstanding span.
                if let Some(start) = open_tasks.insert(key, e.time) {
                    close_task(&mut rows, key, start, e.time, SpanEnd::Superseded);
                }
            }
            TraceEventKind::TaskComplete {
                job,
                worker,
                generation,
                redo,
            } => {
                let key = (job, worker, generation, redo);
                if let Some(start) = open_tasks.remove(&key) {
                    close_task(&mut rows, key, start, e.time, SpanEnd::Complete);
                }
            }
            TraceEventKind::TaskCancel {
                job,
                worker,
                generation,
                redo,
            } => {
                let key = (job, worker, generation, redo);
                if let Some(start) = open_tasks.remove(&key) {
                    close_task(&mut rows, key, start, e.time, SpanEnd::Cancel);
                }
            }
            TraceEventKind::RecoveryRung { job, rung, .. } => {
                let tid = u64::from(tenant_of.get(&job).copied().unwrap_or(0));
                let ts = e.time * 1e6;
                rows.push(format!(
                    r#"{{"name":"rung {rung}","cat":"recovery","ph":"i","s":"t","pid":{PID_TENANTS},"tid":{tid},"ts":{ts},"args":{{"job":{job}}}}}"#
                ));
            }
            // Not rendered as chrome spans or instants.
            TraceEventKind::Admitted { .. }
            | TraceEventKind::BatchFormed { .. }
            | TraceEventKind::BatchFlush { .. }
            | TraceEventKind::IterationStart { .. }
            | TraceEventKind::Decode { .. }
            | TraceEventKind::Verify { .. }
            | TraceEventKind::IterationComplete { .. }
            | TraceEventKind::WorkerUp { .. }
            | TraceEventKind::WorkerDown { .. }
            | TraceEventKind::Rebalance { .. }
            | TraceEventKind::RoundParked { .. }
            | TraceEventKind::RoundRetired { .. }
            | TraceEventKind::PipelineStall { .. } => {}
        }
    }
    // Anything still in flight when the trace ends renders to the last
    // timestamp, tagged open.
    for (key, start) in std::mem::take(&mut open_tasks) {
        close_task(&mut rows, key, start, last_time, SpanEnd::Open);
    }
    for (job, start) in std::mem::take(&mut open_jobs) {
        close_job(&mut rows, &tenant_of, job, start, last_time, SpanEnd::Open);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Minimal strict JSON syntax checker (objects, arrays, strings with
/// escapes, numbers, literals). Used by tests and examples to assert
/// exporter output is well-formed without pulling in a JSON dependency.
///
/// # Errors
/// Returns the byte offset and a short description of the first syntax
/// error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos:?}")),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos:?}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos:?}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos:?}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos:?}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn sample_events() -> Vec<TraceEvent> {
        use TraceEventKind as K;
        let ev = |time, kind| TraceEvent { time, kind };
        vec![
            ev(
                0.0,
                K::JobArrival {
                    job: 1,
                    tenant: 0,
                    preset: "small",
                },
            ),
            ev(0.0, K::Admitted { job: 1, leader: 1 }),
            ev(
                0.0,
                K::IterationStart {
                    job: 1,
                    iteration: 0,
                    generation: 1,
                    rhs: 1,
                    share: 0.5,
                    degraded: false,
                },
            ),
            ev(
                0.0,
                K::RecoveryRung {
                    job: 1,
                    generation: 1,
                    rung: 1,
                },
            ),
            ev(
                0.0,
                K::TaskDispatch {
                    job: 1,
                    worker: 2,
                    generation: 1,
                    chunks: 3,
                    redo: false,
                },
            ),
            ev(
                1.25,
                K::TaskComplete {
                    job: 1,
                    worker: 2,
                    generation: 1,
                    redo: false,
                },
            ),
            ev(
                1.25,
                K::Decode {
                    job: 1,
                    generation: 1,
                    seconds: 0.001,
                },
            ),
            ev(
                1.251,
                K::Verify {
                    job: 1,
                    generation: 1,
                },
            ),
            ev(1.251, K::JobComplete { job: 1, tenant: 0 }),
        ]
    }

    #[test]
    fn jsonl_lines_are_valid_json_with_fixed_fields() {
        let out = jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 9);
        for line in &lines {
            validate_json(line).expect("every JSONL line parses");
        }
        assert_eq!(
            lines[0],
            r#"{"t":0,"type":"job_arrival","job":1,"tenant":0,"preset":"small"}"#
        );
        assert!(lines[4].contains(r#""type":"task_dispatch""#));
    }

    #[test]
    fn jsonl_is_deterministic() {
        let events = sample_events();
        assert_eq!(jsonl(&events), jsonl(&events));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let out = chrome_trace(&sample_events());
        validate_json(&out).expect("chrome trace parses as JSON");
        assert!(out.contains(r#""name":"process_name""#));
        assert!(out.contains(r#""name":"worker 2""#));
        assert!(out.contains(r#""name":"tenant 0""#));
        assert!(out.contains(r#""ph":"X""#));
        // Task span: dispatched at 0, completed at 1.25s -> 1.25e6 us.
        assert!(out.contains(r#""ts":0,"dur":1250000"#));
        assert!(out.contains(r#""name":"rung 1""#));
    }

    #[test]
    fn unclosed_spans_render_as_open() {
        use TraceEventKind as K;
        let events = vec![
            TraceEvent {
                time: 0.0,
                kind: K::JobArrival {
                    job: 7,
                    tenant: 1,
                    preset: "m",
                },
            },
            TraceEvent {
                time: 0.5,
                kind: K::TaskDispatch {
                    job: 7,
                    worker: 0,
                    generation: 3,
                    chunks: 1,
                    redo: true,
                },
            },
        ];
        let out = chrome_trace(&events);
        validate_json(&out).unwrap();
        assert!(out.contains(r#""end":"open""#));
        assert!(out.contains(r#""cat":"redo""#));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json(r#"{"a":[1,2.5,-3e-2],"b":"x\n","c":null}"#).unwrap();
        assert!(validate_json(r#"{"a":}"#).is_err());
        assert!(validate_json(r#"{"a":1"#).is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json(r#"{"a":1} extra"#).is_err());
    }
}
