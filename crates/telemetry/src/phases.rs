//! Per-phase time accounting for iteration rounds.
//!
//! The engine splits every completed round's service time into phases.
//! Two independent instances live in a `ServiceReport`:
//!
//! * **virtual** — decomposed from the event-driven clock, so the split
//!   is deterministic and identical across execution backends. By
//!   construction `dispatch + compute + collect + decode` sums exactly
//!   to the total round span (encode and verify are instantaneous on
//!   the virtual clock: encode happens at admission, verification is a
//!   master-side check folded into decode).
//! * **wall** — measured with `std::time::Instant` by the numeric
//!   backends (encode/decode/verify in the master, real thread busy
//!   time from `ThreadedCluster`). Nondeterministic; never exported
//!   into trace logs or diffed outputs.

/// Accumulated seconds per phase of an iteration round.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Encoding the model matrix (wall only: virtual encode is folded
    /// into admission).
    pub encode: f64,
    /// Shipping inputs to workers (leader's input transfer time).
    pub dispatch: f64,
    /// Worker compute occupancy.
    pub compute: f64,
    /// Shipping results back (completing worker's reply transfer).
    pub collect: f64,
    /// Master-side decode of the round's coverage.
    pub decode: f64,
    /// Verification against the reference result (wall only: free on
    /// the virtual clock).
    pub verify: f64,
}

impl PhaseTotals {
    /// All-zero totals.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum across all phases.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.encode + self.dispatch + self.compute + self.collect + self.decode + self.verify
    }

    /// Element-wise accumulate.
    pub fn add(&mut self, other: &Self) {
        self.encode += other.encode;
        self.dispatch += other.dispatch;
        self.compute += other.compute;
        self.collect += other.collect;
        self.decode += other.decode;
        self.verify += other.verify;
    }

    /// `(name, seconds)` pairs in canonical order — the order exporters
    /// and tables use.
    #[must_use]
    pub fn named(&self) -> [(&'static str, f64); 6] {
        [
            ("encode", self.encode),
            ("dispatch", self.dispatch),
            ("compute", self.compute),
            ("collect", self.collect),
            ("decode", self.decode),
            ("verify", self.verify),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_phases() {
        let p = PhaseTotals {
            encode: 1.0,
            dispatch: 2.0,
            compute: 3.0,
            collect: 4.0,
            decode: 5.0,
            verify: 6.0,
        };
        assert_eq!(p.total(), 21.0);
    }

    #[test]
    fn add_accumulates_elementwise() {
        let mut a = PhaseTotals {
            compute: 1.5,
            ..PhaseTotals::new()
        };
        let b = PhaseTotals {
            compute: 0.5,
            decode: 2.0,
            ..PhaseTotals::new()
        };
        a.add(&b);
        assert_eq!(a.compute, 2.0);
        assert_eq!(a.decode, 2.0);
        assert_eq!(a.total(), 4.0);
    }

    #[test]
    fn named_order_is_pipeline_order() {
        let names: Vec<_> = PhaseTotals::new().named().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec!["encode", "dispatch", "compute", "collect", "decode", "verify"]
        );
    }
}
