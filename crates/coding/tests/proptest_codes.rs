//! Property-based tests for the coding substrate.
//!
//! The invariant that makes S²C² correct at all is *per-chunk
//! any-k-of-n decodability*: whatever subset of workers computes a chunk,
//! as long as at least `k` (or `a·b`) distinct workers cover it, the decoder
//! must reconstruct the exact uncoded result. These properties drive random
//! code parameters, random data, and random per-chunk coverage patterns.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use s2c2_coding::chunks::WorkerChunkResult;
use s2c2_coding::mds::{MdsCode, MdsParams};
use s2c2_coding::polynomial::{PolyParams, PolynomialCode};
use s2c2_linalg::{Matrix, Vector};

/// Strategy: a valid (n, k) pair with n ≤ 12.
fn mds_params() -> impl Strategy<Value = MdsParams> {
    (2usize..=12)
        .prop_flat_map(|n| (Just(n), 1usize..=n))
        .prop_map(|(n, k)| MdsParams { n, k })
}

/// Strategy: per-chunk worker coverage — for each chunk, a shuffled subset
/// of workers of size ≥ k.
fn coverage(n: usize, k: usize, chunks: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        (Just(()), any::<u64>()).prop_map(move |(_, seed)| {
            // Deterministic shuffle from the seed: pick a subset size in
            // [k, n], then take the first `size` of a seeded permutation.
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut ids: Vec<usize> = (0..n).collect();
            ids.shuffle(&mut rng);
            let size = k + (seed as usize % (n - k + 1));
            ids.truncate(size);
            ids
        }),
        chunks,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any coverage with ≥ k workers per chunk decodes A·x exactly.
    #[test]
    fn mds_decodes_any_k_coverage(
        params in mds_params(),
        chunks in 1usize..=4,
        cols in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let cover_strategy = coverage(params.n, params.k, chunks);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let cover = cover_strategy.new_tree(&mut runner).unwrap().current();

        let rows = params.k * chunks * 2 + (seed as usize % 5); // odd sizes force padding
        let a = Matrix::from_fn(rows, cols, |r, c| {
            (((r * 7 + c * 3) as f64) + (seed % 11) as f64 * 0.25).sin()
        });
        let x = Vector::from_fn(cols, |i| 1.0 + (i as f64) * 0.5);
        let code = MdsCode::new(params).unwrap();
        let enc = code.encode(&a, chunks).unwrap();

        let mut responses = Vec::new();
        for (chunk, workers) in cover.iter().enumerate() {
            for &w in workers {
                responses.push(enc.worker_compute_chunk(w, chunk, &x));
            }
        }
        let decoded = code.decode_matvec(enc.layout(), &responses).unwrap();
        let expect = a.matvec(&x);
        for (d, e) in decoded.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((d - e).abs() < 1e-6 * (1.0 + e.abs()),
                "decode mismatch: {d} vs {e}");
        }
    }

    /// Coverage below k on any chunk must fail with NotEnoughResponses,
    /// never silently return wrong data.
    #[test]
    fn mds_under_coverage_fails_loudly(
        n in 3usize..=10,
        chunks in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let k = 2 + (seed as usize % (n - 1)).min(n - 1);
        let k = k.min(n).max(2);
        let params = MdsParams { n, k };
        let a = Matrix::from_fn(k * chunks * 2, 3, |r, c| (r + c) as f64);
        let x = Vector::filled(3, 1.0);
        let code = MdsCode::new(params).unwrap();
        let enc = code.encode(&a, chunks).unwrap();

        // Cover every chunk with exactly k-1 workers.
        let mut responses = Vec::new();
        for chunk in 0..chunks {
            for w in 0..k - 1 {
                responses.push(enc.worker_compute_chunk(w, chunk, &x));
            }
        }
        prop_assert!(code.decode_matvec(enc.layout(), &responses).is_err());
    }

    /// Polynomial codes decode A·B from any (a·b)-subset per chunk.
    #[test]
    fn polynomial_decodes_any_threshold_coverage(
        n in 4usize..=9,
        chunks in 1usize..=3,
        seed in any::<u64>(),
    ) {
        // Choose a grid that fits in n.
        let grids: Vec<(usize, usize)> = [(2usize, 2usize), (3, 2), (2, 3), (4, 2), (3, 3)]
            .into_iter()
            .filter(|(a, b)| a * b <= n)
            .collect();
        let (ga, gb) = grids[(seed as usize) % grids.len()];
        let params = PolyParams { n, a: ga, b: gb };
        let code = PolynomialCode::new(params).unwrap();

        let inner = 4;
        let a = Matrix::from_fn(ga * chunks * 2 + 1, inner, |r, c| {
            ((r * 5 + c) as f64 * 0.3).cos()
        });
        let b = Matrix::from_fn(inner, gb * 2 + 1, |r, c| ((r + c * 3) as f64 * 0.2).sin());
        let enc = code.encode_pair(&a, &b, chunks).unwrap();

        let need = params.recovery_threshold();
        // Seeded rotation gives a different worker subset per chunk.
        let mut responses = Vec::new();
        for chunk in 0..chunks {
            let offset = (seed as usize + chunk) % n;
            for i in 0..need {
                let w = (offset + i) % n;
                responses.push(enc.worker_compute_chunk(w, chunk, None));
            }
        }
        let decoded = code.decode_product(enc.layout(), &responses).unwrap();
        let expect = a.matmul(&b);
        prop_assert!(decoded.max_abs_diff(&expect) < 1e-6,
            "poly decode max diff {}", decoded.max_abs_diff(&expect));
    }

    /// Encoding is linear: encode(A)·x == encode rows of A·x under the
    /// same generator combination. Verified via parity workers directly.
    #[test]
    fn mds_parity_partitions_are_generator_combinations(
        params in mds_params(),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.n > params.k);
        let a = Matrix::from_fn(params.k * 4, 3, |r, c| ((r * 3 + c) as f64) + (seed % 7) as f64);
        let code = MdsCode::new(params).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let prow = enc.layout().partition_rows();
        for w in params.k..params.n {
            let g = code.generator_row(w);
            let mut expect = Matrix::zeros(prow, 3);
            for (j, &gj) in g.iter().enumerate() {
                expect.axpy(gj, &a.row_block(j * prow, (j + 1) * prow));
            }
            prop_assert!(enc.partition(w).max_abs_diff(&expect) < 1e-9);
        }
    }

    /// Duplicate (worker, chunk) submissions are rejected.
    #[test]
    fn duplicate_responses_rejected(seed in any::<u64>()) {
        let params = MdsParams { n: 4, k: 2 };
        let a = Matrix::from_fn(8, 2, |r, c| (r + c) as f64 + (seed % 3) as f64);
        let x = Vector::filled(2, 1.0);
        let code = MdsCode::new(params).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let r0 = enc.worker_compute_chunk(0, 0, &x);
        let responses = vec![r0.clone(), r0, enc.worker_compute_chunk(1, 0, &x)];
        prop_assert!(code.decode_matvec(enc.layout(), &responses).is_err());
    }
}

/// Non-proptest sanity check: decoding is deterministic across calls.
#[test]
fn decode_is_deterministic() {
    let params = MdsParams { n: 6, k: 4 };
    let a = Matrix::from_fn(32, 5, |r, c| ((r * c) as f64).sqrt());
    let x = Vector::from_fn(5, |i| i as f64 + 0.5);
    let code = MdsCode::new(params).unwrap();
    let enc = code.encode(&a, 2).unwrap();
    let responses: Vec<WorkerChunkResult> = (1..5)
        .flat_map(|w| enc.worker_compute_chunks(w, &[0, 1], &x))
        .collect();
    let y1 = code.decode_matvec(enc.layout(), &responses).unwrap();
    let y2 = code.decode_matvec(enc.layout(), &responses).unwrap();
    assert_eq!(y1, y2);
}
