//! Encode-once cache for recurring model matrices.
//!
//! Encoding is the one expensive, *amortizable* step of the coded
//! pipeline: `O(rows · cols · n/k)` flops plus an `n`-partition copy of
//! the data, paid before a single useful matvec runs. A serving system
//! sees the same model matrix over and over (trace workloads re-submit
//! identical models under fresh job ids), so re-encoding per job throws
//! that amortization away — the observation the serverless/rateless
//! straggler-mitigation line of work makes about deployed systems.
//!
//! [`EncodeCache`] memoizes `(matrix identity, code geometry) →
//! (code, encoded partitions)` behind [`std::sync::Arc`], so concurrent
//! executors (one [`crate::mds::EncodedMatrix`] shared by many worker
//! threads) alias one allocation. Hit/miss counters are exposed for
//! service-level reporting.

use crate::error::CodingError;
use crate::mds::{EncodedMatrix, MdsCode, MdsParams};
use s2c2_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Identity of one encoding: *which* matrix under *which* code geometry.
///
/// `matrix_id` is caller-assigned identity (two jobs sharing an id claim
/// to carry the same matrix); the shape fields guard against id collisions
/// across differently-shaped matrices, and the code fields capture that
/// the same matrix under a different `(n, k)` or chunking is a different
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodeKey {
    /// Caller-assigned matrix identity.
    pub matrix_id: u64,
    /// Matrix rows (collision guard).
    pub rows: usize,
    /// Matrix columns (collision guard).
    pub cols: usize,
    /// Code length `n`.
    pub n: usize,
    /// Recovery threshold `k`.
    pub k: usize,
    /// Over-decomposition chunks per partition.
    pub chunks_per_partition: usize,
}

/// One cached encoding: the code (needed to decode) plus the encoded
/// partitions (what workers compute against).
#[derive(Debug, Clone)]
pub struct CachedEncoding {
    /// The `(n, k)` MDS code the matrix was encoded with.
    pub code: MdsCode,
    /// The encoded partitions.
    pub encoded: EncodedMatrix,
}

/// Memoizes encodings by [`EncodeKey`], counting hits and misses.
#[derive(Debug, Default)]
pub struct EncodeCache {
    map: HashMap<EncodeKey, Arc<CachedEncoding>>,
    hits: u64,
    misses: u64,
    encode_seconds: f64,
}

impl EncodeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        EncodeCache::default()
    }

    /// Returns the cached encoding for `key`, building (and memoizing)
    /// it from `matrix()` on a miss. The matrix closure is only invoked
    /// on misses, so recurring jobs skip both materialization and
    /// encoding.
    ///
    /// # Errors
    ///
    /// Propagates [`CodingError`] from code construction or encoding on
    /// a miss; errors are not cached.
    pub fn get_or_encode(
        &mut self,
        key: EncodeKey,
        matrix: impl FnOnce() -> Matrix,
    ) -> Result<Arc<CachedEncoding>, CodingError> {
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.misses += 1;
        let t0 = Instant::now();
        let code = MdsCode::new(MdsParams { n: key.n, k: key.k })?;
        let a = matrix();
        debug_assert_eq!((a.rows(), a.cols()), (key.rows, key.cols));
        let encoded = code.encode(&a, key.chunks_per_partition)?;
        self.encode_seconds += t0.elapsed().as_secs_f64();
        let entry = Arc::new(CachedEncoding { code, encoded });
        self.map.insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// Lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to encode.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total wall-clock seconds spent building encodings on the miss
    /// path (matrix materialization included — on a miss it happens
    /// solely to be encoded). Hits cost nothing here; the ratio of this
    /// to run time is the amortization the cache buys.
    #[must_use]
    pub fn encode_seconds(&self) -> f64 {
        self.encode_seconds
    }

    /// Distinct encodings held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no encodings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_linalg::Vector;

    fn key(matrix_id: u64, n: usize, k: usize, chunks: usize) -> EncodeKey {
        EncodeKey {
            matrix_id,
            rows: 60,
            cols: 5,
            n,
            k,
            chunks_per_partition: chunks,
        }
    }

    fn matrix() -> Matrix {
        Matrix::from_fn(60, 5, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0)
    }

    #[test]
    fn second_lookup_hits_and_aliases() {
        let mut cache = EncodeCache::new();
        let a = cache.get_or_encode(key(1, 6, 4, 3), matrix).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let mut built_again = false;
        let b = cache
            .get_or_encode(key(1, 6, 4, 3), || {
                built_again = true;
                matrix()
            })
            .unwrap();
        assert!(!built_again, "hits must not rebuild the matrix");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "hits alias one allocation");
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_identities_and_geometries_miss() {
        let mut cache = EncodeCache::new();
        cache.get_or_encode(key(1, 6, 4, 3), matrix).unwrap();
        cache.get_or_encode(key(2, 6, 4, 3), matrix).unwrap();
        cache.get_or_encode(key(1, 6, 3, 3), matrix).unwrap();
        cache.get_or_encode(key(1, 6, 4, 5), matrix).unwrap();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cached_encoding_decodes_correctly() {
        let mut cache = EncodeCache::new();
        let entry = cache.get_or_encode(key(9, 5, 3, 2), matrix).unwrap();
        let a = matrix();
        let x = Vector::from_fn(5, |i| 1.0 + i as f64 * 0.5);
        let chunks: Vec<usize> = (0..entry.encoded.layout().chunks_per_partition).collect();
        let responses: Vec<_> = [0usize, 2, 4]
            .iter()
            .flat_map(|&w| entry.encoded.worker_compute_chunks(w, &chunks, &x))
            .collect();
        let y = entry
            .code
            .decode_matvec(entry.encoded.layout(), &responses)
            .unwrap();
        s2c2_linalg::assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn invalid_geometry_errors_and_is_not_cached() {
        let mut cache = EncodeCache::new();
        assert!(cache.get_or_encode(key(1, 3, 4, 2), matrix).is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn encode_time_accrues_on_misses_only() {
        let mut cache = EncodeCache::new();
        assert_eq!(cache.encode_seconds(), 0.0);
        cache.get_or_encode(key(1, 6, 4, 3), matrix).unwrap();
        let after_miss = cache.encode_seconds();
        assert!(after_miss > 0.0, "a miss spends encode time");
        cache.get_or_encode(key(1, 6, 4, 3), matrix).unwrap();
        assert_eq!(cache.encode_seconds(), after_miss, "hits are free");
    }

    #[test]
    fn empty_cache_reports_zero() {
        let cache = EncodeCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate(), 0.0);
    }
}
