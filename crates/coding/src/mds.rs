//! Systematic `(n, k)`-MDS codes for linear (matrix–vector) computations.
//!
//! The data matrix `A` is split into `k` row blocks `A_0 … A_{k−1}`; worker
//! `i < k` stores `A_i` unchanged (systematic part) and worker `i ≥ k`
//! stores the combination `Σ_j P[i−k][j] · A_j` (parity part). The code is
//! MDS iff every square submatrix of `P` is nonsingular, in which case
//! *any* `k` of the `n` per-chunk results reconstruct that chunk of `A·x`.
//!
//! **Parity construction.** Over the reals, the classic structured MDS
//! generators (Vandermonde, Cauchy) have *exponentially* ill-conditioned
//! submatrices — a 10×10 Cauchy block is Hilbert-like (κ ≈ 10¹³) and
//! destroys `f64` decoding at the paper's `(50, 40)` scale. Following the
//! established practice for real-number erasure codes (Chen & Dongarra,
//! *Numerically stable real-number codes based on random matrices*), the
//! parity block is a **seeded random matrix**: every square submatrix is
//! nonsingular with probability 1, submatrix condition numbers stay small
//! (tens, not 10¹³), and the fixed per-`(n,k)` seed keeps encodings
//! deterministic and reproducible. The conditioning ablation bench
//! (`ablation_conditioning`) quantifies this choice against Cauchy and
//! Vandermonde parities.
//!
//! Because the code is systematic, decoding a chunk with `m` missing
//! systematic blocks solves only an `m × m` system (`m ≤ n − k` ≤ 10 in
//! every configuration the paper evaluates).

use crate::chunks::{
    group_blocks_by_chunk, group_by_chunk, ChunkLayout, MultiChunkResult, WorkerChunkResult,
};
use crate::error::CodingError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2c2_linalg::multivector::ROW_BLOCK_ELEMS;
use s2c2_linalg::{LuFactors, Matrix, MultiVector, Vector};

/// `(n, k)` MDS code parameters: `n` workers, any `k` responses decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdsParams {
    /// Total number of coded partitions (= workers).
    pub n: usize,
    /// Number of data partitions; any `k` of `n` responses decode.
    pub k: usize,
}

impl MdsParams {
    /// Creates the parameter pair.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k <= n` (use [`MdsCode::new`] for a fallible
    /// constructor; this one is for literals in examples/benches).
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k <= n, "require 0 < k <= n, got ({n},{k})");
        MdsParams { n, k }
    }

    /// Number of stragglers the code tolerates (`n − k`).
    #[must_use]
    pub fn straggler_tolerance(&self) -> usize {
        self.n - self.k
    }

    /// Storage overhead factor relative to uncoded even partitioning
    /// (`n/k`, e.g. 1.2 for (12,10)).
    #[must_use]
    pub fn storage_overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }
}

/// A constructed `(n, k)` MDS code (generator rows materialized).
#[derive(Debug, Clone)]
pub struct MdsCode {
    params: MdsParams,
    /// Parity block: `(n − k) × k` seeded random matrix (see module docs).
    parity: Matrix,
}

impl MdsCode {
    /// Builds the code with the default deterministic parity seed.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] unless `0 < k ≤ n`.
    pub fn new(params: MdsParams) -> Result<Self, CodingError> {
        Self::with_seed(params, 0x5C2C_0DE5)
    }

    /// Builds the code with an explicit parity seed.
    ///
    /// Different seeds give different (equally valid) codes; encoders and
    /// decoders must agree on the seed. Exposed for tests that want to
    /// exercise many code instances.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] unless `0 < k ≤ n`.
    pub fn with_seed(params: MdsParams, seed: u64) -> Result<Self, CodingError> {
        if params.k == 0 || params.k > params.n {
            return Err(CodingError::InvalidParams(format!(
                "require 0 < k <= n, got (n={}, k={})",
                params.n, params.k
            )));
        }
        // Mix (n, k) into the seed so each configuration gets an
        // independent parity block even under the same user seed.
        let mixed = seed
            ^ (params.n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (params.k as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut rng = StdRng::seed_from_u64(mixed);
        let rows = params.n - params.k;
        // Uniform in [-1, 1] \ {0}: a.s. every square submatrix is
        // nonsingular, magnitudes stay O(1).
        let parity = Matrix::from_fn(rows, params.k, |_, _| loop {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            if v.abs() > 1e-3 {
                break v;
            }
        });
        Ok(MdsCode { params, parity })
    }

    /// Code parameters.
    #[must_use]
    pub fn params(&self) -> MdsParams {
        self.params
    }

    /// Generator row for worker `i` (length `k`): unit vector for
    /// systematic workers, Cauchy row for parity workers.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn generator_row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.params.n, "worker index out of range");
        let k = self.params.k;
        if i < k {
            let mut row = vec![0.0; k];
            row[i] = 1.0;
            row
        } else {
            (0..k).map(|j| self.parity.get(i - k, j)).collect()
        }
    }

    /// Encodes a data matrix into `n` coded partitions with
    /// `chunks_per_partition`-way over-decomposition.
    ///
    /// Systematic partitions are plain row blocks of (zero-padded) `A`;
    /// parity partitions are Cauchy-weighted sums of all `k` blocks.
    ///
    /// # Errors
    ///
    /// Propagates layout errors for degenerate shapes.
    pub fn encode(
        &self,
        a: &Matrix,
        chunks_per_partition: usize,
    ) -> Result<EncodedMatrix, CodingError> {
        let layout = ChunkLayout::new(a.rows(), self.params.k, chunks_per_partition)?;
        let prow = layout.partition_rows();
        let cols = a.cols();
        let k = self.params.k;

        // Zero-padded view of A's row r (rows past the original are zero).
        let padded_row = |r: usize| -> Option<&[f64]> {
            if r < a.rows() {
                Some(a.row(r))
            } else {
                None
            }
        };

        let mut partitions = Vec::with_capacity(self.params.n);
        // Systematic partitions: copy (and pad) block i.
        for i in 0..k {
            let mut part = Matrix::zeros(prow, cols);
            for r in 0..prow {
                if let Some(src) = padded_row(i * prow + r) {
                    part.row_mut(r).copy_from_slice(src);
                }
            }
            partitions.push(part);
        }
        // Parity partitions: one cache-blocked pass over the data instead
        // of a full sweep per parity node. Row blocks are sized so the
        // source rows plus every parity destination block stay resident,
        // so each data element is read from memory once rather than
        // `n − k` times. Per output element the k contributions still
        // accumulate in ascending-j order, identical to a per-partition
        // sweep.
        let pcount = self.params.n - k;
        if pcount > 0 {
            let mut parity_parts = vec![Matrix::zeros(prow, cols); pcount];
            let block_rows = (ROW_BLOCK_ELEMS / (cols.max(1) * (pcount + 1))).clamp(1, prow);
            let mut b = 0;
            while b < prow {
                let bend = (b + block_rows).min(prow);
                for j in 0..k {
                    for r in b..bend {
                        let Some(src) = padded_row(j * prow + r) else {
                            continue;
                        };
                        for (p, part) in parity_parts.iter_mut().enumerate() {
                            let w = self.parity.get(p, j);
                            for (d, s) in part.row_mut(r).iter_mut().zip(src.iter()) {
                                *d += w * s;
                            }
                        }
                    }
                }
                b = bend;
            }
            partitions.extend(parity_parts);
        }

        Ok(EncodedMatrix {
            params: self.params,
            layout,
            partitions,
        })
    }

    /// Decodes the full `A·x` product from per-chunk worker results.
    ///
    /// Every chunk index must be covered by at least `k` distinct workers;
    /// extra responses beyond `k` are ignored (the fastest-`k` rule).
    /// Returns the product truncated to the original (unpadded) row count.
    ///
    /// # Errors
    ///
    /// * [`CodingError::NotEnoughResponses`] if any chunk has < `k` results.
    /// * [`CodingError::MalformedResponse`] / [`CodingError::DuplicateResponse`]
    ///   for inconsistent inputs.
    pub fn decode_matvec(
        &self,
        layout: &ChunkLayout,
        responses: &[WorkerChunkResult],
    ) -> Result<Vector, CodingError> {
        let rpc = layout.rows_per_chunk();
        let per_chunk = group_by_chunk(responses, self.params.n, layout, rpc)?
            .into_iter()
            .map(|rs| {
                rs.into_iter()
                    .map(|r| (r.worker, r.values.as_slice()))
                    .collect()
            })
            .collect();
        let mut out = self.decode_stacked(layout, per_chunk, 1)?;
        out.truncate(layout.original_rows);
        Ok(Vector::from(out))
    }

    /// Decodes `A·x_m` for every member of a stacked batch from
    /// contiguous per-chunk blocks — the batch-first counterpart of
    /// [`Self::decode_matvec`].
    ///
    /// All blocks must carry the same member count; coverage rules are
    /// as for single decoding (every chunk needs ≥ `k` distinct
    /// workers, fastest-`k` preferred). The LU system of a chunk is
    /// factored once and back-substituted over the whole stacked block,
    /// and each member's output is bit-identical to decoding that
    /// member's responses alone.
    ///
    /// Returns one output vector per member, truncated to the original
    /// row count.
    ///
    /// # Errors
    ///
    /// As [`Self::decode_matvec`]; additionally
    /// [`CodingError::MalformedResponse`] for blocks with inconsistent
    /// member counts.
    pub fn decode_matvec_multi(
        &self,
        layout: &ChunkLayout,
        responses: &[MultiChunkResult],
    ) -> Result<Vec<Vector>, CodingError> {
        let Some(first) = responses.first() else {
            return Err(CodingError::NotEnoughResponses {
                chunk: 0,
                got: 0,
                need: self.params.k,
            });
        };
        let members = first.members;
        let rpc = layout.rows_per_chunk();
        let per_chunk = group_blocks_by_chunk(responses, self.params.n, layout, members, rpc)?
            .into_iter()
            .map(|rs| {
                rs.into_iter()
                    .map(|r| (r.worker, r.values.as_slice()))
                    .collect()
            })
            .collect();
        let out = self.decode_stacked(layout, per_chunk, members)?;
        let padded = layout.padded_rows;
        Ok((0..members)
            .map(|mem| {
                let mut v = out[mem * padded..(mem + 1) * padded].to_vec();
                v.truncate(layout.original_rows);
                Vector::from(v)
            })
            .collect())
    }

    /// The shared stacked decode core.
    ///
    /// `per_chunk[chunk]` holds `(worker, values)` pairs whose values are
    /// `rows_per_chunk × members` blocks (chunk-row-major, member-minor);
    /// the return buffer is member-major (`members × padded_rows`).
    /// Single decoding is the `members == 1` case, with identical
    /// operation order.
    fn decode_stacked(
        &self,
        layout: &ChunkLayout,
        per_chunk: Vec<Vec<(usize, &[f64])>>,
        members: usize,
    ) -> Result<Vec<f64>, CodingError> {
        let k = self.params.k;
        let rpc = layout.rows_per_chunk();
        let padded = layout.padded_rows;
        let width = rpc * members;

        let mut out = vec![0.0; members * padded];
        for (chunk, mut resps) in per_chunk.into_iter().enumerate() {
            if resps.len() < k {
                return Err(CodingError::NotEnoughResponses {
                    chunk,
                    got: resps.len(),
                    need: k,
                });
            }
            // Deterministic preference for systematic responses: they decode
            // for free, minimizing the solve size.
            resps.sort_by_key(|r| r.0);
            resps.truncate(k);

            // Place systematic results directly; collect missing blocks.
            let mut have = vec![false; k];
            for &(w, vals) in &resps {
                if w < k {
                    have[w] = true;
                    let dst = layout.output_range(w, chunk);
                    for (col, &v) in vals[..width].iter().enumerate() {
                        out[(col % members) * padded + dst.start + col / members] = v;
                    }
                }
            }
            let missing: Vec<usize> = (0..k).filter(|j| !have[*j]).collect();
            if missing.is_empty() {
                continue;
            }
            let parity_resps: Vec<(usize, &[f64])> =
                resps.iter().copied().filter(|r| r.0 >= k).collect();
            debug_assert!(parity_resps.len() >= missing.len());

            // Build the m×m generator subsystem over the missing
            // coordinates and factor it once for the whole stacked block.
            let m = missing.len();
            let sys = Matrix::from_fn(m, m, |pi, mj| {
                self.parity.get(parity_resps[pi].0 - k, missing[mj])
            });
            let lu = LuFactors::factor(&sys).map_err(|_| CodingError::DecodeSingular { chunk })?;

            // RHS: parity values minus contributions from known blocks —
            // one column per (chunk row, member) pair, built flat and
            // handed to the solver in one piece.
            let mut rhs = Vec::with_capacity(m * width);
            for &(pw, vals) in &parity_resps {
                let prow_idx = pw - k;
                for (col, &pv) in vals[..width].iter().enumerate() {
                    let base = (col % members) * padded + col / members;
                    let mut v = pv;
                    for j in 0..k {
                        if have[j] {
                            let known = out[base + layout.output_range(j, chunk).start];
                            v -= self.parity.get(prow_idx, j) * known;
                        }
                    }
                    rhs.push(v);
                }
            }
            let solved = lu.solve_matrix(&Matrix::from_flat(m, width, rhs));
            for (mi, &j) in missing.iter().enumerate() {
                let dst = layout.output_range(j, chunk);
                for col in 0..width {
                    out[(col % members) * padded + dst.start + col / members] = solved.get(mi, col);
                }
            }
        }
        Ok(out)
    }

    /// Estimated floating-point operations to decode one iteration given
    /// `missing` systematic blocks per chunk on average — used by the
    /// cluster engine to charge master-side decode time.
    #[must_use]
    pub fn decode_flops_estimate(&self, layout: &ChunkLayout, avg_missing: f64) -> f64 {
        let m = avg_missing.max(0.0);
        let rpc = layout.rows_per_chunk() as f64;
        let chunks = layout.chunks_per_partition as f64;
        // LU factor m^3/3 + per-column triangular solves m^2 each,
        // + RHS adjustment m·k·rpc.
        chunks * (m.powi(3) / 3.0 + rpc * m.powi(2) + m * self.params.k as f64 * rpc)
    }

    /// Fused encode-multiply: every worker's stacked chunk products for
    /// `xs`, computed directly from the data matrix without ever
    /// materializing parity partitions.
    ///
    /// The code is systematic and the products are linear in the stored
    /// rows, so parity products are generator-weighted combinations of
    /// the systematic chunk products: `k` row-range matvecs over `A`
    /// (exactly the systematic work) plus cheap length-`rows_per_chunk ×
    /// members` axpys replace the full `(n − k) × partition` parity
    /// encode pass. A one-shot multiply therefore skips `(n − k)/n` of
    /// the encode cost entirely — the right tool when an encoding will
    /// be used once rather than cached across iterations.
    ///
    /// Systematic blocks are bit-identical to
    /// [`EncodedMatrix::worker_compute_chunk_multi`] on an encoding of
    /// `a`; parity blocks differ by rounding only (weighted sums of
    /// products instead of products of weighted rows), which decoding
    /// absorbs within [`s2c2_linalg::ROUND_TRIP_TOL`].
    ///
    /// Returns the layout and one block per `(worker, chunk)` pair,
    /// worker-major.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] when `xs.len() != a.cols()`, plus
    /// layout errors for degenerate shapes.
    pub fn encode_matvec_multi(
        &self,
        a: &Matrix,
        chunks_per_partition: usize,
        xs: &MultiVector,
    ) -> Result<(ChunkLayout, Vec<MultiChunkResult>), CodingError> {
        if xs.len() != a.cols() {
            return Err(CodingError::InvalidParams(format!(
                "input length {} does not match matrix columns {}",
                xs.len(),
                a.cols()
            )));
        }
        let k = self.params.k;
        let layout = ChunkLayout::new(a.rows(), k, chunks_per_partition)?;
        let prow = layout.partition_rows();
        let chunks = layout.chunks_per_partition;
        let members = xs.count();
        let width = layout.rows_per_chunk() * members;

        // Systematic products straight off `a`'s rows; rows beyond the
        // original count are zero padding, so their products are zeros.
        let mut sys: Vec<Vec<f64>> = Vec::with_capacity(k * chunks);
        for j in 0..k {
            for c in 0..chunks {
                let local = layout.chunk_range_in_partition(c);
                let begin = (j * prow + local.start).min(a.rows());
                let end = (j * prow + local.end).min(a.rows());
                let mut vals = a.matvec_multi_rows(xs, begin, end).into_flat();
                vals.resize(width, 0.0);
                sys.push(vals);
            }
        }
        // Parity products as generator-weighted combinations of the
        // systematic products.
        let mut parity_blocks = Vec::with_capacity((self.params.n - k) * chunks);
        for p in 0..self.params.n - k {
            for c in 0..chunks {
                let mut vals = vec![0.0; width];
                for j in 0..k {
                    let w = self.parity.get(p, j);
                    for (d, s) in vals.iter_mut().zip(&sys[j * chunks + c]) {
                        *d += w * s;
                    }
                }
                parity_blocks.push(MultiChunkResult::new(k + p, c, members, vals));
            }
        }
        let mut results = Vec::with_capacity(self.params.n * chunks);
        for (idx, vals) in sys.into_iter().enumerate() {
            results.push(MultiChunkResult::new(
                idx / chunks,
                idx % chunks,
                members,
                vals,
            ));
        }
        results.extend(parity_blocks);
        Ok((layout, results))
    }
}

/// The result of encoding: `n` coded partitions plus the shared layout.
#[derive(Debug, Clone)]
pub struct EncodedMatrix {
    params: MdsParams,
    layout: ChunkLayout,
    partitions: Vec<Matrix>,
}

impl EncodedMatrix {
    /// Code parameters used for the encoding.
    #[must_use]
    pub fn params(&self) -> MdsParams {
        self.params
    }

    /// Chunk/padding geometry.
    #[must_use]
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }

    /// Coded partition stored by worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn partition(&self, i: usize) -> &Matrix {
        &self.partitions[i]
    }

    /// All partitions, indexed by worker.
    #[must_use]
    pub fn partitions(&self) -> &[Matrix] {
        &self.partitions
    }

    /// Per-worker stored bytes (each worker holds one partition).
    #[must_use]
    pub fn bytes_per_worker(&self) -> u64 {
        self.partitions.first().map_or(0, Matrix::payload_bytes)
    }

    /// Computes worker `i`'s result for `chunk` given input `x` — the
    /// numeric work a worker performs when assigned that chunk.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or mismatched `x` length.
    #[must_use]
    pub fn worker_compute_chunk(
        &self,
        worker: usize,
        chunk: usize,
        x: &Vector,
    ) -> WorkerChunkResult {
        let range = self.layout.chunk_range_in_partition(chunk);
        let values = self.partitions[worker]
            .matvec_rows(x, range.start, range.end)
            .into_vec();
        WorkerChunkResult::new(worker, chunk, values)
    }

    /// Computes worker `i`'s results for every chunk in `chunks`.
    #[must_use]
    pub fn worker_compute_chunks(
        &self,
        worker: usize,
        chunks: &[usize],
        x: &Vector,
    ) -> Vec<WorkerChunkResult> {
        chunks
            .iter()
            .map(|&c| self.worker_compute_chunk(worker, c, x))
            .collect()
    }

    /// Multi-RHS variant of [`Self::worker_compute_chunk`]: computes the
    /// chunk's rows against every member of a stacked batch in one
    /// cache-blocked pass over the stored partition — the stacked matvec
    /// a batch round dispatches, where `m` small jobs sharing this
    /// encoding ride one task. The kernel
    /// ([`Matrix::matvec_multi_rows`]) tiles members so each partition
    /// row is loaded once per member tile instead of once per member.
    ///
    /// Returns one contiguous [`MultiChunkResult`] block
    /// (`rows_per_chunk × members`, member-minor) — the wire format the
    /// stacked decoder consumes directly. Every member's column is
    /// bit-identical to [`Self::worker_compute_chunk`] on that member
    /// alone (same dot-product evaluation order), which is what keeps
    /// batched and unbatched decode outputs comparable at machine
    /// precision.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or mismatched input length.
    #[must_use]
    pub fn worker_compute_chunk_multi(
        &self,
        worker: usize,
        chunk: usize,
        xs: &MultiVector,
    ) -> MultiChunkResult {
        let range = self.layout.chunk_range_in_partition(chunk);
        let block = self.partitions[worker].matvec_multi_rows(xs, range.start, range.end);
        MultiChunkResult::new(worker, chunk, xs.count(), block.into_flat())
    }

    /// Computes worker `i`'s stacked blocks for every chunk in `chunks`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::worker_compute_chunk_multi`].
    #[must_use]
    pub fn worker_compute_chunks_multi(
        &self,
        worker: usize,
        chunks: &[usize],
        xs: &MultiVector,
    ) -> Vec<MultiChunkResult> {
        chunks
            .iter()
            .map(|&c| self.worker_compute_chunk_multi(worker, c, xs))
            .collect()
    }

    /// Thread-parallel variant of [`Self::worker_compute_chunk`]: the
    /// chunk's rows are split across `threads` OS threads via
    /// [`s2c2_linalg::parallel::par_matvec_rows`], so one simulated
    /// worker's matvec stops being single-threaded on the hot path.
    /// Numerically identical to the sequential form.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, mismatched `x` length, or
    /// `threads == 0`.
    #[must_use]
    pub fn worker_compute_chunk_par(
        &self,
        worker: usize,
        chunk: usize,
        x: &Vector,
        threads: usize,
    ) -> WorkerChunkResult {
        let range = self.layout.chunk_range_in_partition(chunk);
        let values = s2c2_linalg::parallel::par_matvec_rows(
            &self.partitions[worker],
            x,
            range.start,
            range.end,
            threads,
        )
        .into_vec();
        WorkerChunkResult::new(worker, chunk, values)
    }

    /// Thread-parallel variant of [`Self::worker_compute_chunks`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::worker_compute_chunk_par`].
    #[must_use]
    pub fn worker_compute_chunks_par(
        &self,
        worker: usize,
        chunks: &[usize],
        x: &Vector,
        threads: usize,
    ) -> Vec<WorkerChunkResult> {
        chunks
            .iter()
            .map(|&c| self.worker_compute_chunk_par(worker, c, x, threads))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_linalg::assert_slices_close;

    fn data_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17) % 23) as f64 - 11.0)
    }

    fn full_responses(
        enc: &EncodedMatrix,
        workers: &[usize],
        x: &Vector,
    ) -> Vec<WorkerChunkResult> {
        let chunks: Vec<usize> = (0..enc.layout().chunks_per_partition).collect();
        workers
            .iter()
            .flat_map(|&w| enc.worker_compute_chunks(w, &chunks, x))
            .collect()
    }

    #[test]
    fn params_helpers() {
        let p = MdsParams::new(12, 10);
        assert_eq!(p.straggler_tolerance(), 2);
        assert!((p.storage_overhead() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn parallel_worker_compute_matches_sequential() {
        let a = data_matrix(960, 14);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let x = Vector::from_fn(14, |i| 0.5 + (i as f64).cos());
        let chunks = vec![0usize, 2];
        let seq = enc.worker_compute_chunks(1, &chunks, &x);
        for threads in [1, 2, 4] {
            let par = enc.worker_compute_chunks_par(1, &chunks, &x, threads);
            assert_eq!(par.len(), seq.len());
            for (p, s) in par.iter().zip(seq.iter()) {
                assert_eq!(p.worker, s.worker);
                assert_eq!(p.chunk, s.chunk);
                assert_slices_close(&p.values, &s.values, 1e-12);
            }
        }
    }

    #[test]
    fn multi_rhs_compute_matches_single_bitwise() {
        let a = data_matrix(96, 9);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        // 5 members exercises a full RHS tile plus a remainder.
        let vs: Vec<Vector> = (0..5)
            .map(|j| Vector::from_fn(9, |i| (i as f64 * 0.3 + j as f64).sin()))
            .collect();
        let refs: Vec<&Vector> = vs.iter().collect();
        let xs = MultiVector::from_vectors(&refs);
        for worker in 0..6 {
            for chunk in 0..3 {
                let stacked = enc.worker_compute_chunk_multi(worker, chunk, &xs);
                assert_eq!(stacked.worker, worker);
                assert_eq!(stacked.chunk, chunk);
                assert_eq!(stacked.members, 5);
                for (j, x) in vs.iter().enumerate() {
                    let single = enc.worker_compute_chunk(worker, chunk, x);
                    // Bit-identical, not merely close: the stacked kernel
                    // preserves the single path's dot-product order.
                    assert_eq!(stacked.member_values(j), single.values);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multi_rhs_rejects_mismatched_input_length() {
        let a = data_matrix(24, 3);
        let code = MdsCode::new(MdsParams::new(3, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let xs = MultiVector::zeros(2, 5);
        let _ = enc.worker_compute_chunk_multi(0, 0, &xs);
    }

    #[test]
    fn stacked_decode_matches_single_decode_bitwise() {
        let a = data_matrix(72, 6);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let vs: Vec<Vector> = (0..4)
            .map(|j| Vector::from_fn(6, |i| (i as f64 * 0.7 - j as f64).cos()))
            .collect();
        let refs: Vec<&Vector> = vs.iter().collect();
        let xs = MultiVector::from_vectors(&refs);
        // Mixed coverage with parity workers involved (worker 1 missing).
        let workers = [0usize, 2, 3, 4];
        let blocks: Vec<MultiChunkResult> = workers
            .iter()
            .flat_map(|&w| enc.worker_compute_chunks_multi(w, &[0, 1, 2], &xs))
            .collect();
        let outs = code.decode_matvec_multi(enc.layout(), &blocks).unwrap();
        assert_eq!(outs.len(), 4);
        for (j, x) in vs.iter().enumerate() {
            // Per-member single decode over the same responses.
            let singles: Vec<WorkerChunkResult> = blocks
                .iter()
                .map(|b| WorkerChunkResult::new(b.worker, b.chunk, b.member_values(j)))
                .collect();
            let single = code.decode_matvec(enc.layout(), &singles).unwrap();
            // The stacked core performs identical per-member operations.
            assert_eq!(outs[j].as_slice(), single.as_slice());
            assert_slices_close(outs[j].as_slice(), a.matvec(x).as_slice(), 1e-8);
        }
    }

    #[test]
    fn stacked_decode_empty_reports_not_enough() {
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let layout = ChunkLayout::new(40, 2, 2).unwrap();
        let err = code.decode_matvec_multi(&layout, &[]).unwrap_err();
        assert_eq!(
            err,
            CodingError::NotEnoughResponses {
                chunk: 0,
                got: 0,
                need: 2
            }
        );
    }

    #[test]
    fn fused_encode_multiply_matches_two_pass() {
        let a = data_matrix(50, 7);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let xs = MultiVector::from_fn(3, 7, |m, i| ((m * 3 + i) % 5) as f64 * 0.4 - 0.9);
        let (layout, fused) = code.encode_matvec_multi(&a, 3, &xs).unwrap();
        assert_eq!(&layout, enc.layout());
        assert_eq!(fused.len(), 6 * 3);
        for block in &fused {
            let direct = enc.worker_compute_chunk_multi(block.worker, block.chunk, &xs);
            if block.worker < 4 {
                // Systematic products come off the same rows through the
                // same kernel: bit-identical.
                assert_eq!(block.values, direct.values);
            } else {
                // Parity products are combinations of products rather than
                // products of combinations: equal up to rounding.
                assert_slices_close(&block.values, &direct.values, 1e-9);
            }
        }
        // Fused responses decode like any others: drop one systematic
        // worker, keep a parity worker in the mix.
        let subset: Vec<MultiChunkResult> = fused
            .iter()
            .filter(|b| b.worker != 1 && b.worker != 5)
            .cloned()
            .collect();
        let outs = code.decode_matvec_multi(&layout, &subset).unwrap();
        for (m, y) in outs.iter().enumerate() {
            let x = Vector::from(xs.member(m).to_vec());
            assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        }
    }

    #[test]
    fn fused_encode_multiply_rejects_bad_input_length() {
        let a = data_matrix(20, 4);
        let code = MdsCode::new(MdsParams::new(3, 2)).unwrap();
        let xs = MultiVector::zeros(2, 9);
        assert!(matches!(
            code.encode_matvec_multi(&a, 2, &xs),
            Err(CodingError::InvalidParams(_))
        ));
    }

    #[test]
    #[should_panic(expected = "require 0 < k <= n")]
    fn params_rejects_bad_k() {
        let _ = MdsParams::new(3, 4);
    }

    #[test]
    fn invalid_params_error() {
        assert!(MdsCode::new(MdsParams { n: 3, k: 0 }).is_err());
        assert!(MdsCode::new(MdsParams { n: 3, k: 4 }).is_err());
    }

    #[test]
    fn generator_rows_systematic_and_parity() {
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        assert_eq!(code.generator_row(0), vec![1.0, 0.0]);
        assert_eq!(code.generator_row(1), vec![0.0, 1.0]);
        // Parity rows are dense Cauchy rows.
        assert!(code.generator_row(2).iter().all(|&v| v != 0.0));
        assert_ne!(code.generator_row(2), code.generator_row(3));
    }

    #[test]
    fn encode_systematic_partitions_match_blocks() {
        let a = data_matrix(40, 6);
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        assert_eq!(enc.partition(0), &a.row_block(0, 20));
        assert_eq!(enc.partition(1), &a.row_block(20, 40));
        // Parity for (4,2) first parity node: weighted sum of both blocks.
        let g = code.generator_row(2);
        let mut expect = a.row_block(0, 20);
        expect.scale(g[0]);
        expect.axpy(g[1], &a.row_block(20, 40));
        assert!(enc.partition(2).max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn decode_from_systematic_workers_only() {
        let a = data_matrix(60, 5);
        let x = Vector::from_fn(5, |i| 1.0 + i as f64);
        let code = MdsCode::new(MdsParams::new(5, 3)).unwrap();
        let enc = code.encode(&a, 4).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn decode_from_any_k_of_n() {
        let a = data_matrix(48, 7);
        let x = Vector::from_fn(7, |i| (i as f64 * 0.7).cos());
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let expect = a.matvec(&x);
        // Every 4-subset of 6 workers must decode.
        for w0 in 0..6 {
            for w1 in w0 + 1..6 {
                for w2 in w1 + 1..6 {
                    for w3 in w2 + 1..6 {
                        let resp = full_responses(&enc, &[w0, w1, w2, w3], &x);
                        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
                        assert_slices_close(y.as_slice(), expect.as_slice(), 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn decode_mixed_coverage_per_chunk() {
        // Different chunks covered by different worker subsets — the exact
        // situation S2C2 scheduling creates.
        let a = data_matrix(36, 4);
        let x = Vector::from_fn(4, |i| i as f64 - 1.5);
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let mut resp = Vec::new();
        // chunk 0: workers 0,1 (systematic); chunk 1: 0,3; chunk 2: 2,3.
        for (chunk, ws) in [(0usize, [0usize, 1]), (1, [0, 3]), (2, [2, 3])] {
            for w in ws {
                resp.push(enc.worker_compute_chunk(w, chunk, &x));
            }
        }
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn decode_with_padding() {
        // 50 rows with k=4, chunks=3 pads to 60.
        let a = data_matrix(50, 3);
        let x = Vector::from_fn(3, |i| 2.0 - i as f64);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        assert_eq!(enc.layout().padded_rows, 60);
        let resp = full_responses(&enc, &[1, 2, 4, 5], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_eq!(y.len(), 50);
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn paper_configurations_roundtrip() {
        // The exact (n,k) pairs used in the paper's evaluation.
        let x_cols = 8;
        for (n, k) in [
            (12usize, 10usize),
            (12, 9),
            (12, 6),
            (10, 7),
            (9, 7),
            (8, 7),
            (50, 40),
        ] {
            let a = data_matrix(2 * n * k, x_cols);
            let x = Vector::from_fn(x_cols, |i| (i as f64).sin() + 1.5);
            let code = MdsCode::new(MdsParams::new(n, k)).unwrap();
            let enc = code.encode(&a, 2).unwrap();
            // Slowest n-k workers ignored: use the *last* k workers (worst
            // case: all parity workers involved).
            let workers: Vec<usize> = (n - k..n).collect();
            let resp = full_responses(&enc, &workers, &x);
            let y = code.decode_matvec(enc.layout(), &resp).unwrap();
            assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        }
    }

    #[test]
    fn not_enough_responses_is_reported() {
        let a = data_matrix(40, 3);
        let x = Vector::filled(3, 1.0);
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let mut resp = full_responses(&enc, &[0, 1], &x);
        // Remove one response from chunk 1.
        resp.retain(|r| !(r.chunk == 1 && r.worker == 1));
        let err = code.decode_matvec(enc.layout(), &resp).unwrap_err();
        assert_eq!(
            err,
            CodingError::NotEnoughResponses {
                chunk: 1,
                got: 1,
                need: 2
            }
        );
    }

    #[test]
    fn extra_responses_are_ignored() {
        let a = data_matrix(40, 3);
        let x = Vector::filled(3, 0.5);
        let code = MdsCode::new(MdsParams::new(5, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2, 3, 4], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn n_equals_k_degenerates_to_uncoded() {
        let a = data_matrix(30, 4);
        let x = Vector::filled(4, 2.0);
        let code = MdsCode::new(MdsParams::new(3, 3)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn decode_flops_estimate_monotone_in_missing() {
        let code = MdsCode::new(MdsParams::new(10, 7)).unwrap();
        let layout = ChunkLayout::new(700, 7, 10).unwrap();
        let f0 = code.decode_flops_estimate(&layout, 0.0);
        let f1 = code.decode_flops_estimate(&layout, 1.0);
        let f3 = code.decode_flops_estimate(&layout, 3.0);
        assert!(f0 <= f1 && f1 < f3);
    }
}
