//! Systematic `(n, k)`-MDS codes for linear (matrix–vector) computations.
//!
//! The data matrix `A` is split into `k` row blocks `A_0 … A_{k−1}`; worker
//! `i < k` stores `A_i` unchanged (systematic part) and worker `i ≥ k`
//! stores the combination `Σ_j P[i−k][j] · A_j` (parity part). The code is
//! MDS iff every square submatrix of `P` is nonsingular, in which case
//! *any* `k` of the `n` per-chunk results reconstruct that chunk of `A·x`.
//!
//! **Parity construction.** Over the reals, the classic structured MDS
//! generators (Vandermonde, Cauchy) have *exponentially* ill-conditioned
//! submatrices — a 10×10 Cauchy block is Hilbert-like (κ ≈ 10¹³) and
//! destroys `f64` decoding at the paper's `(50, 40)` scale. Following the
//! established practice for real-number erasure codes (Chen & Dongarra,
//! *Numerically stable real-number codes based on random matrices*), the
//! parity block is a **seeded random matrix**: every square submatrix is
//! nonsingular with probability 1, submatrix condition numbers stay small
//! (tens, not 10¹³), and the fixed per-`(n,k)` seed keeps encodings
//! deterministic and reproducible. The conditioning ablation bench
//! (`ablation_conditioning`) quantifies this choice against Cauchy and
//! Vandermonde parities.
//!
//! Because the code is systematic, decoding a chunk with `m` missing
//! systematic blocks solves only an `m × m` system (`m ≤ n − k` ≤ 10 in
//! every configuration the paper evaluates).

use crate::chunks::{group_by_chunk, ChunkLayout, WorkerChunkResult};
use crate::error::CodingError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2c2_linalg::{LuFactors, Matrix, Vector};

/// `(n, k)` MDS code parameters: `n` workers, any `k` responses decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdsParams {
    /// Total number of coded partitions (= workers).
    pub n: usize,
    /// Number of data partitions; any `k` of `n` responses decode.
    pub k: usize,
}

impl MdsParams {
    /// Creates the parameter pair.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k <= n` (use [`MdsCode::new`] for a fallible
    /// constructor; this one is for literals in examples/benches).
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k <= n, "require 0 < k <= n, got ({n},{k})");
        MdsParams { n, k }
    }

    /// Number of stragglers the code tolerates (`n − k`).
    #[must_use]
    pub fn straggler_tolerance(&self) -> usize {
        self.n - self.k
    }

    /// Storage overhead factor relative to uncoded even partitioning
    /// (`n/k`, e.g. 1.2 for (12,10)).
    #[must_use]
    pub fn storage_overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }
}

/// A constructed `(n, k)` MDS code (generator rows materialized).
#[derive(Debug, Clone)]
pub struct MdsCode {
    params: MdsParams,
    /// Parity block: `(n − k) × k` seeded random matrix (see module docs).
    parity: Matrix,
}

impl MdsCode {
    /// Builds the code with the default deterministic parity seed.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] unless `0 < k ≤ n`.
    pub fn new(params: MdsParams) -> Result<Self, CodingError> {
        Self::with_seed(params, 0x5C2C_0DE5)
    }

    /// Builds the code with an explicit parity seed.
    ///
    /// Different seeds give different (equally valid) codes; encoders and
    /// decoders must agree on the seed. Exposed for tests that want to
    /// exercise many code instances.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] unless `0 < k ≤ n`.
    pub fn with_seed(params: MdsParams, seed: u64) -> Result<Self, CodingError> {
        if params.k == 0 || params.k > params.n {
            return Err(CodingError::InvalidParams(format!(
                "require 0 < k <= n, got (n={}, k={})",
                params.n, params.k
            )));
        }
        // Mix (n, k) into the seed so each configuration gets an
        // independent parity block even under the same user seed.
        let mixed = seed
            ^ (params.n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (params.k as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut rng = StdRng::seed_from_u64(mixed);
        let rows = params.n - params.k;
        // Uniform in [-1, 1] \ {0}: a.s. every square submatrix is
        // nonsingular, magnitudes stay O(1).
        let parity = Matrix::from_fn(rows, params.k, |_, _| loop {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            if v.abs() > 1e-3 {
                break v;
            }
        });
        Ok(MdsCode { params, parity })
    }

    /// Code parameters.
    #[must_use]
    pub fn params(&self) -> MdsParams {
        self.params
    }

    /// Generator row for worker `i` (length `k`): unit vector for
    /// systematic workers, Cauchy row for parity workers.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn generator_row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.params.n, "worker index out of range");
        let k = self.params.k;
        if i < k {
            let mut row = vec![0.0; k];
            row[i] = 1.0;
            row
        } else {
            (0..k).map(|j| self.parity.get(i - k, j)).collect()
        }
    }

    /// Encodes a data matrix into `n` coded partitions with
    /// `chunks_per_partition`-way over-decomposition.
    ///
    /// Systematic partitions are plain row blocks of (zero-padded) `A`;
    /// parity partitions are Cauchy-weighted sums of all `k` blocks.
    ///
    /// # Errors
    ///
    /// Propagates layout errors for degenerate shapes.
    pub fn encode(
        &self,
        a: &Matrix,
        chunks_per_partition: usize,
    ) -> Result<EncodedMatrix, CodingError> {
        let layout = ChunkLayout::new(a.rows(), self.params.k, chunks_per_partition)?;
        let prow = layout.partition_rows();
        let cols = a.cols();
        let k = self.params.k;

        // Zero-padded view of A's row r (rows past the original are zero).
        let padded_row = |r: usize| -> Option<&[f64]> {
            if r < a.rows() {
                Some(a.row(r))
            } else {
                None
            }
        };

        let mut partitions = Vec::with_capacity(self.params.n);
        // Systematic partitions: copy (and pad) block i.
        for i in 0..k {
            let mut part = Matrix::zeros(prow, cols);
            for r in 0..prow {
                if let Some(src) = padded_row(i * prow + r) {
                    part.row_mut(r).copy_from_slice(src);
                }
            }
            partitions.push(part);
        }
        // Parity partitions: weighted sums across blocks.
        for p in 0..self.params.n - k {
            let mut part = Matrix::zeros(prow, cols);
            for j in 0..k {
                let w = self.parity.get(p, j);
                for r in 0..prow {
                    if let Some(src) = padded_row(j * prow + r) {
                        let dst = part.row_mut(r);
                        for (d, s) in dst.iter_mut().zip(src.iter()) {
                            *d += w * s;
                        }
                    }
                }
            }
            partitions.push(part);
        }

        Ok(EncodedMatrix {
            params: self.params,
            layout,
            partitions,
        })
    }

    /// Decodes the full `A·x` product from per-chunk worker results.
    ///
    /// Every chunk index must be covered by at least `k` distinct workers;
    /// extra responses beyond `k` are ignored (the fastest-`k` rule).
    /// Returns the product truncated to the original (unpadded) row count.
    ///
    /// # Errors
    ///
    /// * [`CodingError::NotEnoughResponses`] if any chunk has < `k` results.
    /// * [`CodingError::MalformedResponse`] / [`CodingError::DuplicateResponse`]
    ///   for inconsistent inputs.
    pub fn decode_matvec(
        &self,
        layout: &ChunkLayout,
        responses: &[WorkerChunkResult],
    ) -> Result<Vector, CodingError> {
        let k = self.params.k;
        let rpc = layout.rows_per_chunk();
        let per_chunk = group_by_chunk(responses, self.params.n, layout, rpc)?;

        let mut out = vec![0.0; layout.padded_rows];
        for (chunk, mut resps) in per_chunk.into_iter().enumerate() {
            if resps.len() < k {
                return Err(CodingError::NotEnoughResponses {
                    chunk,
                    got: resps.len(),
                    need: k,
                });
            }
            // Deterministic preference for systematic responses: they decode
            // for free, minimizing the solve size.
            resps.sort_by_key(|r| r.worker);
            resps.truncate(k);

            // Place systematic results directly; collect missing blocks.
            let mut have = vec![false; k];
            for r in &resps {
                if r.worker < k {
                    have[r.worker] = true;
                    let dst = layout.output_range(r.worker, chunk);
                    out[dst].copy_from_slice(&r.values);
                }
            }
            let missing: Vec<usize> = (0..k).filter(|j| !have[*j]).collect();
            if missing.is_empty() {
                continue;
            }
            let parity_resps: Vec<&&WorkerChunkResult> =
                resps.iter().filter(|r| r.worker >= k).collect();
            debug_assert!(parity_resps.len() >= missing.len());

            // Build the m×m sub-Cauchy system over the missing coordinates.
            let m = missing.len();
            let sys = Matrix::from_fn(m, m, |pi, mj| {
                self.parity.get(parity_resps[pi].worker - k, missing[mj])
            });
            let lu = LuFactors::factor(&sys).map_err(|_| CodingError::DecodeSingular { chunk })?;

            // RHS: parity values minus contributions from known blocks,
            // one column per row inside the chunk.
            let mut rhs = Matrix::zeros(m, rpc);
            for (pi, pr) in parity_resps.iter().enumerate() {
                let prow_idx = pr.worker - k;
                for (c, &pv) in pr.values[..rpc].iter().enumerate() {
                    let mut v = pv;
                    for j in 0..k {
                        if have[j] {
                            let known = out[layout.output_range(j, chunk)][c];
                            v -= self.parity.get(prow_idx, j) * known;
                        }
                    }
                    rhs.set(pi, c, v);
                }
            }
            let solved = lu.solve_matrix(&rhs);
            for (mi, &j) in missing.iter().enumerate() {
                let dst = layout.output_range(j, chunk);
                for c in 0..rpc {
                    out[dst.start + c] = solved.get(mi, c);
                }
            }
        }
        out.truncate(layout.original_rows);
        Ok(Vector::from(out))
    }

    /// Estimated floating-point operations to decode one iteration given
    /// `missing` systematic blocks per chunk on average — used by the
    /// cluster engine to charge master-side decode time.
    #[must_use]
    pub fn decode_flops_estimate(&self, layout: &ChunkLayout, avg_missing: f64) -> f64 {
        let m = avg_missing.max(0.0);
        let rpc = layout.rows_per_chunk() as f64;
        let chunks = layout.chunks_per_partition as f64;
        // LU factor m^3/3 + per-column triangular solves m^2 each,
        // + RHS adjustment m·k·rpc.
        chunks * (m.powi(3) / 3.0 + rpc * m.powi(2) + m * self.params.k as f64 * rpc)
    }
}

/// The result of encoding: `n` coded partitions plus the shared layout.
#[derive(Debug, Clone)]
pub struct EncodedMatrix {
    params: MdsParams,
    layout: ChunkLayout,
    partitions: Vec<Matrix>,
}

impl EncodedMatrix {
    /// Code parameters used for the encoding.
    #[must_use]
    pub fn params(&self) -> MdsParams {
        self.params
    }

    /// Chunk/padding geometry.
    #[must_use]
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }

    /// Coded partition stored by worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn partition(&self, i: usize) -> &Matrix {
        &self.partitions[i]
    }

    /// All partitions, indexed by worker.
    #[must_use]
    pub fn partitions(&self) -> &[Matrix] {
        &self.partitions
    }

    /// Per-worker stored bytes (each worker holds one partition).
    #[must_use]
    pub fn bytes_per_worker(&self) -> u64 {
        self.partitions.first().map_or(0, Matrix::payload_bytes)
    }

    /// Computes worker `i`'s result for `chunk` given input `x` — the
    /// numeric work a worker performs when assigned that chunk.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or mismatched `x` length.
    #[must_use]
    pub fn worker_compute_chunk(
        &self,
        worker: usize,
        chunk: usize,
        x: &Vector,
    ) -> WorkerChunkResult {
        let range = self.layout.chunk_range_in_partition(chunk);
        let values = self.partitions[worker]
            .matvec_rows(x, range.start, range.end)
            .into_vec();
        WorkerChunkResult::new(worker, chunk, values)
    }

    /// Computes worker `i`'s results for every chunk in `chunks`.
    #[must_use]
    pub fn worker_compute_chunks(
        &self,
        worker: usize,
        chunks: &[usize],
        x: &Vector,
    ) -> Vec<WorkerChunkResult> {
        chunks
            .iter()
            .map(|&c| self.worker_compute_chunk(worker, c, x))
            .collect()
    }

    /// Multi-RHS variant of [`Self::worker_compute_chunk`]: computes the
    /// chunk's rows against *several* input vectors in one pass over the
    /// stored partition — the stacked matvec a batch round dispatches,
    /// where `m` small jobs sharing this encoding ride one task. Each
    /// partition row is loaded once and dotted against every input, so
    /// the per-row fixed costs (row traversal, dispatch) are paid once
    /// instead of `m` times.
    ///
    /// Returns one [`WorkerChunkResult`] per input vector, in input
    /// order. For a single input this is bit-identical to
    /// [`Self::worker_compute_chunk`] (same dot-product evaluation
    /// order), which is what keeps batched and unbatched decode outputs
    /// comparable at machine precision.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, an empty `xs`, or mismatched
    /// input lengths.
    #[must_use]
    pub fn worker_compute_chunk_multi(
        &self,
        worker: usize,
        chunk: usize,
        xs: &[&Vector],
    ) -> Vec<WorkerChunkResult> {
        assert!(!xs.is_empty(), "stacked matvec needs at least one input");
        let range = self.layout.chunk_range_in_partition(chunk);
        let part = &self.partitions[worker];
        let mut values: Vec<Vec<f64>> = xs
            .iter()
            .map(|_| Vec::with_capacity(range.end - range.start))
            .collect();
        for r in range {
            let row = part.row(r);
            for (vals, x) in values.iter_mut().zip(xs.iter()) {
                vals.push(s2c2_linalg::vector::dot_slices(row, x.as_slice()));
            }
        }
        values
            .into_iter()
            .map(|v| WorkerChunkResult::new(worker, chunk, v))
            .collect()
    }

    /// Thread-parallel variant of [`Self::worker_compute_chunk`]: the
    /// chunk's rows are split across `threads` OS threads via
    /// [`s2c2_linalg::parallel::par_matvec_rows`], so one simulated
    /// worker's matvec stops being single-threaded on the hot path.
    /// Numerically identical to the sequential form.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, mismatched `x` length, or
    /// `threads == 0`.
    #[must_use]
    pub fn worker_compute_chunk_par(
        &self,
        worker: usize,
        chunk: usize,
        x: &Vector,
        threads: usize,
    ) -> WorkerChunkResult {
        let range = self.layout.chunk_range_in_partition(chunk);
        let values = s2c2_linalg::parallel::par_matvec_rows(
            &self.partitions[worker],
            x,
            range.start,
            range.end,
            threads,
        )
        .into_vec();
        WorkerChunkResult::new(worker, chunk, values)
    }

    /// Thread-parallel variant of [`Self::worker_compute_chunks`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::worker_compute_chunk_par`].
    #[must_use]
    pub fn worker_compute_chunks_par(
        &self,
        worker: usize,
        chunks: &[usize],
        x: &Vector,
        threads: usize,
    ) -> Vec<WorkerChunkResult> {
        chunks
            .iter()
            .map(|&c| self.worker_compute_chunk_par(worker, c, x, threads))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_linalg::assert_slices_close;

    fn data_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17) % 23) as f64 - 11.0)
    }

    fn full_responses(
        enc: &EncodedMatrix,
        workers: &[usize],
        x: &Vector,
    ) -> Vec<WorkerChunkResult> {
        let chunks: Vec<usize> = (0..enc.layout().chunks_per_partition).collect();
        workers
            .iter()
            .flat_map(|&w| enc.worker_compute_chunks(w, &chunks, x))
            .collect()
    }

    #[test]
    fn params_helpers() {
        let p = MdsParams::new(12, 10);
        assert_eq!(p.straggler_tolerance(), 2);
        assert!((p.storage_overhead() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn parallel_worker_compute_matches_sequential() {
        let a = data_matrix(960, 14);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let x = Vector::from_fn(14, |i| 0.5 + (i as f64).cos());
        let chunks = vec![0usize, 2];
        let seq = enc.worker_compute_chunks(1, &chunks, &x);
        for threads in [1, 2, 4] {
            let par = enc.worker_compute_chunks_par(1, &chunks, &x, threads);
            assert_eq!(par.len(), seq.len());
            for (p, s) in par.iter().zip(seq.iter()) {
                assert_eq!(p.worker, s.worker);
                assert_eq!(p.chunk, s.chunk);
                assert_slices_close(&p.values, &s.values, 1e-12);
            }
        }
    }

    #[test]
    fn multi_rhs_compute_matches_single_bitwise() {
        let a = data_matrix(96, 9);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let xs: Vec<Vector> = (0..3)
            .map(|j| Vector::from_fn(9, |i| (i as f64 * 0.3 + j as f64).sin()))
            .collect();
        let refs: Vec<&Vector> = xs.iter().collect();
        for worker in 0..6 {
            for chunk in 0..3 {
                let stacked = enc.worker_compute_chunk_multi(worker, chunk, &refs);
                assert_eq!(stacked.len(), 3);
                for (j, x) in xs.iter().enumerate() {
                    let single = enc.worker_compute_chunk(worker, chunk, x);
                    assert_eq!(stacked[j].worker, single.worker);
                    assert_eq!(stacked[j].chunk, single.chunk);
                    // Bit-identical, not merely close: the stacked kernel
                    // reuses the single path's dot-product order.
                    assert_eq!(stacked[j].values, single.values);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn multi_rhs_rejects_empty_inputs() {
        let a = data_matrix(24, 3);
        let code = MdsCode::new(MdsParams::new(3, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let _ = enc.worker_compute_chunk_multi(0, 0, &[]);
    }

    #[test]
    #[should_panic(expected = "require 0 < k <= n")]
    fn params_rejects_bad_k() {
        let _ = MdsParams::new(3, 4);
    }

    #[test]
    fn invalid_params_error() {
        assert!(MdsCode::new(MdsParams { n: 3, k: 0 }).is_err());
        assert!(MdsCode::new(MdsParams { n: 3, k: 4 }).is_err());
    }

    #[test]
    fn generator_rows_systematic_and_parity() {
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        assert_eq!(code.generator_row(0), vec![1.0, 0.0]);
        assert_eq!(code.generator_row(1), vec![0.0, 1.0]);
        // Parity rows are dense Cauchy rows.
        assert!(code.generator_row(2).iter().all(|&v| v != 0.0));
        assert_ne!(code.generator_row(2), code.generator_row(3));
    }

    #[test]
    fn encode_systematic_partitions_match_blocks() {
        let a = data_matrix(40, 6);
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        assert_eq!(enc.partition(0), &a.row_block(0, 20));
        assert_eq!(enc.partition(1), &a.row_block(20, 40));
        // Parity for (4,2) first parity node: weighted sum of both blocks.
        let g = code.generator_row(2);
        let mut expect = a.row_block(0, 20);
        expect.scale(g[0]);
        expect.axpy(g[1], &a.row_block(20, 40));
        assert!(enc.partition(2).max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn decode_from_systematic_workers_only() {
        let a = data_matrix(60, 5);
        let x = Vector::from_fn(5, |i| 1.0 + i as f64);
        let code = MdsCode::new(MdsParams::new(5, 3)).unwrap();
        let enc = code.encode(&a, 4).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn decode_from_any_k_of_n() {
        let a = data_matrix(48, 7);
        let x = Vector::from_fn(7, |i| (i as f64 * 0.7).cos());
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let expect = a.matvec(&x);
        // Every 4-subset of 6 workers must decode.
        for w0 in 0..6 {
            for w1 in w0 + 1..6 {
                for w2 in w1 + 1..6 {
                    for w3 in w2 + 1..6 {
                        let resp = full_responses(&enc, &[w0, w1, w2, w3], &x);
                        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
                        assert_slices_close(y.as_slice(), expect.as_slice(), 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn decode_mixed_coverage_per_chunk() {
        // Different chunks covered by different worker subsets — the exact
        // situation S2C2 scheduling creates.
        let a = data_matrix(36, 4);
        let x = Vector::from_fn(4, |i| i as f64 - 1.5);
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        let mut resp = Vec::new();
        // chunk 0: workers 0,1 (systematic); chunk 1: 0,3; chunk 2: 2,3.
        for (chunk, ws) in [(0usize, [0usize, 1]), (1, [0, 3]), (2, [2, 3])] {
            for w in ws {
                resp.push(enc.worker_compute_chunk(w, chunk, &x));
            }
        }
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn decode_with_padding() {
        // 50 rows with k=4, chunks=3 pads to 60.
        let a = data_matrix(50, 3);
        let x = Vector::from_fn(3, |i| 2.0 - i as f64);
        let code = MdsCode::new(MdsParams::new(6, 4)).unwrap();
        let enc = code.encode(&a, 3).unwrap();
        assert_eq!(enc.layout().padded_rows, 60);
        let resp = full_responses(&enc, &[1, 2, 4, 5], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_eq!(y.len(), 50);
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn paper_configurations_roundtrip() {
        // The exact (n,k) pairs used in the paper's evaluation.
        let x_cols = 8;
        for (n, k) in [
            (12usize, 10usize),
            (12, 9),
            (12, 6),
            (10, 7),
            (9, 7),
            (8, 7),
            (50, 40),
        ] {
            let a = data_matrix(2 * n * k, x_cols);
            let x = Vector::from_fn(x_cols, |i| (i as f64).sin() + 1.5);
            let code = MdsCode::new(MdsParams::new(n, k)).unwrap();
            let enc = code.encode(&a, 2).unwrap();
            // Slowest n-k workers ignored: use the *last* k workers (worst
            // case: all parity workers involved).
            let workers: Vec<usize> = (n - k..n).collect();
            let resp = full_responses(&enc, &workers, &x);
            let y = code.decode_matvec(enc.layout(), &resp).unwrap();
            assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        }
    }

    #[test]
    fn not_enough_responses_is_reported() {
        let a = data_matrix(40, 3);
        let x = Vector::filled(3, 1.0);
        let code = MdsCode::new(MdsParams::new(4, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let mut resp = full_responses(&enc, &[0, 1], &x);
        // Remove one response from chunk 1.
        resp.retain(|r| !(r.chunk == 1 && r.worker == 1));
        let err = code.decode_matvec(enc.layout(), &resp).unwrap_err();
        assert_eq!(
            err,
            CodingError::NotEnoughResponses {
                chunk: 1,
                got: 1,
                need: 2
            }
        );
    }

    #[test]
    fn extra_responses_are_ignored() {
        let a = data_matrix(40, 3);
        let x = Vector::filled(3, 0.5);
        let code = MdsCode::new(MdsParams::new(5, 2)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2, 3, 4], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn n_equals_k_degenerates_to_uncoded() {
        let a = data_matrix(30, 4);
        let x = Vector::filled(4, 2.0);
        let code = MdsCode::new(MdsParams::new(3, 3)).unwrap();
        let enc = code.encode(&a, 2).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2], &x);
        let y = code.decode_matvec(enc.layout(), &resp).unwrap();
        assert_slices_close(y.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn decode_flops_estimate_monotone_in_missing() {
        let code = MdsCode::new(MdsParams::new(10, 7)).unwrap();
        let layout = ChunkLayout::new(700, 7, 10).unwrap();
        let f0 = code.decode_flops_estimate(&layout, 0.0);
        let f1 = code.decode_flops_estimate(&layout, 1.0);
        let f3 = code.decode_flops_estimate(&layout, 3.0);
        assert!(f0 <= f1 && f1 < f3);
    }
}
