//! Error type for encode/decode operations.

use std::fmt;

/// Errors produced by the coded-computation codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// `(n, k)` (or `(n, a, b)`) parameters are out of the valid domain.
    InvalidParams(String),
    /// A chunk did not receive enough responses to decode.
    NotEnoughResponses {
        /// Chunk index that failed to decode.
        chunk: usize,
        /// Responses available for that chunk.
        got: usize,
        /// Responses required (`k` for MDS, `a·b` for polynomial codes).
        need: usize,
    },
    /// Two responses claim the same `(worker, chunk)` pair.
    DuplicateResponse {
        /// Worker that responded twice.
        worker: usize,
        /// Chunk it responded for.
        chunk: usize,
    },
    /// A response references a worker or chunk outside the code geometry,
    /// or carries a payload of the wrong length.
    MalformedResponse(String),
    /// The decode linear system was singular — cannot happen for distinct
    /// Cauchy/Chebyshev nodes, so this indicates corrupted responses.
    DecodeSingular {
        /// Chunk whose decode system was singular.
        chunk: usize,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::InvalidParams(msg) => write!(f, "invalid code parameters: {msg}"),
            CodingError::NotEnoughResponses { chunk, got, need } => write!(
                f,
                "chunk {chunk} has {got} responses but needs {need} to decode"
            ),
            CodingError::DuplicateResponse { worker, chunk } => {
                write!(
                    f,
                    "duplicate response from worker {worker} for chunk {chunk}"
                )
            }
            CodingError::MalformedResponse(msg) => write!(f, "malformed response: {msg}"),
            CodingError::DecodeSingular { chunk } => {
                write!(f, "decode system for chunk {chunk} is singular")
            }
        }
    }
}

impl std::error::Error for CodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodingError::InvalidParams("k > n".into())
            .to_string()
            .contains("k > n"));
        assert_eq!(
            CodingError::NotEnoughResponses {
                chunk: 3,
                got: 2,
                need: 5
            }
            .to_string(),
            "chunk 3 has 2 responses but needs 5 to decode"
        );
        assert!(CodingError::DuplicateResponse {
            worker: 1,
            chunk: 2
        }
        .to_string()
        .contains("worker 1"));
        assert!(CodingError::DecodeSingular { chunk: 0 }
            .to_string()
            .contains("chunk 0"));
    }
}
