//! Coded-computation codecs over real matrices.
//!
//! This crate implements the two code families the S²C² paper schedules on
//! top of:
//!
//! * [`mds`] — systematic `(n, k)`-MDS codes for *linear* computations
//!   (matrix–vector products). The generator is `[I; P]` with a seeded
//!   random parity block (MDS with probability 1 and — unlike real-valued
//!   Cauchy/Vandermonde constructions — well conditioned; see the module
//!   docs). Because the code is systematic, decoding only ever solves an
//!   `m × m` system with `m ≤ n − k`, numerically robust in `f64` even for
//!   the paper's largest `(50, 40)` configuration.
//! * [`polynomial`] — polynomial codes (Yu, Maddah-Ali, Avestimehr, NIPS'17)
//!   for *bilinear* computations (`A·B`, and `Aᵀ·diag(x)·A` Hessians). Any
//!   `a·b` of `n` responses decode via polynomial interpolation; we use
//!   Chebyshev-spaced evaluation points to keep the interpolation systems
//!   well conditioned.
//!
//! Both codecs share the [`chunks::ChunkLayout`] over-decomposition
//! geometry: every worker's coded partition is split into equal-size row
//! chunks, and decoding happens *per chunk index* from whichever workers
//! computed that chunk. That per-chunk decodability is exactly the property
//! S²C² (in `s2c2-core`) exploits to assign partial work to slow nodes
//! without re-encoding or moving data.
//!
//! The [`cache`] module adds the serving-side amortization on top: an
//! [`cache::EncodeCache`] memoizing `(matrix identity, code geometry) →
//! encoding` so recurring jobs skip re-encoding entirely.

#![warn(missing_docs)]

pub mod cache;
pub mod chunks;
pub mod error;
pub mod mds;
pub mod polynomial;

pub use cache::{CachedEncoding, EncodeCache, EncodeKey};
pub use chunks::{ChunkLayout, MultiChunkResult, WorkerChunkResult};
pub use error::CodingError;
pub use mds::{EncodedMatrix, MdsCode, MdsParams};
pub use polynomial::{EncodedPair, PolyParams, PolynomialCode};
