//! Polynomial codes for bilinear computations (`A·B` and `Aᵀ·diag(w)·A`).
//!
//! Following Yu–Maddah-Ali–Avestimehr (NIPS '17) as used in §5 of the S²C²
//! paper: `A` is split into `a` row blocks and `B` into `b` column blocks;
//! worker `i` stores
//!
//! ```text
//! Ã_i = Σ_j α_i^j     · A_j          B̃_i = Σ_l α_i^(l·a) · B_l
//! ```
//!
//! and computes `Ã_i · B̃_i`, which equals the degree-`(a·b − 1)` matrix
//! polynomial `Σ_q α_i^q · X_q` with `X_(j+l·a) = A_j·B_l`. Any `a·b`
//! responses therefore recover every block product by interpolation.
//!
//! Differences from the paper's exposition, both documented in DESIGN.md:
//!
//! * evaluation points are Chebyshev-spaced on `[−1, 1]` instead of the
//!   integers `0..n` — integer nodes make the interpolation Vandermonde
//!   catastrophically ill-conditioned in `f64` beyond a handful of nodes;
//! * an optional diagonal *middle* factor `diag(w)` is threaded through
//!   worker computation so Hessians `Aᵀ·diag(w)·A` (the paper's §6.3
//!   workload) reuse the same codec: `diag(w)` commutes into the block sums,
//!   so the polynomial structure — and hence decoding — is unchanged.
//!
//! Chunked work assignment mirrors the MDS codec: each worker's `Ã_i` is
//! split into row chunks; a chunk index decodes once *any* `a·b` workers
//! have computed it, which is the hook S²C² scheduling uses.

use crate::chunks::{group_by_chunk, ChunkLayout, WorkerChunkResult};
use crate::error::CodingError;
use s2c2_linalg::structured::{chebyshev_points, vandermonde};
use s2c2_linalg::{LuFactors, Matrix, Vector};

/// Polynomial code parameters: `n` workers, `a × b` block grid, any
/// `a·b` responses decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyParams {
    /// Total number of workers (= encoded partition pairs).
    pub n: usize,
    /// Row blocks of `A`.
    pub a: usize,
    /// Column blocks of `B`.
    pub b: usize,
}

impl PolyParams {
    /// Creates the parameter triple.
    ///
    /// # Panics
    ///
    /// Panics unless `a·b ≤ n` and all are positive (use
    /// [`PolynomialCode::new`] for the fallible form).
    #[must_use]
    pub fn new(n: usize, a: usize, b: usize) -> Self {
        assert!(a > 0 && b > 0 && a * b <= n, "require 0 < a*b <= n");
        PolyParams { n, a, b }
    }

    /// Recovery threshold: responses needed to decode (`a·b`).
    #[must_use]
    pub fn recovery_threshold(&self) -> usize {
        self.a * self.b
    }

    /// Straggler tolerance (`n − a·b`).
    #[must_use]
    pub fn straggler_tolerance(&self) -> usize {
        self.n - self.a * self.b
    }
}

/// Geometry of an encoded `(A, B)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyLayout {
    /// Chunk layout over `A`'s rows (`data_partitions = a`).
    pub row: ChunkLayout,
    /// Original column count of `B`.
    pub original_cols: usize,
    /// `B`'s columns after zero-padding (divisible by `b`).
    pub padded_cols: usize,
    /// Column blocks of `B` (= `b`).
    pub col_partitions: usize,
}

impl PolyLayout {
    /// Columns per encoded `B` partition.
    #[must_use]
    pub fn cols_per_partition(&self) -> usize {
        self.padded_cols / self.col_partitions
    }

    /// Flattened values in one chunk response
    /// (`rows_per_chunk × cols_per_partition`).
    #[must_use]
    pub fn values_per_chunk(&self) -> usize {
        self.row.rows_per_chunk() * self.cols_per_partition()
    }
}

/// A constructed polynomial code (evaluation points materialized).
#[derive(Debug, Clone)]
pub struct PolynomialCode {
    params: PolyParams,
    points: Vec<f64>,
}

impl PolynomialCode {
    /// Builds the code with Chebyshev evaluation points.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] unless `0 < a·b ≤ n`.
    pub fn new(params: PolyParams) -> Result<Self, CodingError> {
        if params.a == 0 || params.b == 0 || params.a * params.b > params.n {
            return Err(CodingError::InvalidParams(format!(
                "require 0 < a*b <= n, got (n={}, a={}, b={})",
                params.n, params.a, params.b
            )));
        }
        Ok(PolynomialCode {
            params,
            points: chebyshev_points(params.n, -1.0, 1.0),
        })
    }

    /// Code parameters.
    #[must_use]
    pub fn params(&self) -> PolyParams {
        self.params
    }

    /// Evaluation point of worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn point(&self, i: usize) -> f64 {
        self.points[i]
    }

    /// Encodes a pair of matrices for distributed multiplication.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidParams`] when inner dimensions disagree or a
    /// dimension is zero.
    pub fn encode_pair(
        &self,
        a: &Matrix,
        b: &Matrix,
        chunks_per_partition: usize,
    ) -> Result<EncodedPair, CodingError> {
        if a.cols() != b.rows() {
            return Err(CodingError::InvalidParams(format!(
                "inner dimensions disagree: A is {}x{}, B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        if b.cols() == 0 {
            return Err(CodingError::InvalidParams("B has zero columns".into()));
        }
        let row = ChunkLayout::new(a.rows(), self.params.a, chunks_per_partition)?;
        let padded_cols = b.cols().div_ceil(self.params.b) * self.params.b;
        let layout = PolyLayout {
            row,
            original_cols: b.cols(),
            padded_cols,
            col_partitions: self.params.b,
        };
        let prow = row.partition_rows();
        let pcol = layout.cols_per_partition();
        let m = a.cols();

        // Encoded A partitions: Ã_i = Σ_j α_i^j · A_j (zero-padded blocks).
        let mut a_parts = Vec::with_capacity(self.params.n);
        for i in 0..self.params.n {
            let alpha = self.points[i];
            let mut part = Matrix::zeros(prow, m);
            let mut coeff = 1.0;
            for j in 0..self.params.a {
                if coeff != 0.0 {
                    for r in 0..prow {
                        let src_row = j * prow + r;
                        if src_row < a.rows() {
                            let dst = part.row_mut(r);
                            for (d, s) in dst.iter_mut().zip(a.row(src_row)) {
                                *d += coeff * s;
                            }
                        }
                    }
                }
                coeff *= alpha;
            }
            a_parts.push(part);
        }

        // Encoded B partitions: B̃_i = Σ_l α_i^(l·a) · B_l.
        let mut b_parts = Vec::with_capacity(self.params.n);
        for i in 0..self.params.n {
            let alpha_a = self.points[i].powi(self.params.a as i32);
            let mut part = Matrix::zeros(m, pcol);
            let mut coeff = 1.0;
            for l in 0..self.params.b {
                if coeff != 0.0 {
                    for r in 0..m {
                        let dst = part.row_mut(r);
                        for (c, d) in dst.iter_mut().enumerate() {
                            let src_col = l * pcol + c;
                            if src_col < b.cols() {
                                *d += coeff * b.get(r, src_col);
                            }
                        }
                    }
                }
                coeff *= alpha_a;
            }
            b_parts.push(part);
        }

        Ok(EncodedPair {
            params: self.params,
            layout,
            a_parts,
            b_parts,
        })
    }

    /// Decodes the full product `A·(diag(w))·B` from per-chunk responses.
    ///
    /// Each chunk needs at least `a·b` responses; extras are ignored.
    /// Returns the product truncated to the original row/column counts.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MdsCode::decode_matvec`](crate::mds::MdsCode::decode_matvec).
    pub fn decode_product(
        &self,
        layout: &PolyLayout,
        responses: &[WorkerChunkResult],
    ) -> Result<Matrix, CodingError> {
        let need = self.params.recovery_threshold();
        let rpc = layout.row.rows_per_chunk();
        let pcol = layout.cols_per_partition();
        let vpc = layout.values_per_chunk();
        let per_chunk = group_by_chunk(responses, self.params.n, &layout.row, vpc)?;

        let mut out = Matrix::zeros(layout.row.padded_rows, layout.padded_cols);
        for (chunk, mut resps) in per_chunk.into_iter().enumerate() {
            if resps.len() < need {
                return Err(CodingError::NotEnoughResponses {
                    chunk,
                    got: resps.len(),
                    need,
                });
            }
            resps.sort_by_key(|r| r.worker);
            resps.truncate(need);

            // Interpolation system: V[i][q] = α_(worker_i)^q.
            let pts: Vec<f64> = resps.iter().map(|r| self.points[r.worker]).collect();
            let v = vandermonde(&pts, need);
            let lu = LuFactors::factor(&v).map_err(|_| CodingError::DecodeSingular { chunk })?;

            // RHS rows are the flattened responses; columns are entries.
            let mut rhs = Matrix::zeros(need, vpc);
            for (ri, r) in resps.iter().enumerate() {
                rhs.row_mut(ri).copy_from_slice(&r.values);
            }
            let solved = lu.solve_matrix(&rhs); // row q = flattened X_q

            // Scatter block products into the output.
            for j in 0..self.params.a {
                let row_range = layout.row.output_range(j, chunk);
                for l in 0..self.params.b {
                    let q = j + l * self.params.a;
                    for rr in 0..rpc {
                        for cc in 0..pcol {
                            out.set(
                                row_range.start + rr,
                                l * pcol + cc,
                                solved.get(q, rr * pcol + cc),
                            );
                        }
                    }
                }
            }
        }

        // Truncate padding.
        Ok(Matrix::from_fn(
            layout.row.original_rows,
            layout.original_cols,
            |r, c| out.get(r, c),
        ))
    }
}

/// The result of encoding an `(A, B)` pair: per-worker partition pairs.
#[derive(Debug, Clone)]
pub struct EncodedPair {
    params: PolyParams,
    layout: PolyLayout,
    a_parts: Vec<Matrix>,
    b_parts: Vec<Matrix>,
}

impl EncodedPair {
    /// Code parameters used for the encoding.
    #[must_use]
    pub fn params(&self) -> PolyParams {
        self.params
    }

    /// Pair geometry.
    #[must_use]
    pub fn layout(&self) -> &PolyLayout {
        &self.layout
    }

    /// Worker `i`'s encoded `A` partition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn a_part(&self, i: usize) -> &Matrix {
        &self.a_parts[i]
    }

    /// Worker `i`'s encoded `B` partition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn b_part(&self, i: usize) -> &Matrix {
        &self.b_parts[i]
    }

    /// Bytes stored per worker (both partitions).
    #[must_use]
    pub fn bytes_per_worker(&self) -> u64 {
        self.a_parts.first().map_or(0, Matrix::payload_bytes)
            + self.b_parts.first().map_or(0, Matrix::payload_bytes)
    }

    /// Worker `i` computes `Ã_i[chunk] · diag(w)? · B̃_i` and returns the
    /// row-major flattening — the numeric work for one assigned chunk.
    ///
    /// `middle` is the optional diagonal weight vector (the Hessian's
    /// `diag(w)`); `None` computes the plain product.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or a `middle` of the wrong length.
    #[must_use]
    pub fn worker_compute_chunk(
        &self,
        worker: usize,
        chunk: usize,
        middle: Option<&Vector>,
    ) -> WorkerChunkResult {
        let range = self.layout.row.chunk_range_in_partition(chunk);
        let a_part = &self.a_parts[worker];
        let b_part = &self.b_parts[worker];
        let m = a_part.cols();
        if let Some(w) = middle {
            assert_eq!(w.len(), m, "middle weight length mismatch");
        }
        let rpc = range.len();
        let pcol = b_part.cols();
        let mut values = vec![0.0; rpc * pcol];
        for (local, r) in range.clone().enumerate() {
            let arow = a_part.row(r);
            let out_row = &mut values[local * pcol..(local + 1) * pcol];
            for (t, &av) in arow.iter().enumerate().take(m) {
                let mut a_val = av;
                if let Some(w) = middle {
                    a_val *= w.as_slice()[t];
                }
                if a_val == 0.0 {
                    continue;
                }
                for (o, b) in out_row.iter_mut().zip(b_part.row(t)) {
                    *o += a_val * b;
                }
            }
        }
        WorkerChunkResult::new(worker, chunk, values)
    }

    /// Worker `i`'s results for every chunk in `chunks`.
    #[must_use]
    pub fn worker_compute_chunks(
        &self,
        worker: usize,
        chunks: &[usize],
        middle: Option<&Vector>,
    ) -> Vec<WorkerChunkResult> {
        chunks
            .iter()
            .map(|&c| self.worker_compute_chunk(worker, c, middle))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r as u64 * 37 + c as u64 * 13 + salt * 7) % 19) as f64 - 9.0) / 3.0
        })
    }

    fn reference_product(a: &Matrix, w: Option<&Vector>, b: &Matrix) -> Matrix {
        match w {
            None => a.matmul(b),
            Some(w) => {
                let mut scaled = b.clone();
                for r in 0..scaled.rows() {
                    let f = w.as_slice()[r];
                    for v in scaled.row_mut(r) {
                        *v *= f;
                    }
                }
                a.matmul(&scaled)
            }
        }
    }

    fn full_responses(
        enc: &EncodedPair,
        workers: &[usize],
        middle: Option<&Vector>,
    ) -> Vec<WorkerChunkResult> {
        let chunks: Vec<usize> = (0..enc.layout().row.chunks_per_partition).collect();
        workers
            .iter()
            .flat_map(|&w| enc.worker_compute_chunks(w, &chunks, middle))
            .collect()
    }

    #[test]
    fn params_helpers() {
        let p = PolyParams::new(5, 2, 2);
        assert_eq!(p.recovery_threshold(), 4);
        assert_eq!(p.straggler_tolerance(), 1);
    }

    #[test]
    #[should_panic(expected = "require 0 < a*b <= n")]
    fn params_rejects_overfull_grid() {
        let _ = PolyParams::new(3, 2, 2);
    }

    #[test]
    fn paper_example_5_nodes_2x2() {
        // §5's illustration: n = 5, a = b = 2, decode from any 4.
        let a = data(12, 6, 1);
        let b = data(6, 8, 2);
        let code = PolynomialCode::new(PolyParams::new(5, 2, 2)).unwrap();
        let enc = code.encode_pair(&a, &b, 3).unwrap();
        let expect = reference_product(&a, None, &b);
        // Every 4-subset of 5 workers decodes.
        for skip in 0..5 {
            let workers: Vec<usize> = (0..5).filter(|&w| w != skip).collect();
            let resp = full_responses(&enc, &workers, None);
            let got = code.decode_product(enc.layout(), &resp).unwrap();
            assert!(
                got.max_abs_diff(&expect) < 1e-8,
                "skip={skip}: max diff {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn hessian_configuration_12_nodes_3x3() {
        // Fig 12's setup: 12 nodes, A split 3 ways each direction, any 9
        // responses decode the Hessian A^T diag(w) A.
        let a = data(18, 10, 3); // stands for A^T: 18 rows = features
        let b = data(10, 18, 4); // stands for A
        let w = Vector::from_fn(10, |i| 0.5 + (i as f64) * 0.1);
        let code = PolynomialCode::new(PolyParams::new(12, 3, 3)).unwrap();
        let enc = code.encode_pair(&a, &b, 2).unwrap();
        let expect = reference_product(&a, Some(&w), &b);
        let workers: Vec<usize> = (3..12).collect(); // slowest 3 ignored
        let resp = full_responses(&enc, &workers, Some(&w));
        let got = code.decode_product(enc.layout(), &resp).unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-7,
            "diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn mixed_chunk_coverage_decodes() {
        // Chunks covered by different 4-subsets — the S2C2 schedule shape.
        let a = data(16, 5, 5);
        let b = data(5, 6, 6);
        let code = PolynomialCode::new(PolyParams::new(5, 2, 2)).unwrap();
        let enc = code.encode_pair(&a, &b, 2).unwrap();
        let mut resp = Vec::new();
        for w in [0usize, 1, 2, 3] {
            resp.push(enc.worker_compute_chunk(w, 0, None));
        }
        for w in [1usize, 2, 3, 4] {
            resp.push(enc.worker_compute_chunk(w, 1, None));
        }
        let got = code.decode_product(enc.layout(), &resp).unwrap();
        let expect = reference_product(&a, None, &b);
        assert!(got.max_abs_diff(&expect) < 1e-8);
    }

    #[test]
    fn padding_both_dimensions() {
        // 13 rows (pads to 16 for a=2,chunks=4... actually 2*4=8 -> 16) and
        // 7 cols (pads to 8 for b=2).
        let a = data(13, 4, 7);
        let b = data(4, 7, 8);
        let code = PolynomialCode::new(PolyParams::new(6, 2, 2)).unwrap();
        let enc = code.encode_pair(&a, &b, 4).unwrap();
        assert_eq!(enc.layout().row.padded_rows, 16);
        assert_eq!(enc.layout().padded_cols, 8);
        let resp = full_responses(&enc, &[0, 2, 3, 5], None);
        let got = code.decode_product(enc.layout(), &resp).unwrap();
        assert_eq!(got.shape(), (13, 7));
        let expect = reference_product(&a, None, &b);
        assert!(got.max_abs_diff(&expect) < 1e-8);
    }

    #[test]
    fn asymmetric_grid() {
        let a = data(12, 5, 9);
        let b = data(5, 9, 10);
        let code = PolynomialCode::new(PolyParams::new(7, 3, 2)).unwrap();
        let enc = code.encode_pair(&a, &b, 2).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2, 4, 5, 6], None);
        let got = code.decode_product(enc.layout(), &resp).unwrap();
        let expect = reference_product(&a, None, &b);
        assert!(got.max_abs_diff(&expect) < 1e-7);
    }

    #[test]
    fn not_enough_responses_reported() {
        let a = data(8, 3, 11);
        let b = data(3, 4, 12);
        let code = PolynomialCode::new(PolyParams::new(5, 2, 2)).unwrap();
        let enc = code.encode_pair(&a, &b, 2).unwrap();
        let resp = full_responses(&enc, &[0, 1, 2], None);
        let err = code.decode_product(enc.layout(), &resp).unwrap_err();
        assert!(matches!(
            err,
            CodingError::NotEnoughResponses { need: 4, .. }
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = data(8, 3, 13);
        let b = data(4, 4, 14);
        let code = PolynomialCode::new(PolyParams::new(5, 2, 2)).unwrap();
        assert!(matches!(
            code.encode_pair(&a, &b, 2),
            Err(CodingError::InvalidParams(_))
        ));
    }

    #[test]
    fn middle_diagonal_equivalent_to_scaling() {
        // worker_compute_chunk with diag(w) == computing on pre-scaled B.
        let a = data(8, 4, 15);
        let b = data(4, 6, 16);
        let w = Vector::from_fn(4, |i| 1.0 + i as f64 * 0.5);
        let code = PolynomialCode::new(PolyParams::new(4, 2, 2)).unwrap();
        let enc = code.encode_pair(&a, &b, 2).unwrap();
        let mut b_scaled = b.clone();
        for r in 0..4 {
            let f = w.as_slice()[r];
            for v in b_scaled.row_mut(r) {
                *v *= f;
            }
        }
        let enc_scaled = code.encode_pair(&a, &b_scaled, 2).unwrap();
        for worker in 0..4 {
            for chunk in 0..2 {
                let with_mid = enc.worker_compute_chunk(worker, chunk, Some(&w));
                let pre_scaled = enc_scaled.worker_compute_chunk(worker, chunk, None);
                for (x, y) in with_mid.values.iter().zip(pre_scaled.values.iter()) {
                    assert!((x - y).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn evaluation_points_distinct() {
        let code = PolynomialCode::new(PolyParams::new(12, 3, 3)).unwrap();
        for i in 0..12 {
            for j in i + 1..12 {
                assert_ne!(code.point(i), code.point(j));
            }
        }
    }
}
