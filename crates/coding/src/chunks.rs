//! Over-decomposition geometry shared by the MDS and polynomial codecs.
//!
//! A data matrix with `original_rows` rows is padded and split into
//! `data_partitions` (k, or a for polynomial codes) equal row blocks; each
//! block — and therefore each worker's *coded* partition — is further split
//! into `chunks_per_partition` equal row chunks. S²C² assigns work at chunk
//! granularity, and decoding recovers the output chunk-by-chunk from
//! whichever workers computed a given chunk index.

use crate::error::CodingError;
use std::ops::Range;

/// Geometry of the padded, partitioned, chunked data matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLayout {
    /// Rows of the original (unpadded) data matrix.
    pub original_rows: usize,
    /// Rows after zero-padding (divisible by `data_partitions · chunks`).
    pub padded_rows: usize,
    /// Number of data partitions (`k` for MDS, `a` for polynomial codes).
    pub data_partitions: usize,
    /// Chunks per partition (the over-decomposition factor × base chunks).
    pub chunks_per_partition: usize,
}

impl ChunkLayout {
    /// Computes the layout, padding `original_rows` up so it divides evenly.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParams`] when any dimension is zero.
    pub fn new(
        original_rows: usize,
        data_partitions: usize,
        chunks_per_partition: usize,
    ) -> Result<Self, CodingError> {
        if original_rows == 0 {
            return Err(CodingError::InvalidParams("matrix has zero rows".into()));
        }
        if data_partitions == 0 {
            return Err(CodingError::InvalidParams(
                "need at least one partition".into(),
            ));
        }
        if chunks_per_partition == 0 {
            return Err(CodingError::InvalidParams("need at least one chunk".into()));
        }
        let unit = data_partitions * chunks_per_partition;
        let padded_rows = original_rows.div_ceil(unit) * unit;
        Ok(ChunkLayout {
            original_rows,
            padded_rows,
            data_partitions,
            chunks_per_partition,
        })
    }

    /// Rows in each (coded or data) partition.
    #[must_use]
    pub fn partition_rows(&self) -> usize {
        self.padded_rows / self.data_partitions
    }

    /// Rows in each chunk.
    #[must_use]
    pub fn rows_per_chunk(&self) -> usize {
        self.partition_rows() / self.chunks_per_partition
    }

    /// Row range of chunk `chunk` *within a partition*.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    #[must_use]
    pub fn chunk_range_in_partition(&self, chunk: usize) -> Range<usize> {
        assert!(
            chunk < self.chunks_per_partition,
            "chunk index out of range"
        );
        let rpc = self.rows_per_chunk();
        chunk * rpc..(chunk + 1) * rpc
    }

    /// Row range in the *padded output* covered by `(partition, chunk)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn output_range(&self, partition: usize, chunk: usize) -> Range<usize> {
        assert!(
            partition < self.data_partitions,
            "partition index out of range"
        );
        let local = self.chunk_range_in_partition(chunk);
        let base = partition * self.partition_rows();
        base + local.start..base + local.end
    }

    /// Total number of zero rows appended by padding.
    #[must_use]
    pub fn padding_rows(&self) -> usize {
        self.padded_rows - self.original_rows
    }
}

/// One worker's result for one chunk of its coded partition.
///
/// For matvec decoding `values` has `rows_per_chunk` entries; for
/// matrix-product decoding it is the row-major flattening of a
/// `rows_per_chunk × output_cols` block.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerChunkResult {
    /// Responding worker id (`0..n`).
    pub worker: usize,
    /// Chunk index within the worker's partition.
    pub chunk: usize,
    /// Computed values for the chunk.
    pub values: Vec<f64>,
}

impl WorkerChunkResult {
    /// Convenience constructor.
    #[must_use]
    pub fn new(worker: usize, chunk: usize, values: Vec<f64>) -> Self {
        WorkerChunkResult {
            worker,
            chunk,
            values,
        }
    }
}

/// One worker's *stacked* result for one chunk: the products of the
/// chunk's rows against `members` right-hand sides, stored as a single
/// contiguous `rows_per_chunk × members` buffer (chunk-row-major,
/// member-minor — element `(row, member)` lives at `row * members +
/// member`).
///
/// This is the wire format of the batch-first kernel layer: a worker's
/// reply for a chunk ships one flat block, and the stacked decoder
/// consumes it without per-member de-interleaving. A single-member block
/// is the unbatched case.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChunkResult {
    /// Responding worker id (`0..n`).
    pub worker: usize,
    /// Chunk index within the worker's partition.
    pub chunk: usize,
    /// Number of stacked right-hand sides.
    pub members: usize,
    /// Row-major `rows_per_chunk × members` block of computed values.
    pub values: Vec<f64>,
}

impl MultiChunkResult {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0` or `values.len()` is not a multiple of
    /// `members`.
    #[must_use]
    pub fn new(worker: usize, chunk: usize, members: usize, values: Vec<f64>) -> Self {
        assert!(members > 0, "a stacked result needs at least one member");
        assert_eq!(
            values.len() % members,
            0,
            "stacked payload length must be a multiple of the member count"
        );
        MultiChunkResult {
            worker,
            chunk,
            members,
            values,
        }
    }

    /// Number of chunk rows in the block.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.values.len() / self.members
    }

    /// Extracts member `m`'s column as an owned vector (strided copy —
    /// compatibility/diagnostic path, not the decode hot path).
    ///
    /// # Panics
    ///
    /// Panics if `m >= members`.
    #[must_use]
    pub fn member_values(&self, m: usize) -> Vec<f64> {
        assert!(m < self.members, "member index out of range");
        self.values
            .iter()
            .skip(m)
            .step_by(self.members)
            .copied()
            .collect()
    }

    /// Splits the block into per-member [`WorkerChunkResult`]s, in member
    /// order.
    #[must_use]
    pub fn into_member_results(self) -> Vec<WorkerChunkResult> {
        (0..self.members)
            .map(|m| WorkerChunkResult::new(self.worker, self.chunk, self.member_values(m)))
            .collect()
    }

    /// Wraps a single-member result as a stacked block.
    #[must_use]
    pub fn from_single(r: WorkerChunkResult) -> Self {
        MultiChunkResult::new(r.worker, r.chunk, 1, r.values)
    }
}

/// Groups stacked blocks by chunk, validating worker/chunk bounds, a
/// uniform member count, payload length, and duplicate `(worker, chunk)`
/// pairs — the block-layout counterpart of [`group_by_chunk`].
///
/// Returns `per_chunk[chunk] = Vec<&MultiChunkResult>`.
///
/// # Errors
///
/// [`CodingError::MalformedResponse`] on out-of-range indices, a member
/// count differing from `members`, or wrong payload length;
/// [`CodingError::DuplicateResponse`] on duplicates.
pub fn group_blocks_by_chunk<'a>(
    responses: &'a [MultiChunkResult],
    workers: usize,
    layout: &ChunkLayout,
    members: usize,
    rows_per_chunk: usize,
) -> Result<Vec<Vec<&'a MultiChunkResult>>, CodingError> {
    let mut per_chunk: Vec<Vec<&MultiChunkResult>> = vec![Vec::new(); layout.chunks_per_partition];
    for r in responses {
        if r.worker >= workers {
            return Err(CodingError::MalformedResponse(format!(
                "worker {} out of range (n = {workers})",
                r.worker
            )));
        }
        if r.chunk >= layout.chunks_per_partition {
            return Err(CodingError::MalformedResponse(format!(
                "chunk {} out of range ({} chunks per partition)",
                r.chunk, layout.chunks_per_partition
            )));
        }
        if r.members != members {
            return Err(CodingError::MalformedResponse(format!(
                "stacked block has {} members, expected {members}",
                r.members
            )));
        }
        if r.values.len() != rows_per_chunk * members {
            return Err(CodingError::MalformedResponse(format!(
                "stacked payload has {} values, expected {}",
                r.values.len(),
                rows_per_chunk * members
            )));
        }
        if per_chunk[r.chunk].iter().any(|e| e.worker == r.worker) {
            return Err(CodingError::DuplicateResponse {
                worker: r.worker,
                chunk: r.chunk,
            });
        }
        per_chunk[r.chunk].push(r);
    }
    Ok(per_chunk)
}

/// Groups responses by chunk, validating worker/chunk bounds, payload
/// length, and duplicate `(worker, chunk)` pairs.
///
/// Returns `per_chunk[chunk] = Vec<&WorkerChunkResult>`.
///
/// # Errors
///
/// [`CodingError::MalformedResponse`] on out-of-range indices or wrong
/// payload length; [`CodingError::DuplicateResponse`] on duplicates.
pub fn group_by_chunk<'a>(
    responses: &'a [WorkerChunkResult],
    workers: usize,
    layout: &ChunkLayout,
    values_per_chunk: usize,
) -> Result<Vec<Vec<&'a WorkerChunkResult>>, CodingError> {
    let mut per_chunk: Vec<Vec<&WorkerChunkResult>> = vec![Vec::new(); layout.chunks_per_partition];
    for r in responses {
        if r.worker >= workers {
            return Err(CodingError::MalformedResponse(format!(
                "worker {} out of range (n = {workers})",
                r.worker
            )));
        }
        if r.chunk >= layout.chunks_per_partition {
            return Err(CodingError::MalformedResponse(format!(
                "chunk {} out of range ({} chunks per partition)",
                r.chunk, layout.chunks_per_partition
            )));
        }
        if r.values.len() != values_per_chunk {
            return Err(CodingError::MalformedResponse(format!(
                "chunk payload has {} values, expected {values_per_chunk}",
                r.values.len()
            )));
        }
        if per_chunk[r.chunk].iter().any(|e| e.worker == r.worker) {
            return Err(CodingError::DuplicateResponse {
                worker: r.worker,
                chunk: r.chunk,
            });
        }
        per_chunk[r.chunk].push(r);
    }
    Ok(per_chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_no_padding() {
        let l = ChunkLayout::new(120, 4, 3).unwrap();
        assert_eq!(l.padded_rows, 120);
        assert_eq!(l.partition_rows(), 30);
        assert_eq!(l.rows_per_chunk(), 10);
        assert_eq!(l.padding_rows(), 0);
    }

    #[test]
    fn padding_rounds_up() {
        let l = ChunkLayout::new(100, 4, 3).unwrap();
        assert_eq!(l.padded_rows, 108);
        assert_eq!(l.padding_rows(), 8);
    }

    #[test]
    fn ranges_are_consistent() {
        let l = ChunkLayout::new(120, 4, 3).unwrap();
        assert_eq!(l.chunk_range_in_partition(0), 0..10);
        assert_eq!(l.chunk_range_in_partition(2), 20..30);
        assert_eq!(l.output_range(0, 0), 0..10);
        assert_eq!(l.output_range(1, 0), 30..40);
        assert_eq!(l.output_range(3, 2), 110..120);
    }

    #[test]
    fn output_ranges_tile_whole_matrix() {
        let l = ChunkLayout::new(97, 5, 4).unwrap();
        let mut covered = vec![false; l.padded_rows];
        for p in 0..l.data_partitions {
            for c in 0..l.chunks_per_partition {
                for r in l.output_range(p, c) {
                    assert!(!covered[r], "row {r} covered twice");
                    covered[r] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "every padded row covered once");
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(ChunkLayout::new(0, 2, 2).is_err());
        assert!(ChunkLayout::new(10, 0, 2).is_err());
        assert!(ChunkLayout::new(10, 2, 0).is_err());
    }

    #[test]
    fn group_by_chunk_validates() {
        let l = ChunkLayout::new(40, 2, 2).unwrap();
        let rpc = l.rows_per_chunk();
        let ok = vec![
            WorkerChunkResult::new(0, 0, vec![0.0; rpc]),
            WorkerChunkResult::new(1, 0, vec![0.0; rpc]),
            WorkerChunkResult::new(0, 1, vec![0.0; rpc]),
        ];
        let grouped = group_by_chunk(&ok, 3, &l, rpc).unwrap();
        assert_eq!(grouped[0].len(), 2);
        assert_eq!(grouped[1].len(), 1);

        let dup = vec![
            WorkerChunkResult::new(0, 0, vec![0.0; rpc]),
            WorkerChunkResult::new(0, 0, vec![0.0; rpc]),
        ];
        assert!(matches!(
            group_by_chunk(&dup, 3, &l, rpc),
            Err(CodingError::DuplicateResponse {
                worker: 0,
                chunk: 0
            })
        ));

        let bad_worker = vec![WorkerChunkResult::new(9, 0, vec![0.0; rpc])];
        assert!(group_by_chunk(&bad_worker, 3, &l, rpc).is_err());

        let bad_len = vec![WorkerChunkResult::new(0, 0, vec![0.0; rpc + 1])];
        assert!(group_by_chunk(&bad_len, 3, &l, rpc).is_err());

        let bad_chunk = vec![WorkerChunkResult::new(0, 7, vec![0.0; rpc])];
        assert!(group_by_chunk(&bad_chunk, 3, &l, rpc).is_err());
    }

    #[test]
    #[should_panic(expected = "chunk index out of range")]
    fn chunk_range_bounds() {
        let l = ChunkLayout::new(40, 2, 2).unwrap();
        let _ = l.chunk_range_in_partition(2);
    }

    #[test]
    fn multi_chunk_result_member_views() {
        // 3 rows × 2 members, row-major member-minor.
        let block = MultiChunkResult::new(1, 0, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(block.rows(), 3);
        assert_eq!(block.member_values(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(block.member_values(1), vec![10.0, 20.0, 30.0]);
        let singles = block.clone().into_member_results();
        assert_eq!(singles.len(), 2);
        assert_eq!(singles[0].values, vec![1.0, 2.0, 3.0]);
        assert_eq!(singles[1].worker, 1);
        let wrapped = MultiChunkResult::from_single(singles[0].clone());
        assert_eq!(wrapped.members, 1);
        assert_eq!(wrapped.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of the member count")]
    fn multi_chunk_result_rejects_ragged_payload() {
        let _ = MultiChunkResult::new(0, 0, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn group_blocks_by_chunk_validates() {
        let l = ChunkLayout::new(40, 2, 2).unwrap();
        let rpc = l.rows_per_chunk();
        let members = 3;
        let ok = vec![
            MultiChunkResult::new(0, 0, members, vec![0.0; rpc * members]),
            MultiChunkResult::new(1, 0, members, vec![0.0; rpc * members]),
            MultiChunkResult::new(0, 1, members, vec![0.0; rpc * members]),
        ];
        let grouped = group_blocks_by_chunk(&ok, 3, &l, members, rpc).unwrap();
        assert_eq!(grouped[0].len(), 2);
        assert_eq!(grouped[1].len(), 1);

        let dup = vec![
            MultiChunkResult::new(0, 0, members, vec![0.0; rpc * members]),
            MultiChunkResult::new(0, 0, members, vec![0.0; rpc * members]),
        ];
        assert!(matches!(
            group_blocks_by_chunk(&dup, 3, &l, members, rpc),
            Err(CodingError::DuplicateResponse {
                worker: 0,
                chunk: 0
            })
        ));

        let wrong_members = vec![MultiChunkResult::new(0, 0, 2, vec![0.0; rpc * 2])];
        assert!(group_blocks_by_chunk(&wrong_members, 3, &l, members, rpc).is_err());

        let bad_worker = vec![MultiChunkResult::new(
            9,
            0,
            members,
            vec![0.0; rpc * members],
        )];
        assert!(group_blocks_by_chunk(&bad_worker, 3, &l, members, rpc).is_err());

        let bad_len = vec![MultiChunkResult::new(
            0,
            0,
            members,
            vec![0.0; (rpc + 1) * members],
        )];
        assert!(group_blocks_by_chunk(&bad_len, 3, &l, members, rpc).is_err());

        let bad_chunk = vec![MultiChunkResult::new(
            0,
            7,
            members,
            vec![0.0; rpc * members],
        )];
        assert!(group_blocks_by_chunk(&bad_chunk, 3, &l, members, rpc).is_err());
    }
}
