//! Property-based tests for Algorithm 1 and its bilinear extension.
//!
//! The invariant every figure rests on: whatever speeds the predictor
//! reports, the allocator must emit an assignment in which *every* chunk
//! index is covered by exactly `k` distinct workers (otherwise decoding
//! fails), no worker exceeds its partition, total slots equal `k·C`, and
//! faster workers never get less work than slower ones.

use proptest::prelude::*;
use s2c2_core::alloc::{allocate_chunks, allocate_chunks_basic, allocate_chunks_with_fixed_cost};

/// Strategy: a cluster's worth of speeds, some possibly zero (dead).
fn speeds(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0.05f64..1.2,   // live
            1 => Just(0.0),      // presumed dead
        ],
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn coverage_is_exactly_k_for_any_speeds(
        n in 3usize..=20,
        seedspeeds in speeds(20),
        k_frac in 0.2f64..0.95,
        chunks in 1usize..=24,
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let result = allocate_chunks(speeds, k, chunks);
        if alive < k {
            prop_assert!(result.is_err(), "must refuse infeasible coverage");
        } else {
            let a = result.unwrap();
            prop_assert!(a.is_decodable(), "coverage invariant violated");
            prop_assert_eq!(a.total_slots(), k * chunks);
            // Dead workers get nothing.
            for (w, &s) in speeds.iter().enumerate() {
                if s == 0.0 {
                    prop_assert!(a.chunks[w].is_empty());
                }
            }
        }
    }

    #[test]
    fn allocation_is_monotone_in_speed(
        n in 4usize..=16,
        seedspeeds in speeds(16),
        chunks in 2usize..=16,
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        let k = (n / 2).max(1);
        prop_assume!(alive >= k);
        let a = allocate_chunks(speeds, k, chunks).unwrap();
        // Strictly faster workers receive at least as many chunks, up to
        // integer rounding (±1 slot tolerance from the greedy leftover).
        for i in 0..n {
            for j in 0..n {
                if speeds[i] > speeds[j] * 1.5 && speeds[j] > 0.0 {
                    prop_assert!(
                        a.chunks[i].len() + 1 >= a.chunks[j].len(),
                        "worker {i} ({}) got {} chunks, worker {j} ({}) got {}",
                        speeds[i], a.chunks[i].len(), speeds[j], a.chunks[j].len()
                    );
                }
            }
        }
    }

    #[test]
    fn basic_mode_splits_evenly_among_available(
        n in 3usize..=16,
        mask in proptest::collection::vec(any::<bool>(), 16),
        chunks in 1usize..=12,
    ) {
        let available = &mask[..n];
        let alive = available.iter().filter(|&&a| a).count();
        let k = (n / 2).max(1);
        let result = allocate_chunks_basic(available, k, chunks);
        if alive < k {
            prop_assert!(result.is_err());
        } else {
            let a = result.unwrap();
            prop_assert!(a.is_decodable());
            // Even split: all available workers within 1 chunk of each other.
            let sizes: Vec<usize> = (0..n)
                .filter(|&w| available[w])
                .map(|w| a.chunks[w].len())
                .collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            prop_assert!(max - min <= 1, "uneven basic split: {sizes:?}");
        }
    }

    #[test]
    fn water_filling_preserves_coverage_and_caps(
        n in 4usize..=16,
        seedspeeds in speeds(16),
        chunks in 2usize..=16,
        fixed_ratio in 0.0f64..4.0,
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        let k = (n * 3 / 4).max(1);
        prop_assume!(alive >= k);
        let unit = 100.0;
        let fixed = fixed_ratio * unit;
        let a = allocate_chunks_with_fixed_cost(speeds, k, chunks, fixed, unit).unwrap();
        prop_assert!(a.is_decodable(), "water-filling broke coverage");
        prop_assert_eq!(a.total_slots(), k * chunks);
        for per_worker in &a.chunks {
            prop_assert!(per_worker.len() <= chunks);
        }
    }

    #[test]
    fn water_filling_with_zero_fixed_matches_plain(
        n in 4usize..=12,
        seedspeeds in speeds(12),
        chunks in 2usize..=12,
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        let k = (n / 2).max(1);
        prop_assume!(alive >= k);
        let plain = allocate_chunks(speeds, k, chunks).unwrap();
        let wf = allocate_chunks_with_fixed_cost(speeds, k, chunks, 0.0, 1.0).unwrap();
        prop_assert_eq!(plain, wf, "zero fixed cost must reduce to Algorithm 1");
    }

    #[test]
    fn heavy_fixed_cost_idles_the_slowest(
        chunks in 4usize..=16,
    ) {
        // One worker at 10% speed with a fixed cost comparable to the
        // whole round: water-filling should give it zero chunks rather
        // than making it the bottleneck.
        let speeds = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.1];
        let k = 5;
        let unit = 100.0;
        let fixed = unit * chunks as f64; // fixed pass ~ a full partition
        let a = allocate_chunks_with_fixed_cost(&speeds, k, chunks, fixed, unit).unwrap();
        prop_assert!(a.is_decodable());
        let slow_share = a.chunks[7].len();
        let fast_share = a.chunks[0].len();
        prop_assert!(
            slow_share * 3 <= fast_share.max(1),
            "slow worker overloaded: {slow_share} vs {fast_share}"
        );
    }
}
