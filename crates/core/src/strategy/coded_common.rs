//! The shared execution engine for coded matvec iterations.
//!
//! Uncoded, conventional MDS, and both S²C² variants all reduce to the
//! same round shape — broadcast `x`, workers compute assigned chunks of
//! their coded partitions, master collects per-chunk coverage, optionally
//! cancels-and-reassigns after the §4.3 timeout, decodes — differing only
//! in the *assignment* they start from and whether reassignment is
//! enabled. This module implements that round once, with exact accounting
//! of useful vs wasted rows (Figs 9/11 are computed from it).
//!
//! Collection rule: for every chunk index the master uses the `k`
//! earliest-arriving results among workers that computed that chunk; any
//! further copies of the chunk are wasted work. For an exact-coverage
//! S²C² assignment the rule degenerates to "use everything"; for a
//! conventional full assignment it is precisely the fastest-`k`-of-`n`
//! rule of MDS coded computing.

use crate::alloc::ChunkAssignment;
use crate::error::S2c2Error;
use s2c2_cluster::metrics::RoundMetrics;
use s2c2_cluster::sim::{round_completion_times, ClusterSim};
use s2c2_coding::chunks::WorkerChunkResult;
use s2c2_coding::mds::{EncodedMatrix, MdsCode};
use s2c2_linalg::Vector;

/// Tuning knobs for a coded round.
#[derive(Debug, Clone, Copy)]
pub struct CodedRoundConfig {
    /// The §4.3 timeout margin: stragglers get `(1 + margin) ×` the mean
    /// response time of the first `k` finishers before cancellation.
    pub timeout_margin: f64,
    /// Whether cancel-and-reassign is enabled (S²C²) or the master simply
    /// waits out the coverage requirement (conventional coded computing).
    pub reassign: bool,
}

impl Default for CodedRoundConfig {
    fn default() -> Self {
        CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: true,
        }
    }
}

/// Everything a strategy learns from one executed round.
#[derive(Debug, Clone)]
pub struct CodedRound {
    /// Decoded result (original, unpadded row count).
    pub result: Vector,
    /// Full accounting for the round.
    pub metrics: RoundMetrics,
    /// Observed per-worker speeds (`rows / response_time`), the §6.2
    /// estimator input; `None` for idle workers.
    pub observed_speeds: Vec<Option<f64>>,
    /// Whether the timeout machinery fired (a mis-prediction was handled).
    pub reassigned: bool,
}

/// Executes one coded round against the simulator.
///
/// `sim.begin_iteration` must already have been called for `iteration`.
///
/// # Errors
///
/// Propagates decode failures; returns [`S2c2Error::IterationFailed`] if
/// coverage cannot be met even after reassignment.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_coded_round(
    code: &MdsCode,
    enc: &EncodedMatrix,
    assignment: &ChunkAssignment,
    sim: &ClusterSim,
    iteration: usize,
    x: &Vector,
    cfg: &CodedRoundConfig,
    expected_speeds: Option<&[f64]>,
) -> Result<CodedRound, S2c2Error> {
    let n = sim.n();
    let layout = *enc.layout();
    let k = code.params().k;
    let c = layout.chunks_per_partition;
    let rpc = layout.rows_per_chunk();
    let cols = x.len();
    let input_bytes = (cols * 8) as u64;

    if assignment.workers() != n {
        return Err(S2c2Error::InvalidConfig(format!(
            "assignment for {} workers on a {n}-worker cluster",
            assignment.workers()
        )));
    }

    // ---- Phase 1: everyone computes their assignment. ----
    let rows: Vec<usize> = assignment.rows_per_worker(rpc);
    let times = round_completion_times(sim, input_bytes, &rows, cols, 8);
    let assigned: Vec<usize> = (0..n).filter(|&w| rows[w] > 0).collect();
    if assigned.len() < k {
        return Err(S2c2Error::NotEnoughWorkers {
            alive: assigned.len(),
            need: k,
        });
    }

    // §4.3 deadline, plan-normalized: the master projects each worker's
    // completion from its assignment and (when scheduling adaptively) its
    // predicted speed, calibrates the projection against the first k
    // observed finishers, and cancels a worker only when it runs more
    // than `margin` past its own projection. In the paper's
    // equal-allocation, equal-speed setting this reduces verbatim to
    // "within 15% of the average response time of the first k"; the
    // normalization stops integer chunk rounding and *planned* slowness
    // (a correctly-predicted straggler with a small share) from
    // masquerading as mis-prediction.
    let planned: Vec<f64> = (0..n)
        .map(|w| match expected_speeds {
            Some(p) if p[w] > 0.0 => rows[w] as f64 / p[w],
            _ => rows[w] as f64,
        })
        .collect();
    let mut by_time: Vec<usize> = assigned.clone();
    by_time.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
    let t_kth = times[by_time[k - 1]];
    let mean_rate: f64 = by_time[..k]
        .iter()
        .map(|&w| times[w] / planned[w])
        .sum::<f64>()
        / k as f64;
    let deadline_for = |w: usize| t_kth.max((1.0 + cfg.timeout_margin) * planned[w] * mean_rate);

    let active: Vec<usize> = assigned
        .iter()
        .copied()
        .filter(|&w| times[w] <= deadline_for(w))
        .collect();
    let cancelled: Vec<usize> = if cfg.reassign {
        assigned
            .iter()
            .copied()
            .filter(|&w| times[w] > deadline_for(w))
            .collect()
    } else {
        Vec::new()
    };
    // The master launches all reassignments once the last deadline of a
    // cancelled worker has passed.
    let cancel_at = cancelled
        .iter()
        .map(|&w| deadline_for(w))
        .fold(t_kth, f64::max);
    let effective_active: Vec<usize> = if cfg.reassign {
        active.clone()
    } else {
        assigned.clone()
    };

    // Per-chunk coverage from non-cancelled workers.
    let covers = |w: usize, chunk: usize| assignment.chunks[w].binary_search(&chunk).is_ok();
    let mut deficit: Vec<usize> = Vec::new(); // chunks with < k live coverage
    for chunk in 0..c {
        let live = effective_active
            .iter()
            .filter(|&&w| covers(w, chunk))
            .count();
        if live < k {
            deficit.push(chunk);
        }
    }

    // ---- Phase 2: reassign deficit chunks among completed workers. ----
    let mut extra: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut reassigned = false;
    let mut abort_reassign = false;
    if !deficit.is_empty() {
        debug_assert!(cfg.reassign, "deficits only arise after cancellation");
        // Spread redo work across finished workers: pick, per chunk, the
        // least-loaded candidate (ties to the faster one) that does not
        // already cover it. Without load spreading, one fast worker would
        // serialize the entire redo.
        let mut candidates: Vec<usize> = active.clone();
        candidates.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
        'chunks: for &chunk in &deficit {
            let live = active.iter().filter(|&&w| covers(w, chunk)).count();
            let mut need = k - live;
            while need > 0 {
                let pick = candidates
                    .iter()
                    .copied()
                    .filter(|&cand| !covers(cand, chunk) && !extra[cand].contains(&chunk))
                    .min_by_key(|&cand| extra[cand].len());
                match pick {
                    Some(cand) => {
                        extra[cand].push(chunk);
                        need -= 1;
                    }
                    None => break,
                }
            }
            if need > 0 {
                // Cannot rebuild coverage from finished workers (extreme
                // straggler storms). §4.4: degrade to conventional coded
                // computing — wait out the original assignment.
                abort_reassign = true;
                break 'chunks;
            }
        }
        if abort_reassign {
            extra.iter_mut().for_each(Vec::clear);
        } else {
            reassigned = true;
        }
    }
    let cancelled: Vec<usize> = if abort_reassign {
        Vec::new()
    } else {
        cancelled
    };
    let live_workers: Vec<usize> = if abort_reassign || !cfg.reassign {
        assigned.clone()
    } else {
        active.clone()
    };

    // Phase-2 completion times: detected at `deadline`, new work order
    // costs one message latency, then compute + reply.
    let mut t2 = vec![f64::INFINITY; n];
    for w in 0..n {
        if !extra[w].is_empty() {
            let extra_rows = extra[w].len() * rpc;
            t2[w] = cancel_at
                + sim.transfer_time(64)
                + sim.compute_time(w, extra_rows, cols)
                + sim.transfer_time((extra_rows * 8) as u64);
        }
    }

    // ---- Collection: per chunk, k earliest results win. ----
    // candidate (time, worker, is_extra) per chunk.
    let mut chosen: Vec<Vec<(usize, bool)>> = vec![Vec::new(); c];
    let mut t_compute: f64 = 0.0;
    for (chunk, slot) in chosen.iter_mut().enumerate() {
        let mut cands: Vec<(f64, usize, bool)> = Vec::new();
        for &w in &live_workers {
            if covers(w, chunk) {
                cands.push((times[w], w, false));
            }
        }
        for (w, ex) in extra.iter().enumerate() {
            if ex.contains(&chunk) {
                cands.push((t2[w], w, true));
            }
        }
        cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if cands.len() < k {
            return Err(S2c2Error::IterationFailed(format!(
                "chunk {chunk} has only {} results after reassignment",
                cands.len()
            )));
        }
        t_compute = t_compute.max(cands[k - 1].0);
        *slot = cands[..k].iter().map(|&(_, w, e)| (w, e)).collect();
    }

    // ---- Numeric work + decode. ----
    let mut responses: Vec<WorkerChunkResult> = Vec::new();
    let mut useful_rows = vec![0usize; n];
    let mut decode_flops = 0.0;
    for (chunk, sel) in chosen.iter().enumerate() {
        let mut missing = k;
        for &(w, _) in sel {
            responses.push(enc.worker_compute_chunk(w, chunk, x));
            useful_rows[w] += rpc;
            if w < k {
                missing -= 1; // systematic response: free decode
            }
        }
        let m = missing as f64;
        decode_flops += m * m * m / 3.0 + rpc as f64 * m * m + m * k as f64 * rpc as f64;
    }
    let result = code.decode_matvec(&layout, &responses)?;
    let decode_time = sim.decode_time(decode_flops);

    // ---- Accounting. ----
    let mut metrics = RoundMetrics::new(iteration, n);
    let input_time = sim.transfer_time(input_bytes);
    let mut observed: Vec<Option<f64>> = vec![None; n];
    for w in 0..n {
        let extra_rows = extra[w].len() * rpc;
        if live_workers.contains(&w) {
            metrics.assigned_rows[w] = rows[w] + extra_rows;
            metrics.computed_rows[w] = rows[w] + extra_rows;
            let response = if extra_rows > 0 { t2[w] } else { times[w] };
            if rows[w] + extra_rows > 0 {
                metrics.response_times[w] = Some(response);
                // Speed estimation uses the phase-1 response only: a
                // reassignment host's t2 includes idle time between its
                // own finish and the cancellation deadline, which would
                // halve the *fastest* workers' estimates and destabilize
                // the next allocation.
                observed[w] = Some(rows[w] as f64 / times[w]);
            }
        } else if cancelled.contains(&w) {
            metrics.assigned_rows[w] = rows[w];
            let own_deadline = deadline_for(w);
            let elapsed = (own_deadline - input_time).max(0.0);
            let partial =
                ((sim.partial_compute_elements(w, elapsed) / cols as f64) as usize).min(rows[w]);
            metrics.computed_rows[w] = partial;
            metrics.response_times[w] = Some(own_deadline);
            observed[w] = Some(partial.max(1) as f64 / own_deadline);
        }
    }
    metrics.useful_rows = useful_rows;
    metrics.latency = t_compute + decode_time;
    metrics.decode_time = decode_time;
    debug_assert!(metrics.conserves_work());

    Ok(CodedRound {
        result,
        metrics,
        observed_speeds: observed,
        reassigned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{allocate_chunks, allocate_full};
    use s2c2_cluster::ClusterSpec;
    use s2c2_coding::mds::MdsParams;
    use s2c2_linalg::Matrix;

    fn setup(
        n: usize,
        k: usize,
        chunks: usize,
        stragglers: &[usize],
    ) -> (MdsCode, EncodedMatrix, ClusterSim, Matrix, Vector) {
        let a = Matrix::from_fn(k * chunks * 10, 6, |r, c| {
            ((r * 13 + c * 7) % 17) as f64 - 8.0
        });
        let code = MdsCode::new(MdsParams::new(n, k)).unwrap();
        let enc = code.encode(&a, chunks).unwrap();
        let spec = ClusterSpec::builder(n)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(stragglers, 0.0)
            .build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        let x = Vector::from_fn(6, |i| 1.0 + i as f64 * 0.25);
        (code, enc, sim, a, x)
    }

    #[test]
    fn full_assignment_matches_conventional_mds() {
        // 12 workers, k=10, 1 straggler: conventional MDS waits for the
        // fastest 10; the straggler and one healthy worker are wasted.
        let (code, enc, sim, a, x) = setup(12, 10, 4, &[5]);
        let assignment = allocate_full(12, 10, 4);
        let cfg = CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: false,
        };
        let round = run_coded_round(&code, &enc, &assignment, &sim, 0, &x, &cfg, None).unwrap();
        s2c2_linalg::assert_slices_close(round.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        assert!(!round.reassigned);
        // Straggler computed everything, none useful.
        let wf = round.metrics.wasted_fraction();
        assert!((wf[5] - 1.0).abs() < 1e-12, "straggler fully wasted");
        // Exactly n-k = 2 workers fully wasted.
        let fully_wasted = wf.iter().filter(|&&f| f >= 1.0 - 1e-12).count();
        assert_eq!(fully_wasted, 2);
        assert!(round.metrics.conserves_work());
    }

    #[test]
    fn exact_coverage_assignment_wastes_nothing_with_oracle_speeds() {
        let (code, enc, sim, a, x) = setup(12, 6, 12, &[2, 7]);
        // Oracle allocation: use the simulator's actual speeds.
        let assignment = allocate_chunks(sim.speeds(), 6, 12).unwrap();
        let round = run_coded_round(
            &code,
            &enc,
            &assignment,
            &sim,
            0,
            &x,
            &CodedRoundConfig::default(),
            None,
        )
        .unwrap();
        s2c2_linalg::assert_slices_close(round.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        assert_eq!(
            round.metrics.total_wasted_rows(),
            0,
            "oracle S2C2 wastes nothing"
        );
        assert!(!round.reassigned);
    }

    #[test]
    fn misprediction_triggers_reassignment_and_still_decodes() {
        // Allocation assumes equal speeds but workers 0,1 are 5x slow:
        // the timeout must fire, their chunks must be recomputed, and the
        // result must still be exact.
        let (code, enc, sim, a, x) = setup(12, 6, 12, &[0, 1]);
        let assignment = allocate_chunks(&[1.0; 12], 6, 12).unwrap();
        let round = run_coded_round(
            &code,
            &enc,
            &assignment,
            &sim,
            0,
            &x,
            &CodedRoundConfig::default(),
            None,
        )
        .unwrap();
        assert!(round.reassigned, "5x stragglers must miss the 15% deadline");
        s2c2_linalg::assert_slices_close(round.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        // Cancelled stragglers: partial work, zero useful.
        assert_eq!(round.metrics.useful_rows[0], 0);
        assert_eq!(round.metrics.useful_rows[1], 0);
        assert!(round.metrics.computed_rows[0] < round.metrics.assigned_rows[0]);
        assert!(round.metrics.conserves_work());
    }

    #[test]
    fn reassignment_disabled_waits_for_stragglers() {
        let (code, enc, sim, _a, x) = setup(12, 6, 12, &[0, 1]);
        let assignment = allocate_chunks(&[1.0; 12], 6, 12).unwrap();
        let no_reassign = CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: false,
        };
        let round_wait =
            run_coded_round(&code, &enc, &assignment, &sim, 0, &x, &no_reassign, None).unwrap();
        let round_cancel = run_coded_round(
            &code,
            &enc,
            &assignment,
            &sim,
            0,
            &x,
            &CodedRoundConfig::default(),
            None,
        )
        .unwrap();
        assert!(
            round_cancel.metrics.latency < round_wait.metrics.latency * 0.7,
            "reassignment should beat waiting: {} vs {}",
            round_cancel.metrics.latency,
            round_wait.metrics.latency
        );
    }

    #[test]
    fn observed_speeds_reflect_stragglers() {
        let (code, enc, sim, _a, x) = setup(12, 10, 4, &[3]);
        let assignment = allocate_full(12, 10, 4);
        let cfg = CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: false,
        };
        let round = run_coded_round(&code, &enc, &assignment, &sim, 0, &x, &cfg, None).unwrap();
        let speeds: Vec<f64> = round.observed_speeds.iter().map(|s| s.unwrap()).collect();
        // Straggler's observed speed must be ~5x lower than the others.
        assert!(speeds[0] / speeds[3] > 4.0);
    }

    #[test]
    fn idle_workers_have_no_observation() {
        let (code, enc, sim, _a, x) = setup(6, 3, 6, &[]);
        // Worker 5 excluded from the allocation.
        let assignment = allocate_chunks(&[1.0, 1.0, 1.0, 1.0, 1.0, 0.0], 3, 6).unwrap();
        let round = run_coded_round(
            &code,
            &enc,
            &assignment,
            &sim,
            0,
            &x,
            &CodedRoundConfig::default(),
            None,
        )
        .unwrap();
        assert!(round.observed_speeds[5].is_none());
        assert_eq!(round.metrics.assigned_rows[5], 0);
    }

    #[test]
    fn latency_includes_decode_time() {
        // Straggling systematic worker 0 forces a parity-based decode,
        // so master-side decode work is nonzero.
        let (code, enc, sim, _a, x) = setup(6, 4, 4, &[0]);
        let assignment = allocate_full(6, 4, 4);
        let cfg = CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: false,
        };
        let round = run_coded_round(&code, &enc, &assignment, &sim, 0, &x, &cfg, None).unwrap();
        assert!(round.metrics.decode_time > 0.0);
        assert!(round.metrics.latency > round.metrics.decode_time);
    }
}
