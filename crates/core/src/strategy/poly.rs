//! Polynomial-coded bilinear computation, conventional and S²C²-scheduled
//! (§5, Fig 12).
//!
//! The workload is the Hessian-style product `Aᵀ·diag(w)·A` (encoded once
//! as a polynomial-code pair). Two schedulers share the execution shape:
//!
//! * [`PolyConventional`] — every node computes its full encoded product;
//!   the master takes the fastest `a·b` responses.
//! * [`PolyS2c2`] — Algorithm 1 assigns row chunks of each node's encoded
//!   `Ã_i` proportional to predicted speed (coverage `a·b` per chunk
//!   index), with the same timeout/reassignment machinery as the MDS
//!   variant.
//!
//! Timing honours the paper's observation that the `diag(w)·B̃_i` scaling
//! pass is *not* reduced by S²C² (every node scales its full `B̃_i`), which
//! is why measured gains (19%) sit below the ideal `(n − ab)/ab`.

use crate::alloc::{allocate_chunks_with_fixed_cost, allocate_full, ChunkAssignment};
use crate::error::S2c2Error;
use crate::speed_tracker::{PredictorSource, SpeedTracker};
use s2c2_cluster::metrics::RoundMetrics;
use s2c2_cluster::ClusterSim;
use s2c2_coding::chunks::WorkerChunkResult;
use s2c2_coding::polynomial::{EncodedPair, PolyParams, PolynomialCode};
use s2c2_linalg::{Matrix, Vector};

/// Result of one bilinear iteration.
#[derive(Debug, Clone)]
pub struct BilinearOutcome {
    /// The decoded product (e.g. the Hessian), truncated to original shape.
    pub result: Matrix,
    /// Round accounting.
    pub metrics: RoundMetrics,
}

/// A scheduler for iterated polynomial-coded bilinear jobs.
pub trait BilinearStrategy: Send {
    /// Human-readable name.
    fn name(&self) -> String;

    /// Runs iteration `iteration` with middle weight vector `w`.
    ///
    /// # Errors
    ///
    /// Surfaces scheduling and decode failures.
    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        w: &Vector,
    ) -> Result<BilinearOutcome, S2c2Error>;
}

/// Shared state for the two polynomial schedulers.
struct PolyShared {
    code: PolynomialCode,
    enc: EncodedPair,
}

impl PolyShared {
    fn new(
        a_t: &Matrix,
        a: &Matrix,
        params: PolyParams,
        chunks_per_partition: usize,
    ) -> Result<Self, S2c2Error> {
        let code = PolynomialCode::new(params)?;
        let enc = code.encode_pair(a_t, a, chunks_per_partition)?;
        Ok(PolyShared { code, enc })
    }

    /// Executes a round under `assignment`; mirrors
    /// [`coded_common::run_coded_round`](crate::strategy::coded_common::run_coded_round)
    /// with the polynomial cost model (fixed scaling pass + per-chunk
    /// product) and `k = a·b`.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run_round(
        &self,
        assignment: &ChunkAssignment,
        sim: &ClusterSim,
        iteration: usize,
        w: &Vector,
        timeout_margin: f64,
        reassign: bool,
        expected_speeds: Option<&[f64]>,
    ) -> Result<(BilinearOutcome, Vec<Option<f64>>, bool), S2c2Error> {
        let n = sim.n();
        let p = self.code.params();
        let need = p.recovery_threshold();
        let layout = *self.enc.layout();
        let c = layout.row.chunks_per_partition;
        let rpc = layout.row.rows_per_chunk();
        let m = w.len(); // inner dimension
        let pcol = layout.cols_per_partition();
        let input_time = sim.transfer_time((m * 8) as u64);

        // Per-worker phase-1 completion: input + fixed diag(w)·B̃ scaling
        // (m·pcol elements) + chunk products (rows·m·pcol elements, modelled
        // as rows·(m·pcol) "row-equivalents") + reply.
        let rows: Vec<usize> = assignment.rows_per_worker(rpc);
        let row_cost_cols = m * pcol; // elements per product row
        let mut times = vec![f64::INFINITY; n];
        for wk in 0..n {
            if rows[wk] == 0 {
                continue;
            }
            times[wk] = input_time
                + sim.compute_time(wk, m, pcol) // fixed scaling pass
                + sim.compute_time(wk, rows[wk], row_cost_cols)
                + sim.transfer_time((rows[wk] * pcol * 8) as u64);
        }
        let assigned: Vec<usize> = (0..n).filter(|&wk| rows[wk] > 0).collect();
        if assigned.len() < need {
            return Err(S2c2Error::NotEnoughWorkers {
                alive: assigned.len(),
                need,
            });
        }

        // Plan-normalized §4.3 deadline: each worker's budget covers its
        // fixed diag(w) pass plus its chunk share, divided by its
        // predicted speed when scheduling adaptively (see coded_common
        // for the rationale).
        let work_of = |wk: usize| (m * pcol + rows[wk] * row_cost_cols) as f64;
        let planned: Vec<f64> = (0..n)
            .map(|wk| match expected_speeds {
                Some(p) if p[wk] > 0.0 => work_of(wk) / p[wk],
                _ => work_of(wk),
            })
            .collect();
        let mut by_time: Vec<usize> = assigned.clone();
        by_time.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
        let t_kth = times[by_time[need - 1]];
        let mean_rate: f64 = by_time[..need]
            .iter()
            .map(|&wk| times[wk] / planned[wk])
            .sum::<f64>()
            / need as f64;
        let deadline_for = |wk: usize| t_kth.max((1.0 + timeout_margin) * planned[wk] * mean_rate);

        let covers = |wk: usize, chunk: usize| assignment.chunks[wk].binary_search(&chunk).is_ok();
        let active: Vec<usize> = assigned
            .iter()
            .copied()
            .filter(|&wk| times[wk] <= deadline_for(wk))
            .collect();
        let mut cancelled: Vec<usize> = if reassign {
            assigned
                .iter()
                .copied()
                .filter(|&wk| times[wk] > deadline_for(wk))
                .collect()
        } else {
            Vec::new()
        };
        let cancel_at = cancelled
            .iter()
            .map(|&wk| deadline_for(wk))
            .fold(t_kth, f64::max);

        // Reassign deficit chunks among finished workers.
        let mut extra: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fired = false;
        if !cancelled.is_empty() {
            let mut ok = true;
            let mut candidates = active.clone();
            candidates.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
            'outer: for chunk in 0..c {
                let live = active.iter().filter(|&&wk| covers(wk, chunk)).count();
                if live >= need {
                    continue;
                }
                let mut want = need - live;
                while want > 0 {
                    let pick = candidates
                        .iter()
                        .copied()
                        .filter(|&cand| !covers(cand, chunk) && !extra[cand].contains(&chunk))
                        .min_by_key(|&cand| extra[cand].len());
                    match pick {
                        Some(cand) => {
                            extra[cand].push(chunk);
                            want -= 1;
                        }
                        None => break,
                    }
                }
                if want > 0 {
                    ok = false;
                    break 'outer;
                }
            }
            if ok {
                fired = true;
            } else {
                extra.iter_mut().for_each(Vec::clear);
                cancelled.clear();
            }
        }
        let live_workers: Vec<usize> = if cancelled.is_empty() {
            assigned.clone()
        } else {
            active.clone()
        };

        let mut t2 = vec![f64::INFINITY; n];
        for (wk, ex) in extra.iter().enumerate() {
            if !ex.is_empty() {
                let er = ex.len() * rpc;
                t2[wk] = cancel_at
                    + sim.transfer_time(64)
                    + sim.compute_time(wk, er, row_cost_cols)
                    + sim.transfer_time((er * pcol * 8) as u64);
            }
        }

        // Collection: need earliest results per chunk.
        let mut t_compute: f64 = 0.0;
        let mut chosen: Vec<Vec<usize>> = vec![Vec::new(); c];
        for (chunk, slot) in chosen.iter_mut().enumerate() {
            let mut cands: Vec<(f64, usize)> = Vec::new();
            for &wk in &live_workers {
                if covers(wk, chunk) {
                    cands.push((times[wk], wk));
                }
            }
            for (wk, ex) in extra.iter().enumerate() {
                if ex.contains(&chunk) {
                    cands.push((t2[wk], wk));
                }
            }
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            if cands.len() < need {
                return Err(S2c2Error::IterationFailed(format!(
                    "chunk {chunk}: only {} poly results",
                    cands.len()
                )));
            }
            t_compute = t_compute.max(cands[need - 1].0);
            *slot = cands[..need].iter().map(|&(_, wk)| wk).collect();
        }

        // Numeric compute + decode.
        let mut responses: Vec<WorkerChunkResult> = Vec::new();
        let mut useful_rows = vec![0usize; n];
        for (chunk, sel) in chosen.iter().enumerate() {
            for &wk in sel {
                responses.push(self.enc.worker_compute_chunk(wk, chunk, Some(w)));
                useful_rows[wk] += rpc;
            }
        }
        let result = self.code.decode_product(&layout, &responses)?;
        // Interpolation solve: need^3/3 LU + need^2 per decoded value.
        let vpc = layout.values_per_chunk() as f64;
        let nd = need as f64;
        let decode_time = sim.decode_time(c as f64 * (nd * nd * nd / 3.0 + vpc * nd * nd));

        let mut metrics = RoundMetrics::new(iteration, n);
        let mut observed: Vec<Option<f64>> = vec![None; n];
        for wk in 0..n {
            let er = extra[wk].len() * rpc;
            if live_workers.contains(&wk) {
                metrics.assigned_rows[wk] = rows[wk] + er;
                metrics.computed_rows[wk] = rows[wk] + er;
                let t = if er > 0 { t2[wk] } else { times[wk] };
                if rows[wk] + er > 0 {
                    metrics.response_times[wk] = Some(t);
                    // Speed estimation uses the phase-1 response and is
                    // work-normalized (the fixed diag(w) pass is part of
                    // the response time, so `rows/time` would report
                    // different "speeds" for equal-speed workers with
                    // different loads).
                    observed[wk] = Some(work_of(wk) / times[wk]);
                }
            } else if cancelled.contains(&wk) {
                metrics.assigned_rows[wk] = rows[wk];
                let own_deadline = deadline_for(wk);
                let elapsed = (own_deadline - input_time).max(0.0);
                let partial_elems = sim.partial_compute_elements(wk, elapsed);
                let partial = ((partial_elems / row_cost_cols as f64) as usize).min(rows[wk]);
                metrics.computed_rows[wk] = partial;
                metrics.response_times[wk] = Some(own_deadline);
                observed[wk] = Some(partial_elems.max(1.0) / own_deadline);
            }
        }
        metrics.useful_rows = useful_rows;
        metrics.latency = t_compute + decode_time;
        metrics.decode_time = decode_time;
        debug_assert!(metrics.conserves_work());

        Ok((BilinearOutcome { result, metrics }, observed, fired))
    }
}

/// Conventional polynomial-coded computation: full work on every node,
/// fastest `a·b` win.
pub struct PolyConventional {
    shared: PolyShared,
}

impl PolyConventional {
    /// Encodes the pair `(Aᵀ, A)` for Hessian computation.
    ///
    /// # Errors
    ///
    /// Propagates code/shape failures.
    pub fn new(
        a_t: &Matrix,
        a: &Matrix,
        params: PolyParams,
        chunks_per_partition: usize,
    ) -> Result<Self, S2c2Error> {
        Ok(PolyConventional {
            shared: PolyShared::new(a_t, a, params, chunks_per_partition)?,
        })
    }
}

impl BilinearStrategy for PolyConventional {
    fn name(&self) -> String {
        let p = self.shared.code.params();
        format!("poly({},{}x{})", p.n, p.a, p.b)
    }

    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        w: &Vector,
    ) -> Result<BilinearOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let p = self.shared.code.params();
        let assignment = allocate_full(
            p.n,
            p.recovery_threshold(),
            self.shared.enc.layout().row.chunks_per_partition,
        );
        let (outcome, _, _) =
            self.shared
                .run_round(&assignment, sim, iteration, w, 0.15, false, None)?;
        Ok(outcome)
    }
}

/// S²C²-scheduled polynomial-coded computation.
pub struct PolyS2c2 {
    shared: PolyShared,
    tracker: SpeedTracker,
    timeout_margin: f64,
    mispredicted_rounds: usize,
    rounds: usize,
}

impl PolyS2c2 {
    /// Encodes the pair and builds the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates code/shape failures.
    pub fn new(
        a_t: &Matrix,
        a: &Matrix,
        params: PolyParams,
        chunks_per_partition: usize,
        predictor: &PredictorSource,
    ) -> Result<Self, S2c2Error> {
        Ok(PolyS2c2 {
            shared: PolyShared::new(a_t, a, params, chunks_per_partition)?,
            tracker: SpeedTracker::new(predictor, params.n),
            timeout_margin: 0.15,
            mispredicted_rounds: 0,
            rounds: 0,
        })
    }

    /// Measured fraction of rounds where the timeout fired.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.mispredicted_rounds as f64 / self.rounds as f64
        }
    }
}

impl BilinearStrategy for PolyS2c2 {
    fn name(&self) -> String {
        let p = self.shared.code.params();
        format!("poly-s2c2({},{}x{})", p.n, p.a, p.b)
    }

    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        w: &Vector,
    ) -> Result<BilinearOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let p = self.shared.code.params();
        let layout = *self.shared.enc.layout();
        let c = layout.row.chunks_per_partition;
        let preds = self.tracker.predictions(sim);
        // Fixed cost: the diag(w) scaling pass over the full encoded B
        // partition; unit cost: one chunk's product work.
        let m = w.len() as f64;
        let pcol = layout.cols_per_partition() as f64;
        let fixed = m * pcol;
        let unit = layout.row.rows_per_chunk() as f64 * m * pcol;
        let assignment =
            allocate_chunks_with_fixed_cost(&preds, p.recovery_threshold(), c, fixed, unit)
                .unwrap_or_else(|_| allocate_full(p.n, p.recovery_threshold(), c));
        // Cold-start margin widening: see S2c2Strategy::run_iteration.
        let margin = if self.rounds == 0 {
            self.timeout_margin.max(0.35)
        } else {
            self.timeout_margin
        };
        let (outcome, observed, fired) =
            self.shared
                .run_round(&assignment, sim, iteration, w, margin, true, Some(&preds))?;
        self.rounds += 1;
        if fired {
            self.mispredicted_rounds += 1;
        }
        self.tracker.observe(&observed);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    /// Small Hessian setup: A is m×d, we compute Aᵀ diag(w) A (d×d).
    fn hessian_inputs() -> (Matrix, Matrix, Vector, Matrix) {
        let m = 30;
        let d = 18;
        let a = Matrix::from_fn(m, d, |r, c| (((r * 7 + c * 3) % 10) as f64 - 4.5) / 3.0);
        let a_t = a.transpose();
        let w = Vector::from_fn(m, |i| 0.5 + (i % 4) as f64 * 0.25);
        // Reference: A^T diag(w) A.
        let mut scaled = a.clone();
        for r in 0..m {
            let f = w.as_slice()[r];
            for v in scaled.row_mut(r) {
                *v *= f;
            }
        }
        let expect = a_t.matmul(&scaled);
        (a_t, a, w, expect)
    }

    #[test]
    fn conventional_decodes_hessian_exactly() {
        let (a_t, a, w, expect) = hessian_inputs();
        let mut s = PolyConventional::new(&a_t, &a, PolyParams::new(12, 3, 3), 2).unwrap();
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[4, 8], 0.0)
                .build(),
        );
        let out = s.run_iteration(&mut sim, 0, &w).unwrap();
        assert!(out.result.max_abs_diff(&expect) < 1e-6);
        // 12 - 9 = 3 workers wasted.
        let wasted = out
            .metrics
            .wasted_fraction()
            .iter()
            .filter(|&&f| f >= 1.0 - 1e-12)
            .count();
        assert_eq!(wasted, 3);
    }

    #[test]
    fn s2c2_decodes_hessian_exactly_with_oracle() {
        let (a_t, a, w, expect) = hessian_inputs();
        let mut s = PolyS2c2::new(
            &a_t,
            &a,
            PolyParams::new(12, 3, 3),
            6,
            &PredictorSource::Oracle,
        )
        .unwrap();
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[0], 0.0)
                .build(),
        );
        let layout_rpc = 1; // 18 rows / a=3 partitions / 6 chunks
        for iter in 0..3 {
            let out = s.run_iteration(&mut sim, iter, &w).unwrap();
            assert!(out.result.max_abs_diff(&expect) < 1e-6, "iteration {iter}");
            // Proportional allocation cannot equalize the fixed diag(w)
            // scaling pass (the paper's §7.2.3 caveat), so the 5x-slow
            // worker may still miss the deadline and waste its (tiny)
            // share — but never more than a chunk or two.
            assert!(
                out.metrics.total_wasted_rows() <= 2 * layout_rpc,
                "waste {} beyond the fixed-cost allowance",
                out.metrics.total_wasted_rows()
            );
        }
    }

    #[test]
    fn s2c2_faster_than_conventional_when_healthy() {
        let (a_t, a, w, _) = hessian_inputs();
        let params = PolyParams::new(12, 3, 3);
        let mut conv = PolyConventional::new(&a_t, &a, params, 6).unwrap();
        let mut s2c2 = PolyS2c2::new(&a_t, &a, params, 6, &PredictorSource::Oracle).unwrap();
        let spec = ClusterSpec::builder(12).compute_bound().build();
        let mut sim_a = ClusterSim::new(spec.clone());
        let mut sim_b = ClusterSim::new(spec);
        let lc = conv
            .run_iteration(&mut sim_a, 0, &w)
            .unwrap()
            .metrics
            .latency;
        let ls = s2c2
            .run_iteration(&mut sim_b, 0, &w)
            .unwrap()
            .metrics
            .latency;
        assert!(
            ls < lc,
            "S2C2 poly should beat conventional on a healthy cluster: {ls} vs {lc}"
        );
        // Gains bounded by the un-schedulable diag(w) pass: conventional /
        // s2c2 must stay below the ideal 12/9 ratio.
        assert!(lc / ls < 12.0 / 9.0 + 0.05);
    }

    #[test]
    fn s2c2_recovers_from_misprediction() {
        let (a_t, a, w, expect) = hessian_inputs();
        let mut s = PolyS2c2::new(
            &a_t,
            &a,
            PolyParams::new(12, 3, 3),
            6,
            &PredictorSource::Uniform, // always wrong about stragglers
        )
        .unwrap();
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[2, 9], 0.0)
                .build(),
        );
        let out = s.run_iteration(&mut sim, 0, &w).unwrap();
        assert!(out.result.max_abs_diff(&expect) < 1e-6);
        assert!(s.misprediction_rate() > 0.0);
    }
}
