//! Uncoded even-split baseline: every worker owns `1/n` of the rows and
//! the master waits for everyone.
//!
//! Implemented as the degenerate `(n, n)` code (identity generator, no
//! parity) over the shared coded-round engine, which gives the exact
//! "speed of the slowest node" behaviour the paper's §2 strawman has.

use crate::alloc::allocate_full;
use crate::error::S2c2Error;
use crate::strategy::coded_common::{run_coded_round, CodedRoundConfig};
use crate::strategy::{IterationOutcome, MatvecStrategy};
use s2c2_cluster::ClusterSim;
use s2c2_coding::mds::{EncodedMatrix, MdsCode, MdsParams};
use s2c2_linalg::{Matrix, Vector};

/// Uncoded, evenly partitioned, wait-for-all execution.
pub struct UncodedStrategy {
    code: MdsCode,
    enc: EncodedMatrix,
}

impl UncodedStrategy {
    /// Partitions `a` evenly over `n` workers with
    /// `chunks_per_partition`-way over-decomposition (the chunking only
    /// matters for metric granularity here).
    ///
    /// # Errors
    ///
    /// Propagates encoding failures for degenerate shapes.
    pub fn new(a: &Matrix, n: usize, chunks_per_partition: usize) -> Result<Self, S2c2Error> {
        let code = MdsCode::new(MdsParams::new(n, n))?;
        let enc = code.encode(a, chunks_per_partition)?;
        Ok(UncodedStrategy { code, enc })
    }
}

impl MatvecStrategy for UncodedStrategy {
    fn name(&self) -> String {
        "uncoded".into()
    }

    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        x: &Vector,
    ) -> Result<IterationOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let n = self.code.params().n;
        let assignment = allocate_full(n, n, self.enc.layout().chunks_per_partition);
        let cfg = CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: false, // plain uncoded has no recovery mechanism
        };
        let round = run_coded_round(
            &self.code,
            &self.enc,
            &assignment,
            sim,
            iteration,
            x,
            &cfg,
            None,
        )?;
        Ok(IterationOutcome {
            result: round.result,
            metrics: round.metrics,
        })
    }

    fn storage_bytes_per_worker(&self) -> u64 {
        self.enc.bytes_per_worker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    fn data() -> (Matrix, Vector) {
        let a = Matrix::from_fn(240, 5, |r, c| ((r + 2 * c) % 9) as f64 - 4.0);
        let x = Vector::from_fn(5, |i| 0.5 + i as f64);
        (a, x)
    }

    #[test]
    fn computes_exact_product() {
        let (a, x) = data();
        let mut s = UncodedStrategy::new(&a, 6, 4).unwrap();
        let spec = ClusterSpec::builder(6).build();
        let mut sim = ClusterSim::new(spec);
        let out = s.run_iteration(&mut sim, 0, &x).unwrap();
        s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn latency_tracks_slowest_worker() {
        let (a, x) = data();
        let mut s = UncodedStrategy::new(&a, 6, 4).unwrap();
        // No straggler run.
        let mut fast_sim = ClusterSim::new(ClusterSpec::builder(6).compute_bound().build());
        let fast = s.run_iteration(&mut fast_sim, 0, &x).unwrap();
        // One 5x straggler: uncoded must be ~5x slower.
        let mut slow_sim = ClusterSim::new(
            ClusterSpec::builder(6)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[2], 0.0)
                .build(),
        );
        let slow = s.run_iteration(&mut slow_sim, 0, &x).unwrap();
        let ratio = slow.metrics.latency / fast.metrics.latency;
        assert!(ratio > 3.5, "uncoded gated on the straggler: ratio {ratio}");
    }

    #[test]
    fn no_waste_when_all_results_used() {
        let (a, x) = data();
        let mut s = UncodedStrategy::new(&a, 4, 3).unwrap();
        let mut sim = ClusterSim::new(ClusterSpec::builder(4).build());
        let out = s.run_iteration(&mut sim, 0, &x).unwrap();
        assert_eq!(out.metrics.total_wasted_rows(), 0);
    }

    #[test]
    fn storage_is_one_nth() {
        let (a, _x) = data();
        let s = UncodedStrategy::new(&a, 6, 4).unwrap();
        assert_eq!(s.storage_bytes_per_worker(), a.payload_bytes() / 6);
    }
}
