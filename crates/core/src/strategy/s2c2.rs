//! Slack Squeeze Coded Computing — the paper's contribution (§4).
//!
//! Data is encoded **once** with a conservative `(n, k)` code; every
//! iteration the scheduler:
//!
//! 1. obtains per-worker speed estimates from the [`SpeedTracker`]
//!    (LSTM/ARIMA forecasts, last-value, uniform, or the oracle),
//! 2. runs Algorithm 1 to assign each worker a subset of its own coded
//!    partition's chunks — proportional to speed, every chunk index
//!    covered by exactly `k` workers (*basic* mode instead excludes
//!    detected stragglers and splits evenly among the rest),
//! 3. executes the round with the §4.3 timeout: if a worker misses
//!    `(1 + margin) ×` the mean response of the first `k` finishers, its
//!    chunks are recomputed by finished workers (who already hold the
//!    coded data — no data movement, ever),
//! 4. feeds observed speeds back to the predictors.
//!
//! Robustness (§4.4): if predictions fail so badly that reassignment
//! cannot rebuild coverage, the round degrades to conventional coded
//! computing — correctness never depends on prediction quality.

use crate::alloc::{allocate_chunks, allocate_chunks_basic, allocate_full, ChunkAssignment};
use crate::error::S2c2Error;
use crate::speed_tracker::{PredictorSource, SpeedTracker};
use crate::strategy::coded_common::{run_coded_round, CodedRoundConfig};
use crate::strategy::{IterationOutcome, MatvecStrategy};
use s2c2_cluster::ClusterSim;
use s2c2_coding::mds::{EncodedMatrix, MdsCode, MdsParams};
use s2c2_linalg::{Matrix, Vector};

/// Which S²C² variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum S2c2Mode {
    /// §4.1: stragglers excluded, equal work among the rest.
    Basic,
    /// §4.2: Algorithm 1 on (predicted) relative speeds.
    General,
}

/// The S²C² scheduler over an `(n, k)`-MDS-coded matrix.
pub struct S2c2Strategy {
    code: MdsCode,
    enc: EncodedMatrix,
    tracker: SpeedTracker,
    mode: S2c2Mode,
    timeout_margin: f64,
    /// Basic mode: a worker is a straggler when its estimated speed falls
    /// below this fraction of the median estimate.
    straggler_threshold: f64,
    /// Count of rounds in which the timeout machinery fired.
    mispredicted_rounds: usize,
    rounds: usize,
}

impl std::fmt::Debug for S2c2Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("S2c2Strategy")
            .field("params", &self.code.params())
            .field("mode", &self.mode)
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl S2c2Strategy {
    /// Encodes `a` and builds the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates invalid code parameters or degenerate shapes.
    pub fn new(
        a: &Matrix,
        params: MdsParams,
        chunks_per_partition: usize,
        mode: S2c2Mode,
        predictor: &PredictorSource,
        cluster_workers: usize,
    ) -> Result<Self, S2c2Error> {
        if cluster_workers != params.n {
            return Err(S2c2Error::InvalidConfig(format!(
                "code has n = {} but cluster has {cluster_workers} workers",
                params.n
            )));
        }
        let code = MdsCode::new(params)?;
        let enc = code.encode(a, chunks_per_partition)?;
        Ok(S2c2Strategy {
            code,
            enc,
            tracker: SpeedTracker::new(predictor, params.n),
            mode,
            timeout_margin: 0.15,
            straggler_threshold: 0.5,
            mispredicted_rounds: 0,
            rounds: 0,
        })
    }

    /// Overrides the §4.3 timeout margin (default 0.15, from the paper's
    /// observed 16.7% prediction error).
    ///
    /// # Panics
    ///
    /// Panics on a negative margin.
    pub fn set_timeout_margin(&mut self, margin: f64) {
        assert!(margin >= 0.0, "timeout margin must be non-negative");
        self.timeout_margin = margin;
    }

    /// Fraction of rounds in which the timeout fired (the measured
    /// mis-prediction rate of §7.2).
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.mispredicted_rounds as f64 / self.rounds as f64
        }
    }

    /// The code parameters in use.
    #[must_use]
    pub fn params(&self) -> MdsParams {
        self.code.params()
    }

    fn build_assignment(&self, preds: &[f64]) -> ChunkAssignment {
        let p = self.code.params();
        let c = self.enc.layout().chunks_per_partition;
        let attempt = match self.mode {
            S2c2Mode::General => allocate_chunks(preds, p.k, c),
            S2c2Mode::Basic => {
                let mut sorted: Vec<f64> = preds.to_vec();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let median = sorted[sorted.len() / 2];
                let available: Vec<bool> = preds
                    .iter()
                    .map(|&s| s >= self.straggler_threshold * median)
                    .collect();
                allocate_chunks_basic(&available, p.k, c)
            }
        };
        // §4.4 fallback: an unschedulable prediction state (fewer than k
        // workers believed alive) degrades to conventional coded computing
        // rather than failing.
        attempt.unwrap_or_else(|_| allocate_full(p.n, p.k, c))
    }
}

impl MatvecStrategy for S2c2Strategy {
    fn name(&self) -> String {
        let p = self.code.params();
        let mode = match self.mode {
            S2c2Mode::Basic => "basic",
            S2c2Mode::General => "general",
        };
        format!("s2c2-{mode}({},{})", p.n, p.k)
    }

    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        x: &Vector,
    ) -> Result<IterationOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let preds = self.tracker.predictions(sim);
        let assignment = self.build_assignment(&preds);
        // Cold start: before any observation the "prediction" is a blind
        // uniform guess, so judging workers against the 15% margin would
        // cancel every slightly-below-par node and churn. Until the first
        // round completes, the margin is widened to the a-priori
        // non-straggler speed spread (~35%); genuine stragglers (5x) are
        // still far outside it.
        let margin = if self.rounds == 0 {
            self.timeout_margin.max(0.35)
        } else {
            self.timeout_margin
        };
        let cfg = CodedRoundConfig {
            timeout_margin: margin,
            reassign: true,
        };
        // Basic mode plans on its equal-speed assumption; general mode on
        // the actual predictions.
        let expected: Option<&[f64]> = match self.mode {
            S2c2Mode::Basic => None,
            S2c2Mode::General => Some(&preds),
        };
        let round = run_coded_round(
            &self.code,
            &self.enc,
            &assignment,
            sim,
            iteration,
            x,
            &cfg,
            expected,
        )?;
        self.rounds += 1;
        if round.reassigned {
            self.mispredicted_rounds += 1;
        }
        self.tracker.observe(&round.observed_speeds);
        Ok(IterationOutcome {
            result: round.result,
            metrics: round.metrics,
        })
    }

    fn storage_bytes_per_worker(&self) -> u64 {
        self.enc.bytes_per_worker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    fn data() -> (Matrix, Vector) {
        let a = Matrix::from_fn(720, 6, |r, c| ((r * 3 + c * 5) % 11) as f64 - 5.0);
        let x = Vector::from_fn(6, |i| 1.0 + 0.3 * i as f64);
        (a, x)
    }

    fn strategy(
        params: MdsParams,
        mode: S2c2Mode,
        predictor: PredictorSource,
    ) -> (S2c2Strategy, Matrix, Vector) {
        let (a, x) = data();
        let s = S2c2Strategy::new(&a, params, 12, mode, &predictor, params.n).unwrap();
        (s, a, x)
    }

    #[test]
    fn oracle_general_is_exact_and_wasteless() {
        let (mut s, a, x) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::General,
            PredictorSource::Oracle,
        );
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[1, 7], 0.0)
                .build(),
        );
        for iter in 0..4 {
            let out = s.run_iteration(&mut sim, iter, &x).unwrap();
            s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
            assert_eq!(out.metrics.total_wasted_rows(), 0, "iteration {iter}");
        }
        assert_eq!(s.misprediction_rate(), 0.0);
    }

    #[test]
    fn last_value_adapts_after_first_iteration() {
        // Iteration 0 predicts uniform speeds and must reassign (the 5x
        // stragglers miss the deadline); from iteration 1 on, predictions
        // reflect reality and no reassignments happen.
        let (mut s, a, x) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::General,
            PredictorSource::LastValue,
        );
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[0, 5], 0.0)
                .build(),
        );
        let first = s.run_iteration(&mut sim, 0, &x).unwrap();
        s2c2_linalg::assert_slices_close(first.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        assert!(s.misprediction_rate() > 0.0, "iteration 0 must mispredict");

        let mut later_latencies = Vec::new();
        for iter in 1..6 {
            let out = s.run_iteration(&mut sim, iter, &x).unwrap();
            s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
            later_latencies.push(out.metrics.latency);
        }
        // Adapted iterations are faster than the mispredicted first one.
        let mean_later = later_latencies.iter().sum::<f64>() / later_latencies.len() as f64;
        assert!(
            mean_later < first.metrics.latency,
            "adaptation should reduce latency: {mean_later} vs {}",
            first.metrics.latency
        );
    }

    #[test]
    fn basic_mode_excludes_stragglers_after_detection() {
        let (mut s, a, x) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::Basic,
            PredictorSource::LastValue,
        );
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(&[3], 0.0)
                .build(),
        );
        // Warm up detection.
        let _ = s.run_iteration(&mut sim, 0, &x).unwrap();
        let out = s.run_iteration(&mut sim, 1, &x).unwrap();
        s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        assert_eq!(
            out.metrics.assigned_rows[3], 0,
            "detected straggler sits idle"
        );
        // Work per active worker ~= D/11 rows (720 padded/11, chunked).
        let active_rows: Vec<usize> = (0..12)
            .filter(|&w| w != 3)
            .map(|w| out.metrics.assigned_rows[w])
            .collect();
        let max = *active_rows.iter().max().unwrap();
        let min = *active_rows.iter().min().unwrap();
        assert!(
            max - min <= s.enc.layout().rows_per_chunk(),
            "even split in basic mode"
        );
    }

    #[test]
    fn general_beats_basic_under_speed_variation() {
        // With ±20% speed variation and no hard stragglers, general S2C2
        // exploits the variation that basic ignores (the Fig 6 gap).
        let spec = ClusterSpec::builder(12)
            .compute_bound()
            .stragglers(&[], 0.2)
            .build();
        let (mut gen, _a, x) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::General,
            PredictorSource::Oracle,
        );
        let (mut bas, _a2, _x2) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::Basic,
            PredictorSource::Oracle,
        );
        let mut sim_g = ClusterSim::new(spec.clone());
        let mut sim_b = ClusterSim::new(spec);
        let mut lg = 0.0;
        let mut lb = 0.0;
        for iter in 0..8 {
            lg += gen
                .run_iteration(&mut sim_g, iter, &x)
                .unwrap()
                .metrics
                .latency;
            lb += bas
                .run_iteration(&mut sim_b, iter, &x)
                .unwrap()
                .metrics
                .latency;
        }
        assert!(
            lg < lb,
            "general ({lg}) should beat basic ({lb}) under variation"
        );
    }

    #[test]
    fn robust_to_every_worker_mispredicted() {
        // Uniform predictor + volatile cluster: rounds keep decoding
        // correctly no matter how wrong the predictions are (§4.4).
        let (mut s, a, x) = strategy(
            MdsParams::new(10, 7),
            S2c2Mode::General,
            PredictorSource::Uniform,
        );
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(10)
                .compute_bound()
                .seed(3)
                .cloud(&s2c2_trace::CloudTraceConfig::volatile())
                .build(),
        );
        for iter in 0..6 {
            let out = s.run_iteration(&mut sim, iter, &x).unwrap();
            s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        }
    }

    #[test]
    fn work_scales_inversely_with_active_workers() {
        // The headline formula: with s active workers each does ~D/s rows.
        let (mut s, _a, x) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::Basic,
            PredictorSource::Oracle,
        );
        for stragglers in [0usize, 2, 4] {
            let ids: Vec<usize> = (0..stragglers).collect();
            let mut sim = ClusterSim::new(
                ClusterSpec::builder(12)
                    .straggler_slowdown(6.0)
                    .stragglers(&ids, 0.0)
                    .build(),
            );
            let out = s.run_iteration(&mut sim, 0, &x).unwrap();
            let active = 12 - stragglers;
            let expect = 720.0 / active as f64;
            for w in stragglers..12 {
                let got = out.metrics.assigned_rows[w] as f64;
                assert!(
                    (got - expect).abs() <= s.enc.layout().rows_per_chunk() as f64,
                    "{stragglers} stragglers: worker {w} rows {got}, expected ~{expect}"
                );
            }
        }
    }

    #[test]
    fn mismatched_cluster_size_rejected() {
        let (a, _) = data();
        let err = S2c2Strategy::new(
            &a,
            MdsParams::new(12, 6),
            4,
            S2c2Mode::General,
            &PredictorSource::Uniform,
            10,
        )
        .unwrap_err();
        assert!(matches!(err, S2c2Error::InvalidConfig(_)));
    }

    #[test]
    fn name_reflects_mode_and_params() {
        let (s, _, _) = strategy(
            MdsParams::new(12, 6),
            S2c2Mode::General,
            PredictorSource::Uniform,
        );
        assert_eq!(s.name(), "s2c2-general(12,6)");
    }
}
