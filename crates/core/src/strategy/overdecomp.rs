//! Charm++-style over-decomposition baseline (§7.2).
//!
//! The data is split into `factor · n` small partitions with an aggregate
//! replication of `replication` (e.g. 1.42× to match a (10,7) code's
//! storage). Every iteration the master:
//!
//! 1. apportions partitions to workers proportionally to predicted speeds
//!    (same prediction machinery as S²C²),
//! 2. prefers partitions a worker already *holds*; any partition computed
//!    by a worker without a local copy is moved first — charged to both
//!    latency and `rebalance_bytes`, and the copy then stays cached
//!    (effective storage grows, which is what Fig 3 measures),
//! 3. waits for **all** partitions (uncoded — nothing can be dropped),
//!    with the same timeout-based late-worker rescue as S²C² except that
//!    rescued partitions must again be *moved* to their new worker.
//!
//! At low mis-prediction this matches S²C²'s latency (it uses all `n`
//! workers); at high mis-prediction the rescue data movement puts it
//! behind — exactly the Fig 8 vs Fig 10 contrast.

use crate::error::S2c2Error;
use crate::speed_tracker::{PredictorSource, SpeedTracker};
use crate::strategy::{IterationOutcome, MatvecStrategy};
use s2c2_cluster::metrics::RoundMetrics;
use s2c2_cluster::ClusterSim;
use s2c2_linalg::{Matrix, Vector};

/// Over-decomposition with prediction-driven load balancing.
pub struct OverDecompositionStrategy {
    partitions: Vec<Matrix>,
    starts: Vec<usize>,
    /// `holders[p]` = workers currently holding a copy of partition `p`
    /// (grows as rebalancing moves data).
    holders: Vec<Vec<usize>>,
    n: usize,
    tracker: SpeedTracker,
    timeout_margin: f64,
    rows: usize,
}

impl OverDecompositionStrategy {
    /// Builds the baseline: `factor · n` partitions, `replication`-fold
    /// total storage, predictions from `predictor`.
    ///
    /// # Errors
    ///
    /// [`S2c2Error::InvalidConfig`] on a degenerate factor/replication or
    /// an empty matrix.
    pub fn new(
        a: &Matrix,
        n: usize,
        factor: usize,
        replication: f64,
        predictor: &PredictorSource,
        seed: u64,
    ) -> Result<Self, S2c2Error> {
        if factor == 0 {
            return Err(S2c2Error::InvalidConfig("factor must be positive".into()));
        }
        if !(1.0..=n as f64).contains(&replication) {
            return Err(S2c2Error::InvalidConfig(format!(
                "replication {replication} out of [1, n]"
            )));
        }
        if a.rows() == 0 {
            return Err(S2c2Error::InvalidConfig("matrix has zero rows".into()));
        }
        let parts = factor * n;
        let base = a.rows() / parts;
        let extra = a.rows() % parts;
        let mut starts = Vec::with_capacity(parts + 1);
        starts.push(0);
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            starts.push(starts[p] + size);
        }
        let partitions: Vec<Matrix> = (0..parts)
            .map(|p| a.row_block(starts[p], starts[p + 1]))
            .collect();

        // Placement: primary round-robin; additional copies for the first
        // (replication - 1) * parts partitions, offset round-robin.
        let extra_copies = ((replication - 1.0) * parts as f64).round() as usize;
        let stride = (seed as usize % n.saturating_sub(1).max(1)) + 1;
        let mut holders: Vec<Vec<usize>> = (0..parts).map(|p| vec![p % n]).collect();
        for (i, h) in holders.iter_mut().enumerate().take(extra_copies.min(parts)) {
            let second = (i % n + stride) % n;
            if !h.contains(&second) {
                h.push(second);
            }
        }

        Ok(OverDecompositionStrategy {
            partitions,
            starts,
            holders,
            n,
            tracker: SpeedTracker::new(predictor, n),
            timeout_margin: 0.15,
            rows: a.rows(),
        })
    }

    fn part_rows(&self, p: usize) -> usize {
        self.starts[p + 1] - self.starts[p]
    }
}

impl MatvecStrategy for OverDecompositionStrategy {
    fn name(&self) -> String {
        "over-decomposition".into()
    }

    #[allow(clippy::too_many_lines)]
    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        x: &Vector,
    ) -> Result<IterationOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let n = self.n;
        if sim.n() != n {
            return Err(S2c2Error::InvalidConfig(format!(
                "strategy built for {n} workers, cluster has {}",
                sim.n()
            )));
        }
        let parts = self.partitions.len();
        let cols = x.len();
        let input_time = sim.transfer_time((cols * 8) as u64);
        let preds = self.tracker.predictions(sim);

        // Apportion partition counts ∝ predicted speed; leftovers go
        // makespan-greedily to whoever finishes earliest after the
        // increment (same rationale as the S2C2 allocator: an extra
        // partition on a slow worker costs 1/speed).
        let sum: f64 = preds.iter().sum();
        let mut counts = vec![0usize; n];
        let mut assigned = 0usize;
        for w in 0..n {
            let ideal = preds[w] / sum * parts as f64;
            counts[w] = ideal.floor() as usize;
            assigned += counts[w];
        }
        for _ in 0..parts - assigned {
            let pick = (0..n)
                .min_by(|&a, &b| {
                    let fa = (counts[a] + 1) as f64 / preds[a].max(1e-9);
                    let fb = (counts[b] + 1) as f64 / preds[b].max(1e-9);
                    fa.total_cmp(&fb).then(a.cmp(&b))
                })
                // s2c2-allow: panic-reachability -- the strategy is constructed with n >= 1 workers
                .expect("n > 0");
            counts[pick] += 1;
        }

        // Concrete partition placement: locality first.
        let mut owner = vec![usize::MAX; parts];
        let mut load = vec![0usize; n];
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| preds[b].total_cmp(&preds[a]).then(a.cmp(&b)));
        // Pass 1a: primary copies — each partition to its primary holder
        // while that worker has capacity (avoids stealing another
        // worker's primaries through a secondary copy).
        for (p, slot) in owner.iter_mut().enumerate() {
            let primary = self.holders[p][0];
            if load[primary] < counts[primary] {
                *slot = primary;
                load[primary] += 1;
            }
        }
        // Pass 1b: any remaining local copy.
        for &w in &order {
            for (p, slot) in owner.iter_mut().enumerate() {
                if load[w] >= counts[w] {
                    break;
                }
                if *slot == usize::MAX && self.holders[p].contains(&w) {
                    *slot = w;
                    load[w] += 1;
                }
            }
        }
        // Pass 2: remaining partitions go anywhere (data moves).
        let mut moved_bytes_per_worker = vec![0u64; n];
        for (p, slot) in owner.iter_mut().enumerate() {
            if *slot != usize::MAX {
                continue;
            }
            let w = *order
                .iter()
                .find(|&&w| load[w] < counts[w])
                // s2c2-allow: panic-reachability -- counts sum to parts, so an under-loaded worker exists
                .expect("counts sum to parts");
            *slot = w;
            load[w] += 1;
            moved_bytes_per_worker[w] += self.partitions[p].payload_bytes();
            self.holders[p].push(w); // the copy stays cached
        }

        // Phase-1 completion per worker: input + moves + compute + reply.
        let mut rows_of = vec![0usize; n];
        for p in 0..parts {
            rows_of[owner[p]] += self.part_rows(p);
        }
        let mut times = vec![f64::INFINITY; n];
        for w in 0..n {
            if rows_of[w] == 0 && moved_bytes_per_worker[w] == 0 {
                continue;
            }
            times[w] = input_time
                + sim.transfer_time(moved_bytes_per_worker[w])
                + sim.compute_time(w, rows_of[w].max(1), cols)
                + sim.transfer_time((rows_of[w] * 8) as u64);
        }

        let mut metrics = RoundMetrics::new(iteration, n);
        metrics.rebalance_bytes = moved_bytes_per_worker.iter().sum();
        metrics.assigned_rows.copy_from_slice(&rows_of);

        // Timeout rescue: like S2C2, plan-normalized — each worker is
        // judged against its own allocation divided by its predicted
        // speed, calibrated on the fastest 70% of responses. A correctly
        // predicted slower worker is NOT rescued (rescue moves data here,
        // so false positives are doubly expensive).
        let workers_with_work: Vec<usize> = (0..n).filter(|&w| times[w].is_finite()).collect();
        let planned: Vec<f64> = (0..n)
            .map(|w| {
                if preds[w] > 0.0 {
                    rows_of[w].max(1) as f64 / preds[w]
                } else {
                    rows_of[w].max(1) as f64
                }
            })
            .collect();
        let mut by_time = workers_with_work.clone();
        by_time.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
        let k_obs = (by_time.len() * 7 / 10).max(1);
        let t_kobs = times[by_time[k_obs - 1]];
        let mean_rate: f64 = by_time[..k_obs]
            .iter()
            .map(|&w| times[w] / planned[w])
            .sum::<f64>()
            / k_obs as f64;
        let deadline_for =
            |w: usize| t_kobs.max((1.0 + self.timeout_margin) * planned[w] * mean_rate);

        let mut final_time = 0.0_f64;
        let mut observed: Vec<Option<f64>> = vec![None; n];
        let lagging: Vec<usize> = (0..n)
            .filter(|&w| times[w].is_finite() && times[w] > deadline_for(w))
            .collect();
        let mut rescue_time = vec![0.0_f64; n];
        let mut rescue_rows = vec![0usize; n];
        if !lagging.is_empty() {
            // Move every lagging worker's partitions to finished workers,
            // fastest first.
            let deadline = lagging
                .iter()
                .map(|&w| deadline_for(w))
                .fold(t_kobs, f64::max);
            let mut hosts: Vec<usize> = (0..n)
                .filter(|&w| times[w].is_finite() && times[w] <= deadline_for(w))
                .collect();
            hosts.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
            if !hosts.is_empty() {
                for (i, &slow) in lagging.iter().enumerate() {
                    let host = hosts[i % hosts.len()];
                    // Partitions owned by the slow worker move to the host.
                    let mut bytes = 0u64;
                    let mut rows = 0usize;
                    for (p, &o) in owner.iter().enumerate() {
                        if o == slow {
                            bytes += self.partitions[p].payload_bytes();
                            rows += self.part_rows(p);
                            if !self.holders[p].contains(&host) {
                                self.holders[p].push(host);
                            }
                        }
                    }
                    metrics.rebalance_bytes += bytes;
                    rescue_rows[host] += rows;
                    let done = deadline
                        + sim.transfer_time(bytes)
                        + sim.compute_time(host, rows.max(1), cols)
                        + sim.transfer_time((rows * 8) as u64);
                    rescue_time[host] = rescue_time[host].max(done);
                    debug_assert!(rescue_time[host].is_finite());
                    // Slow worker cancelled: partial work wasted.
                    let elapsed = (deadline - input_time).max(0.0);
                    let partial = ((sim.partial_compute_elements(slow, elapsed) / cols as f64)
                        as usize)
                        .min(rows_of[slow]);
                    metrics.computed_rows[slow] = partial;
                    metrics.useful_rows[slow] = 0;
                    observed[slow] = Some(partial.max(1) as f64 / deadline);
                    metrics.response_times[slow] = Some(deadline);
                    times[slow] = f64::INFINITY; // no longer awaited
                }
            }
        }

        for w in 0..n {
            if times[w].is_finite() {
                metrics.computed_rows[w] = rows_of[w] + rescue_rows[w];
                metrics.useful_rows[w] = rows_of[w] + rescue_rows[w];
                metrics.assigned_rows[w] += rescue_rows[w];
                let t = if rescue_rows[w] > 0 {
                    rescue_time[w]
                } else {
                    times[w]
                };
                final_time = final_time.max(t);
                if rows_of[w] + rescue_rows[w] > 0 {
                    observed[w] = Some((rows_of[w] + rescue_rows[w]) as f64 / t);
                    metrics.response_times[w] = Some(t);
                }
            }
        }
        metrics.latency = final_time;
        debug_assert!(metrics.conserves_work());
        self.tracker.observe(&observed);

        // Numeric result: concatenate partition products in order.
        let mut out = Vec::with_capacity(self.rows);
        for p in 0..parts {
            out.extend_from_slice(self.partitions[p].matvec(x).as_slice());
        }
        Ok(IterationOutcome {
            result: Vector::from(out),
            metrics,
        })
    }

    fn storage_bytes_per_worker(&self) -> u64 {
        // Current holdings averaged over workers (grows with migrations).
        let total: u64 = self
            .holders
            .iter()
            .enumerate()
            .map(|(p, h)| self.partitions[p].payload_bytes() * h.len() as u64)
            .sum();
        total / self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    fn data() -> (Matrix, Vector) {
        let a = Matrix::from_fn(560, 5, |r, c| ((r * 3 + c * 9) % 12) as f64 - 5.0);
        let x = Vector::from_fn(5, |i| 1.0 + i as f64 * 0.5);
        (a, x)
    }

    fn build(a: &Matrix) -> OverDecompositionStrategy {
        OverDecompositionStrategy::new(a, 10, 4, 1.42, &PredictorSource::LastValue, 3).unwrap()
    }

    #[test]
    fn exact_result() {
        let (a, x) = data();
        let mut s = build(&a);
        let mut sim = ClusterSim::new(ClusterSpec::builder(10).compute_bound().build());
        let out = s.run_iteration(&mut sim, 0, &x).unwrap();
        s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }

    #[test]
    fn homogeneous_cluster_no_movement_after_warmup() {
        let (a, x) = data();
        let mut s = build(&a);
        let mut sim = ClusterSim::new(ClusterSpec::builder(10).compute_bound().build());
        let first = s.run_iteration(&mut sim, 0, &x).unwrap();
        let second = s.run_iteration(&mut sim, 1, &x).unwrap();
        // Uniform speeds + round-robin placement: primaries suffice.
        assert_eq!(first.metrics.rebalance_bytes, 0);
        assert_eq!(second.metrics.rebalance_bytes, 0);
        assert_eq!(second.metrics.total_wasted_rows(), 0);
    }

    #[test]
    fn speed_skew_causes_data_movement() {
        let (a, x) = data();
        let mut s = build(&a);
        // Half the cluster at 40% speed: rebalancing must move partitions
        // to the fast half once predictions adapt.
        let mut builder = ClusterSpec::builder(10)
            .compute_bound()
            .straggler_slowdown(2.5);
        builder = builder.stragglers(&[5, 6, 7, 8, 9], 0.0);
        let mut sim = ClusterSim::new(builder.build());
        let mut total_moved = 0;
        for iter in 0..4 {
            let out = s.run_iteration(&mut sim, iter, &x).unwrap();
            s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-9);
            total_moved += out.metrics.rebalance_bytes;
        }
        assert!(total_moved > 0, "skewed speeds must trigger movement");
    }

    #[test]
    fn storage_grows_with_migrations() {
        let (a, x) = data();
        let mut s = build(&a);
        let before = s.storage_bytes_per_worker();
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(10)
                .compute_bound()
                .straggler_slowdown(3.0)
                .stragglers(&[0, 1, 2, 3], 0.0)
                .build(),
        );
        for iter in 0..5 {
            let _ = s.run_iteration(&mut sim, iter, &x).unwrap();
        }
        let after = s.storage_bytes_per_worker();
        assert!(
            after > before,
            "cached copies accumulate: {before} -> {after}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let (a, _) = data();
        assert!(
            OverDecompositionStrategy::new(&a, 10, 0, 1.4, &PredictorSource::Uniform, 0).is_err()
        );
        assert!(
            OverDecompositionStrategy::new(&a, 10, 4, 0.5, &PredictorSource::Uniform, 0).is_err()
        );
        assert!(
            OverDecompositionStrategy::new(&a, 10, 4, 100.0, &PredictorSource::Uniform, 0).is_err()
        );
    }
}
