//! Conventional `(n, k)`-MDS coded computation (Lee et al.), the paper's
//! primary coded baseline.
//!
//! Every worker computes its *entire* coded partition every iteration; the
//! master uses the fastest `k` responses and ignores the rest. Robust to
//! `n − k` stragglers, but (a) each worker does `1/k`-of-the-data work
//! regardless of cluster health, and (b) the slowest `n − k` workers'
//! effort is always wasted — the two inefficiencies S²C² removes.

use crate::alloc::allocate_full;
use crate::error::S2c2Error;
use crate::strategy::coded_common::{run_coded_round, CodedRoundConfig};
use crate::strategy::{IterationOutcome, MatvecStrategy};
use s2c2_cluster::ClusterSim;
use s2c2_coding::mds::{EncodedMatrix, MdsCode, MdsParams};
use s2c2_linalg::{Matrix, Vector};

/// Conventional MDS coded computation.
pub struct MdsStrategy {
    code: MdsCode,
    enc: EncodedMatrix,
}

impl MdsStrategy {
    /// Encodes `a` with an `(n, k)` code and
    /// `chunks_per_partition`-way chunking.
    ///
    /// # Errors
    ///
    /// Propagates invalid code parameters or degenerate shapes.
    pub fn new(
        a: &Matrix,
        params: MdsParams,
        chunks_per_partition: usize,
    ) -> Result<Self, S2c2Error> {
        let code = MdsCode::new(params)?;
        let enc = code.encode(a, chunks_per_partition)?;
        Ok(MdsStrategy { code, enc })
    }

    /// The code parameters in use.
    #[must_use]
    pub fn params(&self) -> MdsParams {
        self.code.params()
    }
}

impl MatvecStrategy for MdsStrategy {
    fn name(&self) -> String {
        let p = self.code.params();
        format!("mds({},{})", p.n, p.k)
    }

    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        x: &Vector,
    ) -> Result<IterationOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let p = self.code.params();
        let assignment = allocate_full(p.n, p.k, self.enc.layout().chunks_per_partition);
        let cfg = CodedRoundConfig {
            timeout_margin: 0.15,
            reassign: false, // conventional coded computing never reassigns
        };
        let round = run_coded_round(
            &self.code,
            &self.enc,
            &assignment,
            sim,
            iteration,
            x,
            &cfg,
            None,
        )?;
        Ok(IterationOutcome {
            result: round.result,
            metrics: round.metrics,
        })
    }

    fn storage_bytes_per_worker(&self) -> u64 {
        self.enc.bytes_per_worker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    fn data() -> (Matrix, Vector) {
        let a = Matrix::from_fn(600, 8, |r, c| ((r * 5 + c * 11) % 13) as f64 - 6.0);
        let x = Vector::from_fn(8, |i| (i as f64 * 0.4).sin() + 1.2);
        (a, x)
    }

    fn run_with_stragglers(params: MdsParams, stragglers: &[usize]) -> IterationOutcome {
        let (a, x) = data();
        let mut s = MdsStrategy::new(&a, params, 5).unwrap();
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(params.n)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(stragglers, 0.0)
                .build(),
        );
        let out = s.run_iteration(&mut sim, 0, &x).unwrap();
        s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
        out
    }

    #[test]
    fn tolerates_up_to_n_minus_k_stragglers_flat() {
        // (12,10): latency with 0, 1, 2 stragglers should be ~equal.
        let base = run_with_stragglers(MdsParams::new(12, 10), &[])
            .metrics
            .latency;
        let one = run_with_stragglers(MdsParams::new(12, 10), &[0])
            .metrics
            .latency;
        let two = run_with_stragglers(MdsParams::new(12, 10), &[0, 1])
            .metrics
            .latency;
        assert!(
            (one / base - 1.0).abs() < 0.05,
            "1 straggler: {one} vs {base}"
        );
        assert!(
            (two / base - 1.0).abs() < 0.05,
            "2 stragglers: {two} vs {base}"
        );
    }

    #[test]
    fn collapses_past_tolerance() {
        // (12,10) with 3 stragglers: must wait for a straggler -> ~5x.
        let base = run_with_stragglers(MdsParams::new(12, 10), &[])
            .metrics
            .latency;
        let three = run_with_stragglers(MdsParams::new(12, 10), &[0, 1, 2])
            .metrics
            .latency;
        assert!(
            three / base > 3.5,
            "3 stragglers blow up (12,10): {}",
            three / base
        );
    }

    #[test]
    fn conservative_code_pays_overhead_when_healthy() {
        // (12,6) does 1/6-of-data work per worker vs (12,10)'s 1/10.
        let relaxed = run_with_stragglers(MdsParams::new(12, 10), &[])
            .metrics
            .latency;
        let conservative = run_with_stragglers(MdsParams::new(12, 6), &[])
            .metrics
            .latency;
        let ratio = conservative / relaxed;
        assert!(
            (1.4..=1.9).contains(&ratio),
            "expected ~10/6 = 1.67x overhead, got {ratio}"
        );
    }

    #[test]
    fn wasted_work_is_n_minus_k_partitions() {
        let out = run_with_stragglers(MdsParams::new(10, 7), &[9]);
        // Aggregate waste: 3 of 10 full partitions.
        let total_computed: usize = out.metrics.computed_rows.iter().sum();
        let total_wasted = out.metrics.total_wasted_rows();
        let frac = total_wasted as f64 / total_computed as f64;
        assert!(
            (frac - 0.3).abs() < 0.01,
            "waste fraction {frac}, expected 0.3"
        );
    }

    #[test]
    fn name_includes_params() {
        let (a, _) = data();
        let s = MdsStrategy::new(&a, MdsParams::new(12, 6), 2).unwrap();
        assert_eq!(s.name(), "mds(12,6)");
    }
}
