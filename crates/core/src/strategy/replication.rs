//! Uncoded r-replication with speculative re-execution — the enhanced
//! Hadoop/LATE-like baseline of §7.1.
//!
//! The data is split into `n` partitions; each partition is replicated at
//! `r` workers (its primary plus `r − 1` pseudo-random others). Every
//! iteration all primaries compute. When "most" tasks have finished
//! (detection quantile, default 75%), the master speculatively relaunches
//! the still-running tasks — up to `max_speculative` of them — on the
//! fastest workers that have already finished:
//!
//! * if the chosen worker holds a replica of the partition, the relaunch
//!   starts immediately;
//! * otherwise the partition is *moved* first, charging the transfer to
//!   both the round's latency and its `rebalance_bytes` — the data
//!   movement on the critical path that makes this baseline collapse
//!   once stragglers outnumber replicas (Figs 1/6/7).
//!
//! Whichever copy finishes first wins; the loser's work is wasted.

use crate::error::S2c2Error;
use crate::strategy::{IterationOutcome, MatvecStrategy};
use s2c2_cluster::metrics::RoundMetrics;
use s2c2_cluster::ClusterSim;
use s2c2_linalg::{Matrix, Vector};

/// Replication + speculation strategy.
pub struct ReplicationStrategy {
    /// Partition row blocks (partition `p` covers rows `[starts[p], starts[p+1])`).
    partitions: Vec<Matrix>,
    starts: Vec<usize>,
    /// `replicas[p]` = sorted worker ids holding partition `p`.
    replicas: Vec<Vec<usize>>,
    n: usize,
    max_speculative: usize,
    detect_quantile: f64,
    rows: usize,
}

impl ReplicationStrategy {
    /// Splits `a` over `n` workers with `r`-fold replication and up to
    /// `max_speculative` speculative relaunches per iteration.
    ///
    /// Replica placement is deterministic: partition `p` lives at workers
    /// `p, p+stride, p+2·stride, …` (mod `n`) with a stride derived from
    /// `seed`, mimicking random placement while keeping runs reproducible.
    ///
    /// # Errors
    ///
    /// [`S2c2Error::InvalidConfig`] if `r > n` or `r == 0` or the matrix
    /// is empty.
    pub fn new(
        a: &Matrix,
        n: usize,
        r: usize,
        max_speculative: usize,
        seed: u64,
    ) -> Result<Self, S2c2Error> {
        if r == 0 || r > n {
            return Err(S2c2Error::InvalidConfig(format!(
                "replication factor {r} invalid for {n} workers"
            )));
        }
        if a.rows() == 0 {
            return Err(S2c2Error::InvalidConfig("matrix has zero rows".into()));
        }
        // Near-even partition bounds.
        let base = a.rows() / n;
        let extra = a.rows() % n;
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0);
        for p in 0..n {
            let size = base + usize::from(p < extra);
            starts.push(starts[p] + size);
        }
        let partitions: Vec<Matrix> = (0..n)
            .map(|p| a.row_block(starts[p], starts[p + 1]))
            .collect();

        // Deterministic pseudo-random placement: stride coprime-ish to n.
        let stride = (seed as usize % n.saturating_sub(1).max(1)) + 1;
        let replicas: Vec<Vec<usize>> = (0..n)
            .map(|p| {
                let mut set = Vec::with_capacity(r);
                let mut w = p;
                while set.len() < r {
                    if !set.contains(&(w % n)) {
                        set.push(w % n);
                    }
                    w += stride.max(1);
                }
                set.sort_unstable();
                set
            })
            .collect();

        Ok(ReplicationStrategy {
            partitions,
            starts,
            replicas,
            n,
            max_speculative,
            detect_quantile: 0.75,
            rows: a.rows(),
        })
    }

    /// Worker ids holding a replica of partition `p`.
    #[must_use]
    pub fn replica_set(&self, p: usize) -> &[usize] {
        &self.replicas[p]
    }
}

impl MatvecStrategy for ReplicationStrategy {
    fn name(&self) -> String {
        "replication".into()
    }

    #[allow(clippy::too_many_lines)]
    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        x: &Vector,
    ) -> Result<IterationOutcome, S2c2Error> {
        sim.begin_iteration(iteration);
        let n = self.n;
        if sim.n() != n {
            return Err(S2c2Error::InvalidConfig(format!(
                "strategy built for {n} workers, cluster has {}",
                sim.n()
            )));
        }
        let cols = x.len();
        let input_bytes = (cols * 8) as u64;
        let input_time = sim.transfer_time(input_bytes);

        // Primary executions: task p runs on worker p.
        let part_rows = |p: usize| self.starts[p + 1] - self.starts[p];
        let mut primary_time = vec![0.0_f64; n];
        for (p, t) in primary_time.iter_mut().enumerate() {
            *t = input_time
                + sim.compute_time(p, part_rows(p), cols)
                + sim.transfer_time((part_rows(p) * 8) as u64);
        }

        // Detection point: when `detect_quantile` of tasks have finished —
        // but, LATE-style, never later than 1.5x the median completion
        // (progress-rate divergence), otherwise a straggler majority would
        // postpone detection indefinitely.
        let mut sorted = primary_time.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let detect_idx = ((n as f64 * self.detect_quantile).ceil() as usize).clamp(1, n) - 1;
        let t_detect = sorted[detect_idx].min(1.5 * sorted[n / 2]);

        // Speculation: slowest unfinished tasks first.
        let mut lagging: Vec<usize> = (0..n).filter(|&p| primary_time[p] > t_detect).collect();
        lagging.sort_by(|&a, &b| primary_time[b].total_cmp(&primary_time[a]));
        lagging.truncate(self.max_speculative);

        // Helpers for choosing speculation hosts: finished workers,
        // fastest first, each used once per round.
        let mut hosts: Vec<usize> = (0..n).filter(|&w| primary_time[w] <= t_detect).collect();
        hosts.sort_by(|&a, &b| primary_time[a].total_cmp(&primary_time[b]));
        let mut host_used = vec![false; n];

        let mut metrics = RoundMetrics::new(iteration, n);
        for p in 0..n {
            metrics.assigned_rows[p] = part_rows(p);
        }

        // (winner_time, winner_worker, loser info) per speculated task.
        let mut task_time = primary_time.clone();
        let mut spec_extra_rows = vec![0usize; n]; // speculative rows per host
        let mut spec_completion = vec![f64::INFINITY; n];
        for &p in &lagging {
            // Prefer a host holding a replica of p.
            let chosen = hosts
                .iter()
                .copied()
                .find(|&h| !host_used[h] && self.replicas[p].contains(&h))
                .or_else(|| hosts.iter().copied().find(|&h| !host_used[h]));
            let Some(host) = chosen else { break };
            host_used[host] = true;
            let has_replica = self.replicas[p].contains(&host);
            let move_time = if has_replica {
                0.0
            } else {
                let bytes = self.partitions[p].payload_bytes();
                metrics.rebalance_bytes += bytes;
                sim.transfer_time(bytes)
            };
            let spec_done = t_detect
                + move_time
                + sim.compute_time(host, part_rows(p), cols)
                + sim.transfer_time((part_rows(p) * 8) as u64);
            if spec_done < primary_time[p] {
                // Speculation wins: host's work is useful, primary's partial
                // work (up to the win time) is wasted.
                task_time[p] = spec_done;
                spec_extra_rows[host] += part_rows(p);
                spec_completion[host] = spec_completion[host].min(spec_done);
                metrics.assigned_rows[host] += part_rows(p);
                metrics.useful_rows[host] += part_rows(p);
                let elapsed = (spec_done - input_time).max(0.0);
                let partial = ((sim.partial_compute_elements(p, elapsed) / cols as f64) as usize)
                    .min(part_rows(p));
                metrics.computed_rows[p] += partial; // wasted primary work
            } else {
                // Primary wins: the speculative copy's partial work wasted.
                let elapsed = (primary_time[p] - t_detect - move_time).max(0.0);
                let partial = ((sim.partial_compute_elements(host, elapsed) / cols as f64)
                    as usize)
                    .min(part_rows(p));
                metrics.assigned_rows[host] += part_rows(p);
                metrics.computed_rows[host] += partial;
            }
        }

        // Primary completions that stood (either not speculated or won).
        for p in 0..n {
            if task_time[p] >= primary_time[p] {
                // Primary won (or no speculation): full compute, all useful.
                metrics.computed_rows[p] += part_rows(p);
                metrics.useful_rows[p] += part_rows(p);
            }
            metrics.response_times[p] = Some(primary_time[p].min(task_time[p]));
        }
        for (h, &extra) in spec_extra_rows.iter().enumerate() {
            if extra > 0 {
                metrics.computed_rows[h] += extra;
            }
        }

        let t_done = task_time.iter().cloned().fold(0.0_f64, f64::max);
        metrics.latency = t_done; // concatenation needs no decode
        debug_assert!(metrics.conserves_work());

        // Numeric result: concatenate partition products.
        let mut out = Vec::with_capacity(self.rows);
        for p in 0..n {
            out.extend_from_slice(self.partitions[p].matvec(x).as_slice());
        }

        Ok(IterationOutcome {
            result: Vector::from(out),
            metrics,
        })
    }

    fn storage_bytes_per_worker(&self) -> u64 {
        // r copies of 1/n of the data per worker on average.
        let r = self.replicas.first().map_or(1, Vec::len) as u64;
        self.partitions.first().map_or(0, Matrix::payload_bytes) * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    fn data() -> (Matrix, Vector) {
        let a = Matrix::from_fn(600, 6, |r, c| ((r * 7 + c) % 15) as f64 - 7.0);
        let x = Vector::from_fn(6, |i| 0.2 * i as f64 + 1.0);
        (a, x)
    }

    fn run(stragglers: &[usize]) -> (IterationOutcome, Matrix, Vector) {
        let (a, x) = data();
        let mut s = ReplicationStrategy::new(&a, 12, 3, 6, 17).unwrap();
        let mut sim = ClusterSim::new(
            ClusterSpec::builder(12)
                .compute_bound()
                .straggler_slowdown(5.0)
                .stragglers(stragglers, 0.0)
                .build(),
        );
        let out = s.run_iteration(&mut sim, 0, &x).unwrap();
        (out, a, x)
    }

    #[test]
    fn exact_result_regardless_of_stragglers() {
        for stragglers in [vec![], vec![0], vec![0, 1, 2], vec![0, 1, 2, 3, 4]] {
            let (out, a, x) = run(&stragglers);
            s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-9);
            assert!(out.metrics.conserves_work());
        }
    }

    #[test]
    fn speculation_rescues_single_straggler() {
        let (healthy, _, _) = run(&[]);
        let (one, _, _) = run(&[3]);
        // Speculative re-execution bounds the damage: latency should be
        // far below the 5x of waiting for the straggler.
        let ratio = one.metrics.latency / healthy.metrics.latency;
        assert!(
            ratio < 3.5,
            "speculation should cap the slowdown, got {ratio}x"
        );
        // And the straggler's work was (partially) wasted.
        assert!(one.metrics.total_wasted_rows() > 0);
    }

    #[test]
    fn many_stragglers_force_data_movement() {
        // When a partition's entire replica set straggles (here partition
        // 0's set is {0, 2, 7} under seed 17), its speculative copy must
        // move data — the paper's critical-path data movement.
        let (out, _, _) = run(&[0, 2, 7, 3, 4]);
        assert!(
            out.metrics.rebalance_bytes > 0,
            "expected data movement when a full replica set straggles"
        );
    }

    #[test]
    fn latency_degrades_with_straggler_count() {
        let l0 = run(&[]).0.metrics.latency;
        let l2 = run(&[0, 1]).0.metrics.latency;
        let l5 = run(&[0, 1, 2, 3, 4]).0.metrics.latency;
        assert!(l2 >= l0);
        assert!(l5 > l2, "more stragglers, more pain: {l5} vs {l2}");
    }

    #[test]
    fn replica_sets_have_r_distinct_members() {
        let (a, _) = data();
        let s = ReplicationStrategy::new(&a, 12, 3, 6, 17).unwrap();
        for p in 0..12 {
            let set = s.replica_set(p);
            assert_eq!(set.len(), 3);
            assert!(set.contains(&p), "primary holds its own partition");
            let mut dedup = set.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), 3);
        }
    }

    #[test]
    fn storage_is_r_over_n() {
        let (a, _) = data();
        let s = ReplicationStrategy::new(&a, 12, 3, 6, 17).unwrap();
        let expect = a.payload_bytes() / 12 * 3;
        assert_eq!(s.storage_bytes_per_worker(), expect);
    }

    #[test]
    fn invalid_replication_rejected() {
        let (a, _) = data();
        assert!(ReplicationStrategy::new(&a, 4, 5, 2, 0).is_err());
        assert!(ReplicationStrategy::new(&a, 4, 0, 2, 0).is_err());
    }

    #[test]
    fn uneven_rows_partition_cleanly() {
        let a = Matrix::from_fn(101, 3, |r, c| (r + c) as f64);
        let x = Vector::filled(3, 1.0);
        let mut s = ReplicationStrategy::new(&a, 4, 2, 2, 5).unwrap();
        let mut sim = ClusterSim::new(ClusterSpec::builder(4).build());
        let out = s.run_iteration(&mut sim, 0, &x).unwrap();
        assert_eq!(out.result.len(), 101);
        s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-9);
    }
}
