//! Workload-distribution strategies.
//!
//! Everything the paper compares lives here behind one trait:
//!
//! | Strategy | Paper role |
//! |---|---|
//! | [`UncodedStrategy`] | even split, wait for all (§2's strawman) |
//! | [`ReplicationStrategy`] | uncoded r-replication + speculative re-execution (Hadoop/LATE-like, §7.1 baseline) |
//! | [`MdsStrategy`] | conventional (n,k)-MDS coded computation (Lee et al., §7.1/7.2 baseline) |
//! | [`S2c2Strategy`] | **the contribution**: basic & general S²C² (§4) |
//! | [`OverDecompositionStrategy`] | Charm++-style over-decomposition + prediction-driven rebalancing (§7.2 baseline) |
//! | [`poly`] | polynomial-coded Hessian, conventional vs S²C²-scheduled (§5, Fig 12) |

pub mod coded_common;
pub mod mds;
pub mod overdecomp;
pub mod poly;
pub mod replication;
pub mod s2c2;
pub mod uncoded;

pub use mds::MdsStrategy;
pub use overdecomp::OverDecompositionStrategy;
pub use replication::ReplicationStrategy;
pub use s2c2::S2c2Strategy;
pub use uncoded::UncodedStrategy;

use crate::error::S2c2Error;
use s2c2_cluster::metrics::RoundMetrics;
use s2c2_cluster::ClusterSim;
use s2c2_linalg::Vector;

/// Result of one strategy iteration.
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// The computed `A·x` (exact, up to floating point round-off).
    pub result: Vector,
    /// Accounting for the round.
    pub metrics: RoundMetrics,
}

/// A workload-distribution strategy for iterative distributed matvec jobs.
///
/// The contract: `run_iteration` must call
/// [`ClusterSim::begin_iteration`] exactly once, produce the numerically
/// correct product, and fill a [`RoundMetrics`] that satisfies work
/// conservation.
pub trait MatvecStrategy: Send {
    /// Human-readable name (used by the bench harness's tables).
    fn name(&self) -> String;

    /// Executes iteration `iteration` with input vector `x`.
    ///
    /// # Errors
    ///
    /// Strategy-specific failures (not enough live workers, decode
    /// failures) surface as [`S2c2Error`].
    fn run_iteration(
        &mut self,
        sim: &mut ClusterSim,
        iteration: usize,
        x: &Vector,
    ) -> Result<IterationOutcome, S2c2Error>;

    /// Bytes of input data each worker must store up front.
    fn storage_bytes_per_worker(&self) -> u64;
}

/// Selector used by the [`crate::job::CodedJobBuilder`] facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Even uncoded split, wait for every worker.
    Uncoded,
    /// Uncoded r-replication with speculative re-execution.
    Replication,
    /// Conventional (n,k)-MDS coded computation.
    MdsCoded,
    /// Basic S²C²: stragglers excluded, equal split among the rest.
    S2c2Basic,
    /// General S²C²: Algorithm 1 on predicted speeds.
    S2c2General,
    /// Charm++-style over-decomposition with prediction-driven rebalancing.
    OverDecomposition,
}

impl StrategyKind {
    /// All kinds, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> [StrategyKind; 6] {
        [
            StrategyKind::Uncoded,
            StrategyKind::Replication,
            StrategyKind::MdsCoded,
            StrategyKind::S2c2Basic,
            StrategyKind::S2c2General,
            StrategyKind::OverDecomposition,
        ]
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StrategyKind::Uncoded => "uncoded",
            StrategyKind::Replication => "replication",
            StrategyKind::MdsCoded => "mds",
            StrategyKind::S2c2Basic => "s2c2-basic",
            StrategyKind::S2c2General => "s2c2-general",
            StrategyKind::OverDecomposition => "over-decomposition",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_names() {
        assert_eq!(StrategyKind::S2c2General.to_string(), "s2c2-general");
        assert_eq!(StrategyKind::all().len(), 6);
    }
}
