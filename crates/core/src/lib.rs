//! # S²C² — Slack Squeeze Coded Computing (the paper's contribution)
//!
//! This crate implements the scheduling layer of *"Slack Squeeze Coded
//! Computing for Adaptive Straggler Mitigation"* (SC '19): encode once
//! with a conservative `(n, k)` code, then every iteration squeeze the
//! built-in slack by assigning each worker only as many chunks of its own
//! coded partition as its predicted speed warrants — never moving data,
//! never re-encoding, and never giving up the code's worst-case straggler
//! tolerance.
//!
//! Layout:
//!
//! * [`alloc`] — Algorithm 1 (proportional chunk allocation with exact-`k`
//!   coverage) plus the basic-mode and conventional assignments.
//! * [`speed_tracker`] — §6.2's measure→predict loop over the
//!   `s2c2-predict` models, including the oracle and uniform degenerates.
//! * [`strategy`] — every scheduling strategy the paper compares, all
//!   runnable against the `s2c2-cluster` engines.
//! * [`job`] — the user-facing facade (`CodedJobBuilder` → `CodedJob`).
//! * [`storage_model`] — the Fig 3 effective-storage comparison.

#![warn(missing_docs)]

pub mod alloc;
pub mod error;
pub mod job;
pub mod speed_tracker;
pub mod storage_model;
pub mod strategy;

pub use alloc::{
    allocate_chunks, allocate_chunks_basic, allocate_full, normalized_shares,
    split_worker_capacity, ChunkAssignment,
};
pub use error::S2c2Error;
pub use job::{CodedJob, CodedJobBuilder};
pub use speed_tracker::{PredictorSource, SpeedTracker};
pub use strategy::{IterationOutcome, MatvecStrategy, StrategyKind};
