//! Effective-storage model behind Figure 3.
//!
//! The paper's argument for coding over "uncoded + perfect prediction":
//! even if the master could predict speeds exactly and assign each node
//! the optimal fraction of rows each iteration, the *set* of rows a node
//! touches drifts as speeds drift. Either every node eventually stores a
//! large fraction of the whole matrix (the union of all its assignments —
//! the paper measures ~67% over 270 iterations) or data moves every
//! round. A coded partition, by contrast, is fixed at `1/k` of the data
//! forever, because the *same* coded rows serve any assignment.

use s2c2_trace::BoxedSpeedModel;

/// Result series of the storage simulation.
#[derive(Debug, Clone)]
pub struct StorageSeries {
    /// Mean (over nodes) fraction of the full data each node must hold
    /// after iteration `t` to have served every assignment so far
    /// without runtime data movement.
    pub uncoded_fraction: Vec<f64>,
    /// The coded equivalent: constant `1/k`.
    pub coded_fraction: Vec<f64>,
    /// Bytes-equivalent rows moved at iteration `t` by the uncoded scheme
    /// (new rows entering some node's working set).
    pub uncoded_rows_moved: Vec<usize>,
}

/// Simulates `iterations` rounds of speed-proportional uncoded assignment
/// over `rows` data rows, tracking the growth of each node's row-range
/// union, and compares with a `(·, k)`-coded layout's constant `1/k`.
///
/// Assignment model: workers are laid out in fixed order; each iteration
/// the row space is split into contiguous spans proportional to that
/// iteration's speeds (the optimal uncoded assignment). A node's working
/// set is the union of its spans so far, tracked at row granularity.
///
/// # Panics
///
/// Panics on an empty cluster or zero rows/k.
#[must_use]
pub fn simulate_storage(
    mut workers: Vec<BoxedSpeedModel>,
    rows: usize,
    k: usize,
    iterations: usize,
) -> StorageSeries {
    assert!(!workers.is_empty(), "need at least one worker");
    assert!(rows > 0 && k > 0, "rows and k must be positive");
    let n = workers.len();
    // Working set per node as a boolean row map (rows are few enough for
    // the figure's purposes; intervals would be premature cleverness).
    let mut held: Vec<Vec<bool>> = vec![vec![false; rows]; n];
    let mut held_counts = vec![0usize; n];

    let mut uncoded_fraction = Vec::with_capacity(iterations);
    let mut uncoded_rows_moved = Vec::with_capacity(iterations);
    let coded = 1.0 / k as f64;

    for iter in 0..iterations {
        let speeds: Vec<f64> = workers.iter_mut().map(|m| m.speed_at(iter)).collect();
        let total: f64 = speeds.iter().sum();
        // Contiguous spans proportional to speed (largest remainder).
        let mut sizes = vec![0usize; n];
        let mut assigned = 0usize;
        let mut rema: Vec<(f64, usize)> = Vec::with_capacity(n);
        for w in 0..n {
            let ideal = speeds[w] / total * rows as f64;
            sizes[w] = ideal.floor() as usize;
            assigned += sizes[w];
            rema.push((ideal - sizes[w] as f64, w));
        }
        rema.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for i in 0..rows - assigned {
            sizes[rema[i % n].1] += 1;
        }

        let mut moved = 0usize;
        let mut begin = 0usize;
        for w in 0..n {
            for slot in &mut held[w][begin..begin + sizes[w]] {
                if !*slot {
                    *slot = true;
                    held_counts[w] += 1;
                    moved += 1;
                }
            }
            begin += sizes[w];
        }
        debug_assert_eq!(begin, rows);

        let mean_fraction = held_counts
            .iter()
            .map(|&c| c as f64 / rows as f64)
            .sum::<f64>()
            / n as f64;
        uncoded_fraction.push(mean_fraction);
        uncoded_rows_moved.push(moved);
    }

    StorageSeries {
        uncoded_fraction,
        coded_fraction: vec![coded; iterations],
        uncoded_rows_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_trace::model::{ConstantSpeed, JitterSpeed, MarkovRegimeSpeed};
    use s2c2_trace::BoxedSpeedModel;

    fn constant_cluster(n: usize) -> Vec<BoxedSpeedModel> {
        (0..n)
            .map(|_| Box::new(ConstantSpeed::new(1.0)) as BoxedSpeedModel)
            .collect()
    }

    #[test]
    fn constant_speeds_need_exactly_one_nth() {
        let series = simulate_storage(constant_cluster(10), 1000, 10, 50);
        // Identical spans every iteration: working set never grows.
        for &f in &series.uncoded_fraction {
            assert!((f - 0.1).abs() < 1e-9, "fraction {f}");
        }
        // Only the first iteration moves data.
        assert_eq!(series.uncoded_rows_moved[0], 1000);
        assert!(series.uncoded_rows_moved[1..].iter().all(|&m| m == 0));
    }

    #[test]
    fn varying_speeds_grow_the_working_set() {
        let workers: Vec<BoxedSpeedModel> = (0..12)
            .map(|i| {
                Box::new(MarkovRegimeSpeed::new(
                    vec![1.0, 0.6, 0.3],
                    8.0,
                    0.05,
                    0,
                    100 + i,
                )) as BoxedSpeedModel
            })
            .collect();
        let series = simulate_storage(workers, 1200, 10, 270);
        let first = series.uncoded_fraction[0];
        let last = *series.uncoded_fraction.last().unwrap();
        assert!(
            last > first * 2.0,
            "working set must grow: {first} -> {last}"
        );
        assert!(
            last > 0.3,
            "paper-like drift should need a large fraction, got {last}"
        );
        // Monotone non-decreasing (unions only grow).
        for w in series.uncoded_fraction.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Coded stays at 1/k.
        assert!(series
            .coded_fraction
            .iter()
            .all(|&f| (f - 0.1).abs() < 1e-12));
    }

    #[test]
    fn jitter_only_growth_is_modest() {
        let workers: Vec<BoxedSpeedModel> = (0..10)
            .map(|i| Box::new(JitterSpeed::new(1.0, 0.05, i as u64)) as BoxedSpeedModel)
            .collect();
        let series = simulate_storage(workers, 1000, 10, 100);
        let last = *series.uncoded_fraction.last().unwrap();
        // Small jitter wiggles boundaries a little; nothing like regime drift.
        assert!(
            last < 0.3,
            "jitter-only growth should stay small, got {last}"
        );
    }

    #[test]
    fn coded_beats_uncoded_in_steady_state() {
        let workers: Vec<BoxedSpeedModel> = (0..12)
            .map(|i| {
                Box::new(MarkovRegimeSpeed::new(vec![1.0, 0.5], 10.0, 0.03, 0, i))
                    as BoxedSpeedModel
            })
            .collect();
        let series = simulate_storage(workers, 600, 10, 150);
        let last = *series.uncoded_fraction.last().unwrap();
        assert!(last > series.coded_fraction[0] * 2.0);
    }

    #[test]
    #[should_panic(expected = "rows and k must be positive")]
    fn zero_rows_rejected() {
        let _ = simulate_storage(constant_cluster(2), 0, 2, 5);
    }
}
