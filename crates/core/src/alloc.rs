//! Algorithm 1 — the General S²C² chunk allocator.
//!
//! Input: per-worker predicted speeds, the code's recovery threshold `k`
//! (`a·b` for polynomial codes), and the over-decomposition granularity
//! `C` (chunks per partition). Output: for each worker, the set of chunk
//! *indices* of its own coded partition to compute.
//!
//! The geometry that makes this work: the decoder needs each chunk index
//! covered by exactly `k` distinct workers. Laying out `k·C` chunk-slots
//! as consecutive intervals around a circle of circumference `C` — worker
//! after worker, wrapping — covers every index exactly `k` times *provided
//! no single interval is longer than `C`*. The allocator therefore:
//!
//! 1. apportions `k·C` slots proportionally to predicted speeds (largest
//!    remainder method, so totals are exact),
//! 2. caps every worker at `C` slots, redistributing the excess to the
//!    next-fastest workers (the paper's "re-assign these extra chunks to
//!    next worker"),
//! 3. walks the circle in descending speed order handing out intervals.

use crate::error::S2c2Error;

/// A work assignment: chunk indices per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkAssignment {
    /// `chunks[w]` = sorted chunk indices worker `w` must compute.
    pub chunks: Vec<Vec<usize>>,
    /// Chunks per partition (the circle circumference `C`).
    pub chunks_per_partition: usize,
    /// Recovery threshold the assignment was built for.
    pub k: usize,
}

impl ChunkAssignment {
    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.chunks.len()
    }

    /// Total chunk-slots assigned (must equal `k · C`).
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// Per-chunk coverage count (how many workers compute each index).
    #[must_use]
    pub fn coverage(&self) -> Vec<usize> {
        let mut cov = vec![0usize; self.chunks_per_partition];
        for per_worker in &self.chunks {
            for &c in per_worker {
                cov[c] += 1;
            }
        }
        cov
    }

    /// Checks the decodability invariant: every chunk index covered by
    /// exactly `k` distinct workers and no worker holds duplicates.
    #[must_use]
    pub fn is_decodable(&self) -> bool {
        for per_worker in &self.chunks {
            for w in per_worker.windows(2) {
                if w[0] >= w[1] {
                    return false; // unsorted or duplicate
                }
            }
            if per_worker.len() > self.chunks_per_partition {
                return false;
            }
        }
        self.coverage().iter().all(|&c| c == self.k)
    }

    /// Rows assigned per worker given `rows_per_chunk`.
    #[must_use]
    pub fn rows_per_worker(&self, rows_per_chunk: usize) -> Vec<usize> {
        self.chunks
            .iter()
            .map(|c| c.len() * rows_per_chunk)
            .collect()
    }
}

/// Apportions `total` slots proportionally to `weights` with the largest
/// remainder method, then enforces the per-worker `cap` by spilling excess
/// to the next-largest weights.
///
/// Returns per-worker slot counts summing to exactly `total`.
fn apportion_capped(weights: &[f64], total: usize, cap: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    debug_assert!(sum > 0.0);
    let n = weights.len();

    // Stage 1: proportional floors.
    let mut counts = vec![0usize; n];
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let ideal = w / sum * total as f64;
        counts[i] = ideal.floor() as usize;
        assigned += counts[i];
    }
    // Distribute leftover slots makespan-greedily: each goes to the
    // worker whose finish time after the increment is smallest. Plain
    // largest-remainder would happily round a 5x-slow worker's 1.6-chunk
    // share *up*, making it the round's bottleneck — an extra chunk costs
    // 1/speed, so slot placement must be speed-aware.
    let mut leftover = total - assigned;
    while leftover > 0 {
        let pick = (0..n)
            .filter(|&i| counts[i] < cap)
            .min_by(|&a, &b| {
                let fa = (counts[a] + 1) as f64 / weights[a];
                let fb = (counts[b] + 1) as f64 / weights[b];
                // total_cmp, not partial_cmp().unwrap(): a NaN weight
                // reaching this comparator (e.g. an unvalidated job
                // weight upstream) must mis-sort at worst, never panic
                // the allocator mid-run.
                fa.total_cmp(&fb).then(a.cmp(&b))
            })
            // s2c2-allow: panic-reachability -- leftover > 0 with total <= n*cap implies an uncapped worker
            .expect("total <= n*cap guarantees a slot");
        counts[pick] += 1;
        leftover -= 1;
    }

    // Stage 2: cap-and-spill, fastest first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    let mut excess = 0usize;
    for &i in &order {
        if counts[i] > cap {
            excess += counts[i] - cap;
            counts[i] = cap;
        }
    }
    for &i in &order {
        if excess == 0 {
            break;
        }
        let room = cap - counts[i];
        let take = room.min(excess);
        counts[i] += take;
        excess -= take;
    }
    debug_assert_eq!(excess, 0, "caller must guarantee total <= n*cap");
    counts
}

/// Runs Algorithm 1.
///
/// `speeds[w] <= 0` marks a worker as unavailable (a presumed-dead or
/// excluded straggler); it receives no chunks.
///
/// # Errors
///
/// * [`S2c2Error::NotEnoughWorkers`] if fewer than `k` workers have
///   positive speed — `k`-coverage would be impossible.
/// * [`S2c2Error::InvalidConfig`] for zero `k` or zero chunk count.
pub fn allocate_chunks(
    speeds: &[f64],
    k: usize,
    chunks_per_partition: usize,
) -> Result<ChunkAssignment, S2c2Error> {
    if k == 0 || chunks_per_partition == 0 {
        return Err(S2c2Error::InvalidConfig(
            "k and chunks_per_partition must be positive".into(),
        ));
    }
    let n = speeds.len();
    let alive: Vec<usize> = (0..n).filter(|&w| speeds[w] > 0.0).collect();
    if alive.len() < k {
        return Err(S2c2Error::NotEnoughWorkers {
            alive: alive.len(),
            need: k,
        });
    }

    let c = chunks_per_partition;
    let total = k * c;
    let alive_weights: Vec<f64> = alive.iter().map(|&w| speeds[w]).collect();
    let counts = apportion_capped(&alive_weights, total, c);

    // Walk the circle in descending-speed order.
    let mut order: Vec<usize> = (0..alive.len()).collect();
    order.sort_by(|&a, &b| {
        alive_weights[b]
            .total_cmp(&alive_weights[a])
            .then(a.cmp(&b))
    });

    let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut begin = 0usize;
    for &ai in &order {
        let count = counts[ai];
        let worker = alive[ai];
        let mut assigned = Vec::with_capacity(count);
        for j in 0..count {
            assigned.push((begin + j) % c);
        }
        assigned.sort_unstable();
        chunks[worker] = assigned;
        begin = (begin + count) % c;
    }

    let assignment = ChunkAssignment {
        chunks,
        chunks_per_partition: c,
        k,
    };
    debug_assert!(
        assignment.is_decodable(),
        "allocator broke the coverage invariant"
    );
    Ok(assignment)
}

/// Algorithm 1 extended for bilinear codes: accounts for a fixed
/// per-worker setup cost that scheduling cannot reduce (the polynomial
/// Hessian's `diag(w)·B̃ᵢ` scaling pass, §7.2.3).
///
/// Plain proportional allocation equalizes only the *chunk* work, so a
/// slow worker's fixed pass still blows its deadline every round. This
/// variant water-fills instead: it finds the makespan `T` at which
/// `Σ_w clamp((T·s_w − fixed) / unit, 0, C) = k·C` and hands each worker
/// its share — a worker whose fixed pass alone exceeds `T` sits out.
/// With `fixed_work == 0` it reduces exactly to [`allocate_chunks`].
///
/// `fixed_work` and `unit_work` are in the same cost unit (elements);
/// `unit_work` is the cost of one chunk.
///
/// # Errors
///
/// Same failure modes as [`allocate_chunks`].
pub fn allocate_chunks_with_fixed_cost(
    speeds: &[f64],
    k: usize,
    chunks_per_partition: usize,
    fixed_work: f64,
    unit_work: f64,
) -> Result<ChunkAssignment, S2c2Error> {
    if fixed_work <= 0.0 {
        return allocate_chunks(speeds, k, chunks_per_partition);
    }
    if k == 0 || chunks_per_partition == 0 {
        return Err(S2c2Error::InvalidConfig(
            "k and chunks_per_partition must be positive".into(),
        ));
    }
    if unit_work <= 0.0 {
        return Err(S2c2Error::InvalidConfig(
            "unit work must be positive".into(),
        ));
    }
    let n = speeds.len();
    let alive: Vec<usize> = (0..n).filter(|&w| speeds[w] > 0.0).collect();
    if alive.len() < k {
        return Err(S2c2Error::NotEnoughWorkers {
            alive: alive.len(),
            need: k,
        });
    }
    let c = chunks_per_partition;
    let total = (k * c) as f64;
    let cap = c as f64;

    // Water-fill: bisect the makespan T.
    let share = |t: f64, s: f64| ((t * s - fixed_work) / unit_work).clamp(0.0, cap);
    let total_at = |t: f64| alive.iter().map(|&w| share(t, speeds[w])).sum::<f64>();
    let min_speed = alive.iter().map(|&w| speeds[w]).fold(f64::MAX, f64::min);
    let mut lo = 0.0;
    let mut hi = (fixed_work + unit_work * cap) / min_speed;
    debug_assert!(
        total_at(hi) + 1e-9 >= total,
        "upper bound must cover demand"
    );
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total_at(mid) < total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t_star = hi;
    let real_shares: Vec<f64> = alive.iter().map(|&w| share(t_star, speeds[w])).collect();

    // Integerize: floor + largest remainder, preserving Σ = k·C and caps.
    let mut counts: Vec<usize> = real_shares.iter().map(|r| r.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    let mut rema: Vec<(f64, usize)> = real_shares
        .iter()
        .enumerate()
        .map(|(i, r)| (r - r.floor(), i))
        .collect();
    rema.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut ri = 0;
    while assigned < k * c {
        let i = rema[ri % rema.len()].1;
        if counts[i] < c {
            counts[i] += 1;
            assigned += 1;
        }
        ri += 1;
    }

    // Cyclic layout in descending-speed order (as in Algorithm 1).
    let mut order: Vec<usize> = (0..alive.len()).collect();
    order.sort_by(|&a, &b| {
        speeds[alive[b]]
            .total_cmp(&speeds[alive[a]])
            .then(a.cmp(&b))
    });
    let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut begin = 0usize;
    for &ai in &order {
        let count = counts[ai];
        let mut assigned_chunks = Vec::with_capacity(count);
        for j in 0..count {
            assigned_chunks.push((begin + j) % c);
        }
        assigned_chunks.sort_unstable();
        chunks[alive[ai]] = assigned_chunks;
        begin = (begin + count) % c;
    }
    let assignment = ChunkAssignment {
        chunks,
        chunks_per_partition: c,
        k,
    };
    debug_assert!(assignment.is_decodable(), "water-filling broke coverage");
    Ok(assignment)
}

/// Normalizes per-job capacity weights into fractional shares summing
/// to 1: `out[j] = weights[j] / Σ weights`.
///
/// This is the single weight→share definition the whole stack agrees
/// on: [`split_worker_capacity`] uses it to slice worker capacity, and
/// the `s2c2-serve` engine uses it to rate in-flight tasks, so a
/// weight-2 tenant really runs at twice a weight-1 tenant's fractional
/// rate everywhere the weight is consulted.
///
/// # Panics
///
/// Panics if `weights` is empty or any weight is non-positive.
#[must_use]
pub fn normalized_shares(weights: &[f64]) -> Vec<f64> {
    assert!(!weights.is_empty(), "need at least one resident job");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "job weights must be positive"
    );
    let total: f64 = weights.iter().sum();
    weights.iter().map(|&w| w / total).collect()
}

/// Splits each worker's per-iteration capacity across concurrently
/// resident jobs — the shared-cluster hook used by `s2c2-serve`.
///
/// Given the pool's per-worker speeds and one weight per resident job
/// (equal weights = processor sharing; work-proportional weights =
/// makespan fairness), returns one *effective speed vector per job*:
/// `out[j][w] = speeds[w] · weights[j] / Σ weights`. Feeding `out[j]`
/// to [`allocate_chunks`] yields a per-job assignment that preserves
/// that job's exactly-`k` coverage while the pool's capacity is shared
/// — Algorithm 1 is scale-invariant in the speeds, so each job's chunk
/// *shape* matches what it would get on a dedicated cluster running at
/// its fractional rate.
///
/// Zero-speed (dead/churned-out) workers stay zero in every slice, so
/// per-job feasibility checks (`alive >= k`) keep working downstream.
///
/// # Panics
///
/// Panics if `weights` is empty or any weight is non-positive.
#[must_use]
pub fn split_worker_capacity(speeds: &[f64], weights: &[f64]) -> Vec<Vec<f64>> {
    normalized_shares(weights)
        .into_iter()
        .map(|frac| speeds.iter().map(|&s| s * frac).collect())
        .collect()
}

/// Basic S²C² allocation: every worker in `available` treated as equal
/// speed, stragglers excluded entirely (§4.1).
///
/// # Errors
///
/// Same failure modes as [`allocate_chunks`].
pub fn allocate_chunks_basic(
    available: &[bool],
    k: usize,
    chunks_per_partition: usize,
) -> Result<ChunkAssignment, S2c2Error> {
    let speeds: Vec<f64> = available
        .iter()
        .map(|&a| if a { 1.0 } else { 0.0 })
        .collect();
    allocate_chunks(&speeds, k, chunks_per_partition)
}

/// Conventional coded computing's implicit assignment: every worker
/// computes its whole partition (used by the MDS baseline and as the
/// fallback when prediction fails completely — §4.4).
#[must_use]
pub fn allocate_full(n: usize, k: usize, chunks_per_partition: usize) -> ChunkAssignment {
    ChunkAssignment {
        chunks: (0..n)
            .map(|_| (0..chunks_per_partition).collect())
            .collect(),
        chunks_per_partition,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_speeds_equal_chunks() {
        // 4 workers, k=2, C=6: total 12 slots, 3 each.
        let a = allocate_chunks(&[1.0; 4], 2, 6).unwrap();
        assert!(a.is_decodable());
        for w in 0..4 {
            assert_eq!(a.chunks[w].len(), 3, "worker {w}");
        }
        assert_eq!(a.total_slots(), 12);
    }

    #[test]
    fn paper_figure4c_shape() {
        // Fig 4c: (4,2) code, worker 4 (index 3) straggling, C=3.
        // Each active worker computes 2 of its 3 chunks; every chunk index
        // covered exactly twice.
        let a = allocate_chunks(&[1.0, 1.0, 1.0, 0.0], 2, 3).unwrap();
        assert!(a.is_decodable());
        assert_eq!(a.chunks[3], Vec::<usize>::new());
        for w in 0..3 {
            assert_eq!(
                a.chunks[w].len(),
                2,
                "worker {w} computes 2/3 of its partition"
            );
        }
    }

    #[test]
    fn proportional_to_speeds() {
        // Twice as fast -> twice the chunks (when divisible).
        let a = allocate_chunks(&[2.0, 1.0, 1.0], 2, 8).unwrap();
        assert!(a.is_decodable());
        assert_eq!(a.chunks[0].len(), 8);
        assert_eq!(a.chunks[1].len(), 4);
        assert_eq!(a.chunks[2].len(), 4);
    }

    #[test]
    fn cap_spills_to_next_fastest() {
        // One extremely fast worker cannot exceed C chunks; excess goes to
        // the next workers (the paper's explicit re-assignment rule).
        let a = allocate_chunks(&[100.0, 1.0, 1.0, 1.0], 3, 4).unwrap();
        assert!(a.is_decodable());
        assert_eq!(a.chunks[0].len(), 4, "capped at C");
        // 12 slots total, 4 to worker 0, 8 spread over the other three.
        assert_eq!(a.chunks[1].len() + a.chunks[2].len() + a.chunks[3].len(), 8);
    }

    #[test]
    fn paper_figure5_polynomial_allocation() {
        // Fig 5: 5 nodes, speeds {2,2,2,2,1}, 9 rows per partition with
        // need=4 -> paper allocates {8,8,8,8,4} rows. With C=9, k=4:
        // total 36 slots.
        let a = allocate_chunks(&[2.0, 2.0, 2.0, 2.0, 1.0], 4, 9).unwrap();
        assert!(a.is_decodable());
        let sizes: Vec<usize> = a.chunks.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![8, 8, 8, 8, 4]);
    }

    #[test]
    fn straggler_count_sweep_matches_ds_work() {
        // Basic S2C2 with s non-stragglers assigns k*C/s chunks each
        // (= D/s rows): the paper's headline work formula.
        let (n, k, c) = (12usize, 6usize, 12usize);
        for stragglers in 0..=n - k {
            let available: Vec<bool> = (0..n).map(|w| w >= stragglers).collect();
            let a = allocate_chunks_basic(&available, k, c).unwrap();
            assert!(a.is_decodable(), "{stragglers} stragglers");
            let s = n - stragglers;
            let expect = k * c / s; // 72/s
            for w in stragglers..n {
                let len = a.chunks[w].len();
                assert!(
                    len == expect || len == expect + 1,
                    "{stragglers} stragglers: worker {w} got {len}, expected ~{expect}"
                );
            }
        }
    }

    #[test]
    fn too_few_alive_workers_is_an_error() {
        let err = allocate_chunks(&[1.0, 0.0, 0.0, 0.0], 2, 4).unwrap_err();
        assert!(matches!(
            err,
            S2c2Error::NotEnoughWorkers { alive: 1, need: 2 }
        ));
    }

    #[test]
    fn zero_k_rejected() {
        assert!(allocate_chunks(&[1.0], 0, 4).is_err());
        assert!(allocate_chunks(&[1.0], 1, 0).is_err());
    }

    #[test]
    fn exactly_k_workers_all_full() {
        // With exactly k alive workers everyone must compute everything.
        let a = allocate_chunks(&[1.0, 0.0, 1.0, 1.0], 3, 5).unwrap();
        assert!(a.is_decodable());
        assert_eq!(a.chunks[0].len(), 5);
        assert_eq!(a.chunks[1].len(), 0);
        assert_eq!(a.chunks[2].len(), 5);
        assert_eq!(a.chunks[3].len(), 5);
    }

    #[test]
    fn allocate_full_covers_everything_n_times() {
        let a = allocate_full(5, 3, 4);
        assert_eq!(a.coverage(), vec![5; 4]);
        assert!(
            !a.is_decodable() || 5 == 3,
            "full allocation over-covers (by design)"
        );
        assert_eq!(a.total_slots(), 20);
    }

    #[test]
    fn skewed_speeds_stay_decodable() {
        // Heavily skewed and irrational proportions.
        let speeds = [3.7, 0.11, 2.9, 0.5, 1.13, 0.77, 2.2, 0.4];
        for k in 1..=7 {
            for c in [1usize, 3, 7, 12] {
                let a = allocate_chunks(&speeds, k, c).unwrap();
                assert!(a.is_decodable(), "k={k} c={c}");
            }
        }
    }

    #[test]
    fn rows_per_worker_scales_chunks() {
        let a = allocate_chunks(&[1.0, 1.0], 1, 4).unwrap();
        let rows = a.rows_per_worker(25);
        assert_eq!(rows.iter().sum::<usize>(), 4 * 25);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let speeds = [1.3, 0.9, 1.1, 0.2, 1.0];
        let a = allocate_chunks(&speeds, 3, 10).unwrap();
        let b = allocate_chunks(&speeds, 3, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_split_sums_to_full_speed() {
        let speeds = [1.0, 0.5, 0.0, 0.8];
        let slices = split_worker_capacity(&speeds, &[2.0, 1.0, 1.0]);
        assert_eq!(slices.len(), 3);
        for w in 0..speeds.len() {
            let total: f64 = slices.iter().map(|s| s[w]).sum();
            assert!((total - speeds[w]).abs() < 1e-12, "worker {w}");
        }
        // Dead worker stays dead in every slice.
        assert!(slices.iter().all(|s| s[2] == 0.0));
        // Weight-2 job gets twice the weight-1 job's share.
        assert!((slices[0][0] / slices[1][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_split_preserves_allocation_shape() {
        // Algorithm 1 is scale-invariant: a job scheduled on its capacity
        // slice gets the same chunk shape as on the dedicated cluster.
        let speeds = [1.0, 0.9, 0.5, 0.2, 1.1, 0.7];
        let slices = split_worker_capacity(&speeds, &[1.0, 1.0, 1.0]);
        let dedicated = allocate_chunks(&speeds, 3, 8).unwrap();
        for slice in &slices {
            assert_eq!(allocate_chunks(slice, 3, 8).unwrap(), dedicated);
        }
    }

    #[test]
    #[should_panic(expected = "job weights must be positive")]
    fn capacity_split_rejects_zero_weight() {
        let _ = split_worker_capacity(&[1.0], &[1.0, 0.0]);
    }

    #[test]
    fn normalized_shares_sum_to_one_and_track_weights() {
        let shares = normalized_shares(&[1.0, 2.0, 1.0]);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[1] / shares[0] - 2.0).abs() < 1e-12);
        assert_eq!(normalized_shares(&[7.0]), vec![1.0]);
    }
}
