//! Error type for the scheduling layer.

use s2c2_coding::CodingError;
use std::fmt;

/// Errors produced by S²C² scheduling and job execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S2c2Error {
    /// Fewer live workers than the recovery threshold — no assignment can
    /// reach `k` coverage.
    NotEnoughWorkers {
        /// Workers with positive predicted speed.
        alive: usize,
        /// Recovery threshold required.
        need: usize,
    },
    /// Invalid configuration (zero dimensions, mismatched cluster size…).
    InvalidConfig(String),
    /// The codec failed to encode or decode.
    Coding(CodingError),
    /// An iteration could not complete (e.g. every worker failed).
    IterationFailed(String),
}

impl fmt::Display for S2c2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S2c2Error::NotEnoughWorkers { alive, need } => {
                write!(f, "only {alive} live workers but {need} needed for decode")
            }
            S2c2Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            S2c2Error::Coding(e) => write!(f, "coding error: {e}"),
            S2c2Error::IterationFailed(msg) => write!(f, "iteration failed: {msg}"),
        }
    }
}

impl std::error::Error for S2c2Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            S2c2Error::Coding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodingError> for S2c2Error {
    fn from(e: CodingError) -> Self {
        S2c2Error::Coding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(S2c2Error::NotEnoughWorkers { alive: 1, need: 3 }
            .to_string()
            .contains("1 live workers"));
        assert!(S2c2Error::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(S2c2Error::IterationFailed("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn coding_error_wraps_with_source() {
        use std::error::Error;
        let e: S2c2Error = CodingError::DecodeSingular { chunk: 1 }.into();
        assert!(e.to_string().contains("coding error"));
        assert!(e.source().is_some());
    }
}
