//! Per-iteration speed estimation plumbing (§6.2).
//!
//! The master records each worker's response time, converts it to an
//! observed speed (`rows / time`), feeds the per-worker predictor bank,
//! and hands the resulting forecasts to the allocator for the next
//! iteration. The tracker also implements the two degenerate "predictors"
//! the paper's figures need: *uniform* (basic S²C²'s equal-speed
//! assumption) and *oracle* ("knowing the exact speeds" in Figs 6/7).

use s2c2_cluster::ClusterSim;
use s2c2_predict::predictor::{LastValue, UniformSpeed};
use s2c2_predict::{BoxedPredictor, PredictorBank};

/// Where next-iteration speed estimates come from.
pub enum PredictorSource {
    /// All workers assumed equal speed forever (basic S²C² input).
    Uniform,
    /// Naive persistence: next speed = last observed speed.
    LastValue,
    /// Cheating oracle: reads the simulator's actual speeds for the
    /// *current* iteration. Implements "S²C² knowing the exact speeds".
    Oracle,
    /// Any trained predictor (LSTM, ARIMA) cloned per worker.
    Prototype(BoxedPredictor),
}

impl Clone for PredictorSource {
    fn clone(&self) -> Self {
        match self {
            PredictorSource::Uniform => PredictorSource::Uniform,
            PredictorSource::LastValue => PredictorSource::LastValue,
            PredictorSource::Oracle => PredictorSource::Oracle,
            PredictorSource::Prototype(p) => PredictorSource::Prototype(p.clone()),
        }
    }
}

impl std::fmt::Debug for PredictorSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PredictorSource::Uniform => "Uniform",
            PredictorSource::LastValue => "LastValue",
            PredictorSource::Oracle => "Oracle",
            PredictorSource::Prototype(_) => "Prototype",
        };
        write!(f, "PredictorSource::{name}")
    }
}

/// Tracks observed speeds and produces next-iteration predictions.
///
/// Observed speeds arrive in absolute units (rows per second); trained
/// predictors (LSTM/ARIMA) were fit on *relative* trace speeds in
/// `(0, ~1.1]`, so the tracker rescales observations by the running
/// cluster-wide maximum before feeding them — the same normalization the
/// paper applies to its measured traces (§3.2). Predictions are therefore
/// relative, which is all the allocator consumes.
pub struct SpeedTracker {
    oracle: bool,
    bank: Option<PredictorBank>,
    predictions: Vec<f64>,
    obs_scale: f64,
}

impl SpeedTracker {
    /// Builds the tracker for `n` workers.
    #[must_use]
    pub fn new(source: &PredictorSource, n: usize) -> Self {
        let (oracle, bank) = match source {
            PredictorSource::Uniform => (
                false,
                Some(PredictorBank::from_prototype(&UniformSpeed::new(1.0), n)),
            ),
            PredictorSource::LastValue => (
                false,
                Some(PredictorBank::from_prototype(&LastValue::new(1.0), n)),
            ),
            PredictorSource::Oracle => (true, None),
            PredictorSource::Prototype(p) => (
                false,
                Some(PredictorBank::from_predictors(
                    (0..n).map(|_| p.clone()).collect(),
                )),
            ),
        };
        SpeedTracker {
            oracle,
            bank,
            predictions: vec![1.0; n],
            obs_scale: 0.0,
        }
    }

    /// Number of workers tracked.
    #[must_use]
    pub fn n(&self) -> usize {
        self.predictions.len()
    }

    /// Speed estimates for the iteration the simulator currently has in
    /// flight. Honest predictors return forecasts computed from *previous*
    /// observations; the oracle reads the simulator's actual speeds.
    #[must_use]
    pub fn predictions(&self, sim: &ClusterSim) -> Vec<f64> {
        self.predictions_from(sim.speeds())
    }

    /// Speed estimates given the engine's current *actual* speeds.
    ///
    /// This is the engine-agnostic form of [`Self::predictions`]: callers
    /// that do not drive a [`ClusterSim`] (the `s2c2-serve` event engine
    /// schedules many jobs over one pool and tracks speeds itself) pass
    /// whatever ground-truth speed table they hold. Honest predictors
    /// ignore `actual` entirely; only the oracle reads it.
    #[must_use]
    pub fn predictions_from(&self, actual: &[f64]) -> Vec<f64> {
        if self.oracle {
            actual.to_vec()
        } else {
            self.predictions.clone()
        }
    }

    /// Feeds observed speeds (None = worker idle, nothing measured) and
    /// refreshes the forecasts used next iteration.
    pub fn observe(&mut self, observed: &[Option<f64>]) {
        if let Some(bank) = &mut self.bank {
            for v in observed.iter().flatten() {
                self.obs_scale = self.obs_scale.max(*v);
            }
            let scale = if self.obs_scale > 0.0 {
                self.obs_scale
            } else {
                1.0
            };
            let scaled: Vec<Option<f64>> = observed.iter().map(|o| o.map(|v| v / scale)).collect();
            self.predictions = bank.observe_and_predict_masked(&scaled);
        }
    }
}

impl std::fmt::Debug for SpeedTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeedTracker")
            .field("oracle", &self.oracle)
            .field("workers", &self.predictions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_cluster::ClusterSpec;

    #[test]
    fn uniform_ignores_observations() {
        let mut t = SpeedTracker::new(&PredictorSource::Uniform, 3);
        t.observe(&[Some(0.1), Some(5.0), None]);
        let spec = ClusterSpec::builder(3).build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        assert_eq!(t.predictions(&sim), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn last_value_tracks_per_worker_relative() {
        let mut t = SpeedTracker::new(&PredictorSource::LastValue, 3);
        // Observations are renormalized by the running maximum (0.5), so
        // predictions come out relative: {1.0, cold, 0.4}.
        t.observe(&[Some(0.5), None, Some(0.2)]);
        let spec = ClusterSpec::builder(3).build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        let p = t.predictions(&sim);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(
            (p[1] - 1.0).abs() < 1e-12,
            "idle worker keeps cold prediction"
        );
        assert!((p[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn scale_is_monotone_across_rounds() {
        // A later, faster observation re-anchors the scale; relative
        // ordering of predictions is preserved.
        let mut t = SpeedTracker::new(&PredictorSource::LastValue, 2);
        t.observe(&[Some(100.0), Some(50.0)]);
        t.observe(&[Some(400.0), Some(100.0)]);
        let spec = ClusterSpec::builder(2).build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        let p = t.predictions(&sim);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn oracle_reads_sim_speeds() {
        let spec = ClusterSpec::builder(4)
            .straggler_slowdown(4.0)
            .stragglers(&[2], 0.0)
            .build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        let t = SpeedTracker::new(&PredictorSource::Oracle, 4);
        let p = t.predictions(&sim);
        assert_eq!(p.len(), 4);
        assert!((p[2] - 0.25).abs() < 1e-12, "oracle sees the straggler");
    }

    #[test]
    fn prototype_clones_are_independent_per_worker() {
        let proto: BoxedPredictor = Box::new(LastValue::new(1.0));
        let mut t = SpeedTracker::new(&PredictorSource::Prototype(proto), 2);
        t.observe(&[Some(0.9), Some(0.3)]);
        let spec = ClusterSpec::builder(2).build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        let p = t.predictions(&sim);
        assert!((p[0] - 1.0).abs() < 1e-12, "normalized by the 0.9 max");
        assert!((p[1] - 0.3 / 0.9).abs() < 1e-12);
    }
}
