//! High-level job facade: build a strategy + simulator pair and run
//! iterations against it, accumulating metrics.
//!
//! This is the API the examples and workloads use; the strategies remain
//! directly accessible for benches that need finer control.

use crate::error::S2c2Error;
use crate::speed_tracker::PredictorSource;
use crate::strategy::s2c2::S2c2Mode;
use crate::strategy::{
    IterationOutcome, MatvecStrategy, MdsStrategy, OverDecompositionStrategy, ReplicationStrategy,
    S2c2Strategy, StrategyKind, UncodedStrategy,
};
use s2c2_cluster::{ClusterSim, ClusterSpec, JobMetrics};
use s2c2_coding::mds::MdsParams;
use s2c2_linalg::{Matrix, Vector};

/// Builder for a [`CodedJob`].
pub struct CodedJobBuilder {
    a: Matrix,
    params: MdsParams,
    chunks_per_worker: usize,
    strategy: StrategyKind,
    predictor: PredictorSource,
    replicas: usize,
    max_speculative: usize,
    overdecomp_factor: usize,
    seed: u64,
}

impl CodedJobBuilder {
    /// Starts a builder over data matrix `a` with `(n, k)` code `params`.
    #[must_use]
    pub fn new(a: Matrix, params: MdsParams) -> Self {
        CodedJobBuilder {
            a,
            params,
            chunks_per_worker: 8,
            strategy: StrategyKind::S2c2General,
            predictor: PredictorSource::LastValue,
            replicas: 3,
            max_speculative: 6,
            overdecomp_factor: 4,
            seed: 42,
        }
    }

    /// Over-decomposition granularity (chunks per coded partition).
    #[must_use]
    pub fn chunks_per_worker(mut self, chunks: usize) -> Self {
        self.chunks_per_worker = chunks;
        self
    }

    /// Which strategy runs the job.
    #[must_use]
    pub fn strategy(mut self, kind: StrategyKind) -> Self {
        self.strategy = kind;
        self
    }

    /// Speed-prediction source for the adaptive strategies.
    #[must_use]
    pub fn predictor(mut self, predictor: PredictorSource) -> Self {
        self.predictor = predictor;
        self
    }

    /// Replication factor for [`StrategyKind::Replication`] (default 3).
    #[must_use]
    pub fn replicas(mut self, r: usize) -> Self {
        self.replicas = r;
        self
    }

    /// Max speculative relaunches per round (default 6).
    #[must_use]
    pub fn max_speculative(mut self, m: usize) -> Self {
        self.max_speculative = m;
        self
    }

    /// Over-decomposition factor for
    /// [`StrategyKind::OverDecomposition`] (default 4).
    #[must_use]
    pub fn overdecomp_factor(mut self, f: usize) -> Self {
        self.overdecomp_factor = f;
        self
    }

    /// Seed for placement decisions.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the job against a cluster.
    ///
    /// # Errors
    ///
    /// Configuration mismatches (cluster size vs `n`, degenerate shapes)
    /// surface as [`S2c2Error::InvalidConfig`].
    pub fn build(self, cluster: ClusterSpec) -> Result<CodedJob, S2c2Error> {
        let n = cluster.n();
        if n != self.params.n {
            return Err(S2c2Error::InvalidConfig(format!(
                "code n = {} but cluster has {n} workers",
                self.params.n
            )));
        }
        let strategy: Box<dyn MatvecStrategy> = match self.strategy {
            StrategyKind::Uncoded => {
                Box::new(UncodedStrategy::new(&self.a, n, self.chunks_per_worker)?)
            }
            StrategyKind::Replication => Box::new(ReplicationStrategy::new(
                &self.a,
                n,
                self.replicas,
                self.max_speculative,
                self.seed,
            )?),
            StrategyKind::MdsCoded => Box::new(MdsStrategy::new(
                &self.a,
                self.params,
                self.chunks_per_worker,
            )?),
            StrategyKind::S2c2Basic => Box::new(S2c2Strategy::new(
                &self.a,
                self.params,
                self.chunks_per_worker,
                S2c2Mode::Basic,
                &self.predictor,
                n,
            )?),
            StrategyKind::S2c2General => Box::new(S2c2Strategy::new(
                &self.a,
                self.params,
                self.chunks_per_worker,
                S2c2Mode::General,
                &self.predictor,
                n,
            )?),
            StrategyKind::OverDecomposition => Box::new(OverDecompositionStrategy::new(
                &self.a,
                n,
                self.overdecomp_factor,
                self.params.storage_overhead(),
                &self.predictor,
                self.seed,
            )?),
        };
        Ok(CodedJob {
            strategy,
            sim: ClusterSim::new(cluster),
            metrics: JobMetrics::new(),
            iteration: 0,
        })
    }
}

/// A running iterative job: strategy + simulated cluster + accumulated
/// metrics.
pub struct CodedJob {
    strategy: Box<dyn MatvecStrategy>,
    sim: ClusterSim,
    metrics: JobMetrics,
    iteration: usize,
}

impl std::fmt::Debug for CodedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodedJob")
            .field("strategy", &self.strategy.name())
            .field("iteration", &self.iteration)
            .finish()
    }
}

impl CodedJob {
    /// Runs the next iteration with input `x`.
    ///
    /// # Errors
    ///
    /// Propagates strategy failures.
    pub fn run_iteration(&mut self, x: &Vector) -> Result<IterationOutcome, S2c2Error> {
        let out = self
            .strategy
            .run_iteration(&mut self.sim, self.iteration, x)?;
        self.metrics.push(out.metrics.clone());
        self.iteration += 1;
        Ok(out)
    }

    /// Accumulated metrics over every completed iteration.
    #[must_use]
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Next iteration index.
    #[must_use]
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The strategy's display name.
    #[must_use]
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// Per-worker storage requirement of the strategy.
    #[must_use]
    pub fn storage_bytes_per_worker(&self) -> u64 {
        self.strategy.storage_bytes_per_worker()
    }

    /// Number of cluster workers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.sim.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (Matrix, Vector) {
        let a = Matrix::from_fn(480, 5, |r, c| ((r + c * 3) % 7) as f64);
        let x = Vector::from_fn(5, |i| 1.0 / (1.0 + i as f64));
        (a, x)
    }

    #[test]
    fn every_strategy_kind_builds_and_runs() {
        let (a, x) = data();
        let expect = a.matvec(&x);
        for kind in StrategyKind::all() {
            let cluster = ClusterSpec::builder(12)
                .straggler_slowdown(5.0)
                .stragglers(&[2], 0.1)
                .build();
            let mut job = CodedJobBuilder::new(a.clone(), MdsParams::new(12, 6))
                .chunks_per_worker(12)
                .strategy(kind)
                .build(cluster)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            for _ in 0..3 {
                let out = job
                    .run_iteration(&x)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
                s2c2_linalg::assert_slices_close(out.result.as_slice(), expect.as_slice(), 1e-6);
            }
            assert_eq!(job.metrics().len(), 3, "{kind}");
            assert_eq!(job.iteration(), 3);
            assert!(job.storage_bytes_per_worker() > 0);
        }
    }

    #[test]
    fn cluster_size_mismatch_rejected() {
        let (a, _) = data();
        let cluster = ClusterSpec::builder(10).build();
        let err = CodedJobBuilder::new(a, MdsParams::new(12, 6))
            .build(cluster)
            .unwrap_err();
        assert!(matches!(err, S2c2Error::InvalidConfig(_)));
    }

    #[test]
    fn metrics_accumulate_latency() {
        let (a, x) = data();
        let cluster = ClusterSpec::builder(6).build();
        let mut job = CodedJobBuilder::new(a, MdsParams::new(6, 4))
            .strategy(StrategyKind::MdsCoded)
            .build(cluster)
            .unwrap();
        for _ in 0..5 {
            job.run_iteration(&x).unwrap();
        }
        assert!(job.metrics().total_latency() > 0.0);
        assert!((job.metrics().mean_latency() * 5.0 - job.metrics().total_latency()).abs() < 1e-9);
    }
}
