//! Property-based tests for the service engine's load-bearing
//! invariants:
//!
//! 1. the event loop pops events in nondecreasing time order with FIFO
//!    tie-breaking (every scheduling decision sits on this),
//! 2. shared-cluster allocation conserves exactly-`k` chunk coverage for
//!    every resident job, under arbitrary job mixes, *weights*, and
//!    worker churn — or degrades that job (and only that job) to
//!    conventional full assignment when its slice is infeasible,
//! 3. weighted capacity splitting partitions each worker's predicted
//!    speed exactly (no capacity invented or lost), and
//! 4. end-to-end engine runs under earliest-deadline admission record
//!    every job consistently: `finished − arrival` agrees with its
//!    on-time classification, and utilization stays in `[0, 1]`.

use proptest::prelude::*;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::split_worker_capacity;
use s2c2_serve::event::{EventKind, EventQueue};
use s2c2_serve::prelude::*;
use s2c2_serve::shared_alloc::{allocate_shared, JobDemand};

/// A pool's worth of worker speeds with churn: some workers up at
/// various speeds, some churned out (zero).
fn churned_speeds(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            4 => 0.05f64..1.2,   // up
            1 => Just(0.0),      // churned out / dead
        ],
        n,
    )
}

/// A random mix of resident jobs. Weights span three orders of
/// magnitude so extreme skew is exercised, not just near-equal splits.
fn job_mix(max_jobs: usize, max_k: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((1usize..=max_k, 1usize..=16, 0.01f64..100.0), 1..=max_jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_loop_pops_in_nondecreasing_fifo_order(
        // Coarse-grained times force plenty of exact ties.
        times in proptest::collection::vec(0usize..8, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t as f64, EventKind::EpochTick { epoch: i });
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some((t, EventKind::EpochTick { epoch })) = q.pop() {
            popped.push((t, epoch));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            if w[0].0 == w[1].0 {
                // FIFO among ties: insertion order (epoch payload encodes
                // push order) must be preserved.
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at {w:?}");
            }
        }
    }

    #[test]
    fn event_loop_interleaved_pushes_stay_ordered(
        batches in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..8),
            1..8,
        ),
    ) {
        // Push a batch, pop one, push the next batch, ... — the stream of
        // popped times must still be nondecreasing *per remaining queue*:
        // i.e. every pop returns the minimum of what is queued.
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        let mut last_popped = 0.0f64;
        for batch in &batches {
            for &t in batch {
                // Only push at or after the last popped time, as the
                // engine does (no scheduling into the past).
                let t = (t as f64).max(last_popped);
                q.push(t, EventKind::EpochTick { epoch: seq });
                seq += 1;
            }
            if let Some((t, _)) = q.pop() {
                prop_assert!(t >= last_popped, "pop went backwards");
                last_popped = t;
            }
        }
        let mut rest = Vec::new();
        while let Some((t, _)) = q.pop() {
            rest.push(t);
        }
        for w in rest.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn shared_allocation_conserves_exact_coverage_per_job(
        n in 3usize..=20,
        seedspeeds in churned_speeds(20),
        mix in job_mix(5, 20),
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        let demands: Vec<JobDemand> = mix
            .iter()
            .map(|&(k, chunks, weight)| JobDemand {
                k: k.min(n),
                chunks_per_partition: chunks,
                weight,
            })
            .collect();
        let out = allocate_shared(speeds, &demands);
        prop_assert_eq!(out.len(), demands.len());

        let share_sum: f64 = out.iter().map(|s| s.share).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9, "shares must sum to 1");
        // Shares are weight-proportional: share_j · Σw == w_j.
        let total_weight: f64 = demands.iter().map(|d| d.weight).sum();
        for (d, s) in demands.iter().zip(out.iter()) {
            prop_assert!(
                (s.share * total_weight - d.weight).abs() < 1e-9 * total_weight,
                "share {} disagrees with weight {} / {total_weight}",
                s.share,
                d.weight
            );
        }

        for (d, s) in demands.iter().zip(out.iter()) {
            if d.k <= alive {
                // Feasible job: exactly-k coverage survives sharing + churn.
                prop_assert!(!s.degraded, "k={} alive={alive} needlessly degraded", d.k);
                prop_assert!(s.assignment.is_decodable(), "coverage broken for k={}", d.k);
                let cov = s.assignment.coverage();
                prop_assert!(cov.iter().all(|&c| c == d.k));
                // Churned-out workers never receive chunks.
                for (w, &sp) in speeds.iter().enumerate() {
                    if sp == 0.0 {
                        prop_assert!(s.assignment.chunks[w].is_empty());
                    }
                }
            } else {
                // Infeasible job: degrades to conventional full assignment
                // over the available workers, alone.
                prop_assert!(s.degraded, "k={} alive={alive} must degrade", d.k);
                for (w, &sp) in speeds.iter().enumerate() {
                    let expect = if sp > 0.0 { d.chunks_per_partition } else { 0 };
                    prop_assert_eq!(s.assignment.chunks[w].len(), expect);
                }
            }
        }
    }

    #[test]
    fn weighted_split_partitions_every_workers_capacity(
        n in 2usize..=20,
        seedspeeds in churned_speeds(20),
        weights in proptest::collection::vec(0.001f64..1000.0, 1..=8),
    ) {
        let speeds = &seedspeeds[..n];
        let slices = split_worker_capacity(speeds, &weights);
        prop_assert_eq!(slices.len(), weights.len());
        for (w, &speed) in speeds.iter().enumerate() {
            // The slices sum back to the worker's full predicted
            // capacity: sharing redistributes capacity, never invents
            // or loses it.
            let total: f64 = slices.iter().map(|s| s[w]).sum();
            prop_assert!(
                (total - speed).abs() < 1e-9 * speed.max(1.0),
                "worker {w}: slices sum to {total}, capacity {speed}"
            );
            // Dead workers stay dead in every slice.
            if speed == 0.0 {
                prop_assert!(slices.iter().all(|s| s[w] == 0.0));
            }
        }
    }

    #[test]
    fn degrading_one_job_never_degrades_its_neighbours(
        n in 4usize..=16,
        seedspeeds in churned_speeds(16),
        chunks in 2usize..=12,
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        prop_assume!(alive >= 2);
        // One certainly-infeasible job next to one certainly-feasible job.
        let demands = [
            JobDemand { k: n, chunks_per_partition: chunks, weight: 1.0 },
            JobDemand { k: 1, chunks_per_partition: chunks, weight: 1.0 },
        ];
        let out = allocate_shared(speeds, &demands);
        if alive < n {
            prop_assert!(out[0].degraded);
        }
        prop_assert!(!out[1].degraded, "feasible neighbour must not degrade");
        prop_assert!(out[1].assignment.is_decodable());
    }
}

proptest! {
    // Full engine runs are much heavier than allocator calls: fewer
    // cases, smaller workloads.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edf_records_are_consistent_end_to_end(
        jobs in 2usize..=10,
        rate in 0.5f64..4.0,
        // Relative SLOs from clearly-feasible to clearly-hopeless; some
        // jobs carry none at all.
        slack in proptest::collection::vec(
            prop_oneof![
                3 => 0.5f64..30.0,
                1 => Just(f64::INFINITY), // marker: no deadline
            ],
            10,
        ),
        weights in proptest::collection::vec(0.5f64..4.0, 10),
        seed in 0u64..256,
        reject in any::<bool>(),
    ) {
        let n = 8;
        let mut workload = generate_workload(
            &ArrivalPattern::Poisson { rate },
            &JobPreset::standard_mix(),
            jobs,
            3,
            n,
            seed,
        );
        for (i, (_, spec)) in workload.iter_mut().enumerate() {
            spec.weight = weights[i % weights.len()];
            let s = slack[i % slack.len()];
            if s.is_finite() {
                spec.deadline = Some(s);
            }
        }
        let pool = s2c2_cluster::ClusterSpec::builder(n)
            .compute_bound()
            .seed(seed ^ 0xABCD)
            .straggler_slowdown(5.0)
            .stragglers(&[1], 0.2)
            .build();
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.policy = QueuePolicy::EarliestDeadline;
        cfg.reject_infeasible_deadlines = reject;
        let report = ServiceEngine::new(pool, cfg).unwrap().run(&workload).unwrap();

        prop_assert_eq!(report.jobs.len(), jobs, "every job resolves exactly once");
        for j in &report.jobs {
            prop_assert!(j.finished >= j.arrival, "job {} finished before arriving", j.id);
            prop_assert!(j.admitted >= j.arrival);
            // The recorded sojourn must agree with the on-time
            // classification derived from it.
            if let Some(d) = j.deadline {
                let met = !j.failed && j.finished - j.arrival <= d + 1e-12;
                prop_assert_eq!(
                    j.on_time(), met,
                    "job {}: latency {} vs deadline {}", j.id, j.latency(), d
                );
            } else {
                prop_assert_eq!(j.on_time(), !j.failed);
            }
            if j.rejected {
                prop_assert!(j.failed, "rejection implies failure");
                prop_assert!(reject, "rejections need the admission knob");
                prop_assert!(j.deadline.is_some(), "only SLO jobs are rejected");
            }
        }
        let util = report.utilization();
        prop_assert!((0.0..=1.0).contains(&util), "utilization {util}");
        let ratio = report.on_time_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
    }
}

// Numerics parity between execution backends needs fewer, heavier cases
// than the allocation properties above: each case spawns a real
// OS-thread pool and computes actual matvecs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 5: for any small job stream, the master-side verified
    /// backend and the real-threads backend produce identical timing
    /// *and* identical decoded outputs — the coverage the timing model
    /// credits is the coverage both decode from, and chunk arithmetic
    /// is thread-placement-independent.
    #[test]
    fn sim_and_threaded_backends_decode_identically(
        jobs in 2usize..5,
        rows in 40usize..160,
        cols in 4usize..10,
        chunks in 2usize..5,
        seed in 0u64..64,
        mispredict in any::<bool>(),
    ) {
        let n = 6;
        let preset = JobPreset {
            name: "parity",
            rows,
            cols,
            k_frac: 0.67,
            chunks_per_partition: chunks,
            iterations: 2,
            weight: 1.0,
            deadline: None,
            matrix_id: Some(seed),
        };
        let workload: Vec<(f64, JobSpec)> = (0..jobs as u64)
            .map(|i| (0.03 * i as f64, preset.instantiate(i, 0, n)))
            .collect();
        let run = |backend: BackendKind| {
            let pool = s2c2_cluster::ClusterSpec::builder(n)
                .compute_bound()
                .seed(seed ^ 0xF00D)
                .straggler_slowdown(4.0)
                .stragglers(&[2], 0.2)
                .build();
            let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
                // Uniform predictions on a straggler pool exercise the
                // cancel/redo path through both backends.
                predictor: if mispredict {
                    PredictorSource::Uniform
                } else {
                    PredictorSource::LastValue
                },
            });
            cfg.backend = backend;
            ServiceEngine::new(pool, cfg).unwrap().run(&workload).unwrap()
        };
        let sim = run(BackendKind::SimVerified);
        let threaded = run(BackendKind::Threaded);

        prop_assert_eq!(&sim.jobs, &threaded.jobs, "timing must be backend-independent");
        prop_assert_eq!(sim.verified_iterations, threaded.verified_iterations);
        prop_assert_eq!(sim.encode_cache_hits, threaded.encode_cache_hits);
        prop_assert_eq!(sim.encode_cache_misses, threaded.encode_cache_misses);
        prop_assert!(sim.verified_iterations >= jobs, "every iteration verified");
        prop_assert_eq!(sim.job_outputs.len(), threaded.job_outputs.len());
        for ((ia, a), (ib, b)) in sim.job_outputs.iter().zip(threaded.job_outputs.iter()) {
            prop_assert_eq!(ia, ib);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() <= 1e-12, "job {}: {} vs {}", ia, x, y);
            }
        }
        // One shared matrix identity across the stream: the cache must
        // have amortized every encode after the first.
        prop_assert_eq!(sim.encode_cache_misses, 1);
        prop_assert_eq!(sim.encode_cache_hits as usize, jobs - 1);
    }

    /// Property 6: batching is output-invariant. For any burst of small
    /// jobs sharing one model, a batched run (size-threshold coalescing)
    /// completes exactly the job set the unbatched run completes, with
    /// per-job decoded outputs identical to 1e-12 — under the timing-only
    /// backend (record parity), the master-side verified backend, and the
    /// real-threads backend, including mispredicted rounds that force the
    /// §4.3 recovery ladder on a mid-flight batch.
    #[test]
    fn batched_and_unbatched_runs_complete_identically(
        jobs in 3usize..6,
        rows in 40usize..160,
        cols in 4usize..10,
        chunks in 2usize..5,
        max_batch in 2usize..4,
        seed in 0u64..64,
        mispredict in any::<bool>(),
    ) {
        let n = 6;
        let preset = JobPreset {
            name: "batchprop",
            rows,
            cols,
            k_frac: 0.67,
            chunks_per_partition: chunks,
            iterations: 2,
            weight: 1.0,
            deadline: None,
            matrix_id: Some(seed ^ 0xBA7C),
        };
        // A simultaneous burst behind a single residency slot: the
        // queue is deep whenever a slot frees, so coalescing happens on
        // every admission after the first.
        let workload: Vec<(f64, JobSpec)> = (0..jobs as u64)
            .map(|i| (0.0, preset.instantiate(i, (i % 2) as u32, n)))
            .collect();
        let run = |backend: BackendKind, batch: BatchPolicy| {
            let pool = s2c2_cluster::ClusterSpec::builder(n)
                .compute_bound()
                .seed(seed ^ 0xBEEF)
                .straggler_slowdown(4.0)
                .stragglers(&[2], 0.2)
                .build();
            let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
                // Uniform predictions on a straggler pool force the
                // cancel/redo ladder mid-batch.
                predictor: if mispredict {
                    PredictorSource::Uniform
                } else {
                    PredictorSource::LastValue
                },
            });
            cfg.backend = backend;
            cfg.batch = batch;
            cfg.max_resident = 1;
            ServiceEngine::new(pool, cfg).unwrap().run(&workload).unwrap()
        };
        let policy = BatchPolicy::SizeThreshold { max_batch };
        let sorted_ids = |r: &ServiceReport| {
            let mut v: Vec<u64> = r.jobs.iter().filter(|j| !j.failed).map(|j| j.id).collect();
            v.sort_unstable();
            v
        };
        let sorted_outputs = |r: &ServiceReport| {
            let mut v = r.job_outputs.clone();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        let mut batched_by_backend: Vec<ServiceReport> = Vec::new();
        for backend in [BackendKind::Sim, BackendKind::SimVerified, BackendKind::Threaded] {
            let off = run(backend, BatchPolicy::Off);
            let batched = run(backend, policy);
            prop_assert_eq!(off.completed(), jobs, "{} unbatched must serve all", backend);
            prop_assert_eq!(batched.completed(), jobs, "{} batched must serve all", backend);
            prop_assert_eq!(sorted_ids(&off), sorted_ids(&batched));
            prop_assert!(batched.batches_admitted > 0, "{}: burst must coalesce", backend);
            prop_assert_eq!(off.batches_admitted, 0);
            if backend != BackendKind::Sim {
                // Identical decoded outputs (≤ 1e-12) whether or not a
                // job rode a batch: inputs are a function of (job,
                // iteration), and both coverages decode the same A·x.
                let a = sorted_outputs(&off);
                let b = sorted_outputs(&batched);
                prop_assert_eq!(a.len(), jobs);
                prop_assert_eq!(b.len(), jobs);
                for ((ia, ya), (ib, yb)) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(ia, ib);
                    prop_assert_eq!(ya.len(), yb.len());
                    for (x, y) in ya.iter().zip(yb.iter()) {
                        prop_assert!((x - y).abs() <= 1e-12, "job {}: {} vs {}", ia, x, y);
                    }
                }
            }
            batched_by_backend.push(batched);
        }
        // Backend parity holds *under batching* too: identical timing
        // records across all three backends, identical stacked-decode
        // outputs between the two numeric backends.
        let (sim, verified, threaded) = (
            &batched_by_backend[0],
            &batched_by_backend[1],
            &batched_by_backend[2],
        );
        prop_assert_eq!(&sim.jobs, &verified.jobs);
        prop_assert_eq!(&sim.jobs, &threaded.jobs);
        prop_assert_eq!(verified.verified_iterations, threaded.verified_iterations);
        let a = sorted_outputs(verified);
        let b = sorted_outputs(threaded);
        for ((ia, ya), (ib, yb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ia, ib);
            for (x, y) in ya.iter().zip(yb.iter()) {
                prop_assert!((x - y).abs() <= 1e-12, "job {}: {} vs {}", ia, x, y);
            }
        }
    }

    /// Property 7: the structured trace is part of the deterministic
    /// surface. For any small job stream, all three execution backends
    /// emit the *identical* virtual-time event sequence (trace events
    /// carry only virtual clocks — wall time never leaks in), and the
    /// trace's recovery-rung events agree with the report's aggregate
    /// rung counters.
    #[test]
    fn trace_event_streams_are_backend_identical(
        jobs in 2usize..5,
        rows in 40usize..160,
        cols in 4usize..10,
        chunks in 2usize..5,
        seed in 0u64..64,
        mispredict in any::<bool>(),
    ) {
        let n = 6;
        let preset = JobPreset {
            name: "traceprop",
            rows,
            cols,
            k_frac: 0.67,
            chunks_per_partition: chunks,
            iterations: 2,
            weight: 1.0,
            deadline: None,
            matrix_id: Some(seed ^ 0x7124),
        };
        let workload: Vec<(f64, JobSpec)> = (0..jobs as u64)
            .map(|i| (0.03 * i as f64, preset.instantiate(i, (i % 2) as u32, n)))
            .collect();
        let run = |backend: BackendKind| {
            let pool = s2c2_cluster::ClusterSpec::builder(n)
                .compute_bound()
                .seed(seed ^ 0xF00D)
                .straggler_slowdown(4.0)
                .stragglers(&[2], 0.2)
                .build();
            let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
                // Uniform predictions on a straggler pool exercise the
                // cancel/redo rungs through the trace as well.
                predictor: if mispredict {
                    PredictorSource::Uniform
                } else {
                    PredictorSource::LastValue
                },
            });
            cfg.backend = backend;
            cfg.telemetry = true;
            ServiceEngine::new(pool, cfg).unwrap().run(&workload).unwrap()
        };
        let sim = run(BackendKind::Sim);
        let verified = run(BackendKind::SimVerified);
        let threaded = run(BackendKind::Threaded);
        let trace_of = |r: &ServiceReport| {
            r.telemetry.as_ref().expect("telemetry enabled").trace.clone()
        };
        let base = trace_of(&sim);
        prop_assert!(!base.is_empty(), "a served workload must leave a trace");
        prop_assert_eq!(&base, &trace_of(&verified), "sim-verified trace diverged");
        prop_assert_eq!(&base, &trace_of(&threaded), "threaded trace diverged");
        prop_assert_eq!(
            sim.recovery_rung_counts, base.rung_counts(),
            "aggregate rung counters must match the event log"
        );
    }

    /// Property 8: pipelining is output-invariant. For any small job
    /// stream, a window of depth 2 or 4 completes the same job set as
    /// the depth-1 barrier run with per-job decoded outputs identical
    /// to 1e-12 — on the master-side verified backend and the
    /// real-threads backend, including mispredicted rounds that climb
    /// the recovery ladder while later window rounds are in flight.
    #[test]
    fn pipelined_runs_match_depth_one_outputs(
        jobs in 2usize..5,
        rows in 40usize..160,
        cols in 4usize..10,
        chunks in 2usize..5,
        deep in prop_oneof![Just(2usize), Just(4usize)],
        seed in 0u64..64,
        mispredict in any::<bool>(),
    ) {
        let n = 6;
        let preset = JobPreset {
            name: "pipeprop",
            rows,
            cols,
            k_frac: 0.67,
            chunks_per_partition: chunks,
            // Three rounds: enough for the window to actually pipeline.
            iterations: 3,
            weight: 1.0,
            deadline: None,
            matrix_id: Some(seed ^ 0x919E),
        };
        let workload: Vec<(f64, JobSpec)> = (0..jobs as u64)
            .map(|i| (0.03 * i as f64, preset.instantiate(i, (i % 2) as u32, n)))
            .collect();
        let run = |backend: BackendKind, depth: usize| {
            let pool = s2c2_cluster::ClusterSpec::builder(n)
                .compute_bound()
                .seed(seed ^ 0xF1FE)
                .straggler_slowdown(4.0)
                .stragglers(&[2], 0.2)
                .build();
            let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
                predictor: if mispredict {
                    PredictorSource::Uniform
                } else {
                    PredictorSource::LastValue
                },
            });
            cfg.backend = backend;
            cfg.pipeline = PipelinePolicy::Depth(depth);
            ServiceEngine::new(pool, cfg).unwrap().run(&workload).unwrap()
        };
        for backend in [BackendKind::SimVerified, BackendKind::Threaded] {
            let base = run(backend, 1);
            let piped = run(backend, deep);
            prop_assert_eq!(base.completed(), jobs, "{}: depth-1 run serves all", backend);
            prop_assert_eq!(piped.completed(), jobs, "{}: depth-{} run serves all", backend, deep);
            prop_assert_eq!(
                base.verified_iterations, piped.verified_iterations,
                "{}: every round decoded and checked at both depths", backend
            );
            prop_assert!(piped.max_decode_error < 1e-6);
            prop_assert_eq!(base.job_outputs.len(), piped.job_outputs.len());
            for ((ia, a), (ib, b)) in base.job_outputs.iter().zip(piped.job_outputs.iter()) {
                prop_assert_eq!(ia, ib);
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert!(
                        (x - y).abs() <= 1e-12,
                        "{}: job {} output drifted across depths: {} vs {}",
                        backend, ia, x, y
                    );
                }
            }
        }
    }
}
