//! Property-based tests for the service engine's two load-bearing
//! invariants:
//!
//! 1. the event loop pops events in nondecreasing time order with FIFO
//!    tie-breaking (every scheduling decision sits on this), and
//! 2. shared-cluster allocation conserves exactly-`k` chunk coverage for
//!    every resident job, under arbitrary job mixes and worker churn —
//!    or degrades that job (and only that job) to conventional full
//!    assignment when its slice is infeasible.

use proptest::prelude::*;
use s2c2_serve::event::{EventKind, EventQueue};
use s2c2_serve::shared_alloc::{allocate_shared, JobDemand};

/// A pool's worth of worker speeds with churn: some workers up at
/// various speeds, some churned out (zero).
fn churned_speeds(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            4 => 0.05f64..1.2,   // up
            1 => Just(0.0),      // churned out / dead
        ],
        n,
    )
}

/// A random mix of resident jobs.
fn job_mix(max_jobs: usize, max_k: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((1usize..=max_k, 1usize..=16, 0.25f64..4.0), 1..=max_jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_loop_pops_in_nondecreasing_fifo_order(
        // Coarse-grained times force plenty of exact ties.
        times in proptest::collection::vec(0usize..8, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t as f64, EventKind::EpochTick { epoch: i });
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some((t, EventKind::EpochTick { epoch })) = q.pop() {
            popped.push((t, epoch));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            if w[0].0 == w[1].0 {
                // FIFO among ties: insertion order (epoch payload encodes
                // push order) must be preserved.
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at {w:?}");
            }
        }
    }

    #[test]
    fn event_loop_interleaved_pushes_stay_ordered(
        batches in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..8),
            1..8,
        ),
    ) {
        // Push a batch, pop one, push the next batch, ... — the stream of
        // popped times must still be nondecreasing *per remaining queue*:
        // i.e. every pop returns the minimum of what is queued.
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        let mut last_popped = 0.0f64;
        for batch in &batches {
            for &t in batch {
                // Only push at or after the last popped time, as the
                // engine does (no scheduling into the past).
                let t = (t as f64).max(last_popped);
                q.push(t, EventKind::EpochTick { epoch: seq });
                seq += 1;
            }
            if let Some((t, _)) = q.pop() {
                prop_assert!(t >= last_popped, "pop went backwards");
                last_popped = t;
            }
        }
        let mut rest = Vec::new();
        while let Some((t, _)) = q.pop() {
            rest.push(t);
        }
        for w in rest.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn shared_allocation_conserves_exact_coverage_per_job(
        n in 3usize..=20,
        seedspeeds in churned_speeds(20),
        mix in job_mix(5, 20),
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        let demands: Vec<JobDemand> = mix
            .iter()
            .map(|&(k, chunks, weight)| JobDemand {
                k: k.min(n),
                chunks_per_partition: chunks,
                weight,
            })
            .collect();
        let out = allocate_shared(speeds, &demands);
        prop_assert_eq!(out.len(), demands.len());

        let share_sum: f64 = out.iter().map(|s| s.share).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9, "shares must sum to 1");

        for (d, s) in demands.iter().zip(out.iter()) {
            if d.k <= alive {
                // Feasible job: exactly-k coverage survives sharing + churn.
                prop_assert!(!s.degraded, "k={} alive={alive} needlessly degraded", d.k);
                prop_assert!(s.assignment.is_decodable(), "coverage broken for k={}", d.k);
                let cov = s.assignment.coverage();
                prop_assert!(cov.iter().all(|&c| c == d.k));
                // Churned-out workers never receive chunks.
                for (w, &sp) in speeds.iter().enumerate() {
                    if sp == 0.0 {
                        prop_assert!(s.assignment.chunks[w].is_empty());
                    }
                }
            } else {
                // Infeasible job: degrades to conventional full assignment
                // over the available workers, alone.
                prop_assert!(s.degraded, "k={} alive={alive} must degrade", d.k);
                for (w, &sp) in speeds.iter().enumerate() {
                    let expect = if sp > 0.0 { d.chunks_per_partition } else { 0 };
                    prop_assert_eq!(s.assignment.chunks[w].len(), expect);
                }
            }
        }
    }

    #[test]
    fn degrading_one_job_never_degrades_its_neighbours(
        n in 4usize..=16,
        seedspeeds in churned_speeds(16),
        chunks in 2usize..=12,
    ) {
        let speeds = &seedspeeds[..n];
        let alive = speeds.iter().filter(|&&s| s > 0.0).count();
        prop_assume!(alive >= 2);
        // One certainly-infeasible job next to one certainly-feasible job.
        let demands = [
            JobDemand { k: n, chunks_per_partition: chunks, weight: 1.0 },
            JobDemand { k: 1, chunks_per_partition: chunks, weight: 1.0 },
        ];
        let out = allocate_shared(speeds, &demands);
        if alive < n {
            prop_assert!(out[0].degraded);
        }
        prop_assert!(!out[1].degraded, "feasible neighbour must not degrade");
        prop_assert!(out[1].assignment.is_decodable());
    }
}
