//! # s2c2-serve — event-driven multi-job service over a shared coded pool
//!
//! The paper schedules *one* coded job at a time; a production service
//! faces many concurrent jobs contending for one worker pool, bursty
//! arrivals, queueing, and tail-latency SLOs (the regime targeted by the
//! serverless and rateless-coding lines of related work). This crate
//! supplies that layer:
//!
//! * [`event`] — the typed discrete-event core: a binary-heap
//!   [`event::EventQueue`] over `JobArrival` / `TaskComplete` /
//!   `WorkerSpeedChange` / `Timeout` / `WorkerChurn` events, with
//!   deterministic FIFO tie-breaking.
//! * [`workload`] — Poisson and trace-driven arrival generators over
//!   heterogeneous job presets (matvec shapes, `(n, k)` parameters,
//!   iteration counts, per-job capacity weights and deadline SLOs).
//! * [`admission`] — pluggable queueing policies: FIFO,
//!   shortest-expected-work, tenant fair-share, earliest-deadline, and
//!   weighted fair-share.
//! * [`shared_alloc`] — Algorithm 1 extended to a shared cluster: each
//!   worker's capacity is split across resident jobs in proportion to
//!   their weights (via [`s2c2_core::split_worker_capacity`]) while
//!   every job keeps its exactly-`k` chunk coverage; infeasible jobs
//!   degrade to conventional coded computing, alone.
//! * [`engine`] — the [`engine::ServiceEngine`] tying it together, with
//!   worker churn, §4.3-style timeout recovery, a retry ladder,
//!   work-conserving share rebalancing at every resident-set change,
//!   optional deadline admission control, per-tenant token-bucket rate
//!   limiting, and deadline-aware share boosting. Execution is
//!   pluggable ([`engine::BackendKind`]): timing-only simulation,
//!   master-side verified numerics, or real OS-thread workers over
//!   [`s2c2_cluster::threaded::ThreadedCluster`] with an encode cache
//!   shared across recurring jobs.
//! * [`metrics`] — service-level reporting: sojourn-latency percentiles
//!   (p50/p95/p99), throughput, utilization, queue depth over time, and
//!   per-tenant QoS summaries (on-time ratio, achieved vs entitled
//!   capacity share).
//!
//! # Quickstart
//!
//! ```
//! use s2c2_serve::prelude::*;
//! use s2c2_cluster::ClusterSpec;
//! use s2c2_core::speed_tracker::PredictorSource;
//!
//! # fn main() -> Result<(), s2c2_serve::engine::ServeError> {
//! // A 12-worker pool with two hidden 5x stragglers.
//! let pool = ClusterSpec::builder(12)
//!     .compute_bound()
//!     .stragglers(&[3, 8], 0.2)
//!     .build();
//!
//! // 20 jobs arriving at 1.5 jobs/s from the standard size mix.
//! let jobs = generate_workload(
//!     &ArrivalPattern::Poisson { rate: 1.5 },
//!     &JobPreset::standard_mix(),
//!     20, 3, 12, 42,
//! );
//!
//! let cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
//!     predictor: PredictorSource::LastValue,
//! });
//! let report = ServiceEngine::new(pool, cfg)?.run(&jobs)?;
//! assert_eq!(report.completed(), 20);
//! println!("p99 sojourn: {:.3}s", report.latency_percentile(99.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod shared_alloc;
pub mod workload;

pub use admission::{
    batch_key, BatchKey, BatchPolicy, QueuePolicy, QueuedJob, RateLimit, ResidentInfo,
};
pub use engine::{
    BackendKind, ChurnConfig, DeadlineBoost, PipelinePolicy, SchedulerMode, ServeConfig,
    ServeError, ServiceEngine,
};
pub use event::{EventKind, EventQueue, JobId};
pub use metrics::{percentile, JobRecord, ServiceReport, TenantSummary};
pub use s2c2_telemetry::{PhaseTotals, Telemetry, TraceEvent, TraceEventKind};
pub use shared_alloc::{allocate_shared, full_over_available, JobDemand, SharedAssignment};
pub use workload::{generate_workload, ArrivalPattern, JobPreset, JobSpec};

/// One-stop imports for service-engine users.
pub mod prelude {
    pub use crate::admission::{BatchPolicy, QueuePolicy, RateLimit};
    pub use crate::engine::{
        BackendKind, ChurnConfig, DeadlineBoost, PipelinePolicy, SchedulerMode, ServeConfig,
        ServiceEngine,
    };
    pub use crate::metrics::{ServiceReport, TenantSummary};
    pub use crate::workload::{generate_workload, ArrivalPattern, JobPreset, JobSpec};
    pub use s2c2_telemetry::{PhaseTotals, Telemetry, TraceEvent, TraceEventKind};
}
