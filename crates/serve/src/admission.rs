//! Admission and queueing policies.
//!
//! The engine admits at most `max_resident` jobs onto the shared pool at
//! once; everything else waits in the admission queue. The policy decides
//! *which* queued job is admitted when a slot frees up — the classic
//! scheduling lever for tail latency under load, and (with
//! [`QueuePolicy::EarliestDeadline`] / [`QueuePolicy::WeightedFairShare`])
//! the QoS lever for deadline hit rates and tenant entitlements.

use crate::workload::JobSpec;
use std::collections::BTreeMap;

/// A job waiting in the admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// The job.
    pub spec: JobSpec,
    /// When it arrived (event time).
    pub arrival: f64,
}

impl QueuedJob {
    /// Absolute deadline instant (`arrival + relative SLO`), or infinity
    /// for jobs without one — so deadline-ordered comparisons place
    /// SLO-less jobs last.
    #[must_use]
    pub fn absolute_deadline(&self) -> f64 {
        self.spec
            .deadline
            .map_or(f64::INFINITY, |d| self.arrival + d)
    }
}

/// Token-bucket rate limit on one tenant's admissions.
///
/// A tenant accrues `rate` tokens per second up to a `burst` ceiling;
/// each arriving job spends one token or is refused outright (recorded
/// as `rate_limited`, counted separately from deadline rejections).
/// Weights bound a tenant's *relative* share once resident; this is the
/// complementary absolute cap on how fast it may enter at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate, in jobs per second (> 0).
    pub rate: f64,
    /// Burst capacity, in jobs (≥ 1; the bucket starts full).
    pub burst: f64,
}

/// Running token-bucket state for one tenant (virtual-time refill).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last_refill: f64,
}

impl TokenBucket {
    /// A full bucket under `limit`.
    pub(crate) fn new(limit: RateLimit) -> Self {
        TokenBucket {
            limit,
            tokens: limit.burst,
            last_refill: 0.0,
        }
    }

    /// Refills for the elapsed virtual time, then tries to spend one
    /// token. Returns whether the arrival is admitted.
    pub(crate) fn try_admit(&mut self, now: f64) -> bool {
        let elapsed = (now - self.last_refill).max(0.0);
        self.tokens = (self.tokens + elapsed * self.limit.rate).min(self.limit.burst);
        self.last_refill = self.last_refill.max(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// How the engine coalesces queued small jobs into shared batch rounds.
///
/// S²C²'s advantage comes from amortizing coding work across the
/// computation it protects; at high arrival rates a stream of small
/// jobs gives that advantage back, because every job pays its own
/// encode lookup, dispatch round-trip, decode, and residency slot. A
/// batch groups queued jobs that share a [`batch key`](batch_key) —
/// same model matrix *and* code geometry — into one round: a single
/// cache-backed encode, one stacked multi-RHS dispatch per worker, one
/// decode LU factorization per chunk, and one residency slot for the
/// whole group. Per-job identity survives: QoS (weights, deadlines,
/// boosts, rate limits) and all reporting see the member jobs, never
/// the batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// No batching (default): every job runs its own rounds. The engine
    /// is byte-identical to the pre-batching behavior.
    Off,
    /// Opportunistic coalescing: when a residency slot frees, the
    /// admission policy's pick is admitted together with every queued
    /// job sharing its batch key, up to `max_batch` members per round.
    /// Never delays the pick, so policy ordering (FIFO/EDF/weighted
    /// fair-share) is preserved exactly — mates merely ride along.
    SizeThreshold {
        /// Size threshold: a round is capped at this many member jobs
        /// (≥ 2; the threshold flushes immediately when reached).
        max_batch: usize,
    },
    /// Like [`BatchPolicy::SizeThreshold`], but a batchable pick whose
    /// group is still below `max_batch` is additionally held for up to
    /// `window` seconds after the group's earliest arrival, so mates
    /// can accumulate even while slots are free. Reaching `max_batch`
    /// flushes early; the window expiring flushes whatever gathered.
    /// While one key's group is held, other queued jobs (different key
    /// or none) are admitted normally — the window delays only its own
    /// group, so no other job is ever starved by it.
    TimeWindow {
        /// Seconds a batchable pick may be held past the group's
        /// earliest arrival (finite, > 0).
        window: f64,
        /// Size cap that flushes the group early (≥ 2).
        max_batch: usize,
    },
}

impl BatchPolicy {
    /// Whether this policy ever groups jobs.
    #[must_use]
    pub fn enabled(&self) -> bool {
        !matches!(self, BatchPolicy::Off)
    }

    /// The member cap of one batch round (1 when batching is off).
    #[must_use]
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Off => 1,
            BatchPolicy::SizeThreshold { max_batch }
            | BatchPolicy::TimeWindow { max_batch, .. } => max_batch,
        }
    }
}

impl std::fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchPolicy::Off => f.write_str("off"),
            BatchPolicy::SizeThreshold { max_batch } => write!(f, "size({max_batch})"),
            BatchPolicy::TimeWindow { window, max_batch } => {
                write!(f, "window({window}s,{max_batch})")
            }
        }
    }
}

/// The identity that makes two jobs batchable onto one round (the
/// return of [`batch_key`]): `(matrix_id, rows, cols, k,
/// chunks_per_partition, iterations)`.
pub type BatchKey = (u64, usize, usize, usize, usize, usize);

/// What makes two queued jobs batchable onto one round: the same model
/// matrix (identity *and* shape — one encode serves both) and the same
/// code geometry and iteration count (so their rounds stay in lockstep
/// from admission to completion). Weights, deadlines, and tenants may
/// differ — those stay per-member.
#[must_use]
pub fn batch_key(spec: &JobSpec) -> BatchKey {
    (
        spec.matrix_id,
        spec.rows,
        spec.cols,
        spec.k,
        spec.chunks_per_partition,
        spec.iterations,
    )
}

/// What the policy knows about one currently-resident job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentInfo {
    /// Owning tenant.
    pub tenant: u32,
    /// Capacity weight the job holds while resident.
    pub weight: f64,
}

/// Which queued job gets the next free residency slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Earliest arrival first (ties by id).
    Fifo,
    /// Least total remaining work first — the classic mean-latency
    /// optimizer; can starve large jobs under sustained load.
    ShortestExpectedWork,
    /// Max-min fairness across tenants: admit from the tenant with the
    /// fewest currently-resident jobs (FIFO within a tenant).
    FairShare,
    /// Least slack to deadline first: admit the job whose absolute
    /// deadline (`arrival + SLO`) is earliest; jobs without a deadline
    /// queue behind every deadline-carrying job, FIFO among themselves.
    EarliestDeadline,
    /// Weight-normalized fairness across tenants: admit the job whose
    /// tenant holds the least resident capacity *relative to the job's
    /// weight* (`resident_weight[tenant] / job.weight`), so a weight-2
    /// tenant is entitled to hold twice the resident mass before it
    /// yields to a weight-1 tenant.
    WeightedFairShare,
}

impl QueuePolicy {
    /// Picks the index (into `queue`) of the job to admit next, given the
    /// currently-resident jobs' tenants and weights. Returns `None` on an
    /// empty queue. Deterministic: all ties break by `(arrival, id)`,
    /// with arrivals compared via [`f64::total_cmp`] (bit-pattern
    /// ordering of `to_bits` mis-orders negative floats).
    #[must_use]
    pub fn pick(&self, queue: &[QueuedJob], residents: &[ResidentInfo]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let by_arrival = |a: usize, b: usize| {
            queue[a]
                .arrival
                .total_cmp(&queue[b].arrival)
                .then(queue[a].spec.id.cmp(&queue[b].spec.id))
        };
        let idx = match self {
            QueuePolicy::Fifo => (0..queue.len()).min_by(|&a, &b| by_arrival(a, b)),
            QueuePolicy::ShortestExpectedWork => (0..queue.len()).min_by(|&a, &b| {
                queue[a]
                    .spec
                    .total_work()
                    .total_cmp(&queue[b].spec.total_work())
                    .then_with(|| by_arrival(a, b))
            }),
            QueuePolicy::FairShare => {
                // One pass over the resident set, then O(1) per queued
                // job — not an O(queue × residents) rescan.
                let mut count: BTreeMap<u32, usize> = BTreeMap::new();
                for r in residents {
                    *count.entry(r.tenant).or_insert(0) += 1;
                }
                let resident_of = |t: u32| count.get(&t).copied().unwrap_or(0);
                (0..queue.len()).min_by(|&a, &b| {
                    resident_of(queue[a].spec.tenant)
                        .cmp(&resident_of(queue[b].spec.tenant))
                        .then_with(|| by_arrival(a, b))
                })
            }
            QueuePolicy::EarliestDeadline => (0..queue.len()).min_by(|&a, &b| {
                queue[a]
                    .absolute_deadline()
                    .total_cmp(&queue[b].absolute_deadline())
                    .then_with(|| by_arrival(a, b))
            }),
            QueuePolicy::WeightedFairShare => {
                let mut mass: BTreeMap<u32, f64> = BTreeMap::new();
                for r in residents {
                    *mass.entry(r.tenant).or_insert(0.0) += r.weight;
                }
                let normalized = |i: usize| {
                    let held = mass.get(&queue[i].spec.tenant).copied().unwrap_or(0.0);
                    held / queue[i].spec.weight.max(f64::MIN_POSITIVE)
                };
                (0..queue.len()).min_by(|&a, &b| {
                    normalized(a)
                        .total_cmp(&normalized(b))
                        .then_with(|| by_arrival(a, b))
                })
            }
        };
        idx
    }

    /// Returns `head` plus up to `max_batch − 1` queued mates sharing its
    /// [`batch_key`], in this policy's admission order (the head stays
    /// first). The engine's batch-aware admission calls this after
    /// [`Self::pick`]: the policy's pick is never displaced by
    /// gathering — mates ride along behind it, themselves ordered the
    /// way the policy would have admitted them (so a flushed batch under
    /// earliest-deadline lists members by ascending deadline).
    pub(crate) fn gather_batch(
        &self,
        queue: &[QueuedJob],
        residents: &[ResidentInfo],
        head: usize,
        max_batch: usize,
    ) -> Vec<usize> {
        let key = batch_key(&queue[head].spec);
        let mut group = vec![head];
        let mut mates: Vec<usize> = (0..queue.len())
            .filter(|&i| i != head && batch_key(&queue[i].spec) == key)
            .collect();
        while group.len() < max_batch && !mates.is_empty() {
            let cand: Vec<QueuedJob> = mates.iter().map(|&i| queue[i].clone()).collect();
            // `pick` returns None only for an empty queue and the loop
            // guard keeps `mates` non-empty; if a policy ever declined
            // anyway, stop growing the batch rather than panic.
            let Some(ci) = self.pick(&cand, residents) else {
                break;
            };
            group.push(mates.remove(ci));
        }
        group
    }
}

impl std::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::ShortestExpectedWork => "shortest-work",
            QueuePolicy::FairShare => "fair-share",
            QueuePolicy::EarliestDeadline => "earliest-deadline",
            QueuePolicy::WeightedFairShare => "weighted-fair-share",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::JobPreset;

    fn queued(id: u64, tenant: u32, arrival: f64, preset: JobPreset) -> QueuedJob {
        QueuedJob {
            spec: preset.instantiate(id, tenant, 8),
            arrival,
        }
    }

    fn resident(tenant: u32, weight: f64) -> ResidentInfo {
        ResidentInfo { tenant, weight }
    }

    #[test]
    fn fifo_takes_earliest_arrival() {
        let q = vec![
            queued(2, 0, 5.0, JobPreset::small()),
            queued(0, 0, 1.0, JobPreset::large()),
            queued(1, 0, 3.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn fifo_orders_negative_arrivals_correctly() {
        // to_bits ordering put every negative float *after* every
        // positive one; total_cmp must not.
        let q = vec![
            queued(0, 0, 0.5, JobPreset::small()),
            queued(1, 0, -1.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn shortest_work_prefers_small_jobs() {
        let q = vec![
            queued(0, 0, 0.0, JobPreset::large()),
            queued(1, 0, 9.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::ShortestExpectedWork.pick(&q, &[]), Some(1));
    }

    #[test]
    fn fair_share_balances_tenants() {
        // Tenant 0 already has two resident jobs, tenant 1 none: the
        // tenant-1 job wins even though it arrived later.
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small()),
            queued(1, 1, 4.0, JobPreset::small()),
        ];
        let two_zero = [resident(0, 1.0), resident(0, 1.0)];
        assert_eq!(QueuePolicy::FairShare.pick(&q, &two_zero), Some(1));
        // With equal residency, FIFO order applies.
        let one_each = [resident(0, 1.0), resident(1, 1.0)];
        assert_eq!(QueuePolicy::FairShare.pick(&q, &one_each), Some(0));
    }

    #[test]
    fn earliest_deadline_prefers_least_slack() {
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small().with_deadline(10.0)),
            queued(1, 0, 2.0, JobPreset::small().with_deadline(3.0)), // abs 5.0
            queued(2, 0, 1.0, JobPreset::small()),                    // no SLO -> last
        ];
        assert_eq!(QueuePolicy::EarliestDeadline.pick(&q, &[]), Some(1));
        // SLO-less jobs order FIFO behind every deadline-carrying job.
        let q2 = vec![
            queued(0, 0, 4.0, JobPreset::small()),
            queued(1, 0, 1.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::EarliestDeadline.pick(&q2, &[]), Some(1));
    }

    #[test]
    fn weighted_fair_share_respects_entitlements() {
        // Tenant 1 (weight-2 jobs) holds 2.0 resident mass, tenant 0
        // (weight-1 jobs) holds 1.0: normalized residency is equal
        // (2/2 == 1/1), so FIFO breaks the tie...
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small()),
            queued(1, 1, 1.0, JobPreset::small().with_weight(2.0)),
        ];
        let balanced = [resident(0, 1.0), resident(1, 2.0)];
        assert_eq!(QueuePolicy::WeightedFairShare.pick(&q, &balanced), Some(0));
        // ...but once tenant 1 has no residents it wins despite arriving
        // later (0/2 < 1/1).
        let only_zero = [resident(0, 1.0)];
        assert_eq!(QueuePolicy::WeightedFairShare.pick(&q, &only_zero), Some(1));
    }

    #[test]
    fn empty_queue_picks_nothing() {
        for p in [
            QueuePolicy::Fifo,
            QueuePolicy::ShortestExpectedWork,
            QueuePolicy::FairShare,
            QueuePolicy::EarliestDeadline,
            QueuePolicy::WeightedFairShare,
        ] {
            assert_eq!(p.pick(&[], &[]), None);
        }
    }

    #[test]
    fn ties_break_by_id() {
        let q = vec![
            queued(7, 0, 2.0, JobPreset::small()),
            queued(3, 0, 2.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn absolute_deadline_is_arrival_anchored() {
        let j = queued(0, 0, 3.0, JobPreset::small().with_deadline(2.0));
        assert!((j.absolute_deadline() - 5.0).abs() < 1e-12);
        let no_slo = queued(1, 0, 3.0, JobPreset::small());
        assert_eq!(no_slo.absolute_deadline(), f64::INFINITY);
    }

    #[test]
    fn token_bucket_caps_bursts_and_refills() {
        let mut b = TokenBucket::new(RateLimit {
            rate: 2.0,
            burst: 3.0,
        });
        // The burst drains in three back-to-back arrivals...
        assert!(b.try_admit(0.0));
        assert!(b.try_admit(0.0));
        assert!(b.try_admit(0.0));
        assert!(!b.try_admit(0.0), "burst exhausted");
        assert!(!b.try_admit(0.2), "0.4 tokens accrued, still short");
        // ...then refills at 2 tokens/s, capped at the burst ceiling.
        assert!(b.try_admit(0.5));
        assert!(b.try_admit(100.0));
        assert!(b.try_admit(100.0));
        assert!(b.try_admit(100.0));
        assert!(!b.try_admit(100.0), "refill is capped at burst");
    }

    #[test]
    fn token_bucket_ignores_time_regressions() {
        let mut b = TokenBucket::new(RateLimit {
            rate: 1.0,
            burst: 1.0,
        });
        assert!(b.try_admit(5.0));
        // An earlier timestamp must not mint tokens or move time back.
        assert!(!b.try_admit(4.0));
        assert!(b.try_admit(6.0));
    }

    #[test]
    fn batch_key_separates_geometry_and_identity() {
        let a = JobPreset::small().instantiate(0, 0, 8);
        let b = JobPreset::small().instantiate(1, 2, 8).with_weight(3.0);
        // Same preset: same matrix and geometry — batchable, even across
        // tenants and weights.
        assert_eq!(batch_key(&a), batch_key(&b));
        // Different model identity or shape: not batchable.
        let c = JobPreset::small().with_matrix_id(99).instantiate(2, 0, 8);
        let d = JobPreset::medium().instantiate(3, 0, 8);
        assert_ne!(batch_key(&a), batch_key(&c));
        assert_ne!(batch_key(&a), batch_key(&d));
    }

    #[test]
    fn gather_batch_keeps_head_first_and_policy_orders_mates() {
        // Four batchable small jobs with deadlines + one medium outsider.
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small().with_deadline(9.0)),
            queued(1, 0, 0.1, JobPreset::small().with_deadline(2.0)),
            queued(2, 0, 0.2, JobPreset::medium().with_deadline(20.0)),
            queued(3, 0, 0.3, JobPreset::small().with_deadline(5.0)),
            queued(4, 0, 0.4, JobPreset::small().with_deadline(3.0)),
        ];
        let policy = QueuePolicy::EarliestDeadline;
        // EDF head is job 1 (abs deadline 2.1).
        let head = policy.pick(&q, &[]).unwrap();
        assert_eq!(head, 1);
        // Mates gathered in EDF order behind the head; the medium job
        // (different batch key) never joins.
        let group = policy.gather_batch(&q, &[], head, 4);
        assert_eq!(group, vec![1, 4, 3, 0]);
        // The size cap truncates the tail, never the head.
        assert_eq!(policy.gather_batch(&q, &[], head, 2), vec![1, 4]);
        assert_eq!(policy.gather_batch(&q, &[], head, 1), vec![1]);
    }

    #[test]
    fn batch_policy_helpers() {
        assert!(!BatchPolicy::Off.enabled());
        assert_eq!(BatchPolicy::Off.max_batch(), 1);
        let size = BatchPolicy::SizeThreshold { max_batch: 4 };
        assert!(size.enabled());
        assert_eq!(size.max_batch(), 4);
        assert_eq!(size.to_string(), "size(4)");
        let window = BatchPolicy::TimeWindow {
            window: 0.5,
            max_batch: 3,
        };
        assert_eq!(window.max_batch(), 3);
        assert_eq!(window.to_string(), "window(0.5s,3)");
        assert_eq!(BatchPolicy::Off.to_string(), "off");
    }

    #[test]
    fn display_names() {
        assert_eq!(QueuePolicy::FairShare.to_string(), "fair-share");
        assert_eq!(
            QueuePolicy::EarliestDeadline.to_string(),
            "earliest-deadline"
        );
        assert_eq!(
            QueuePolicy::WeightedFairShare.to_string(),
            "weighted-fair-share"
        );
    }
}
