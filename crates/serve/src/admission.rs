//! Admission and queueing policies.
//!
//! The engine admits at most `max_resident` jobs onto the shared pool at
//! once; everything else waits in the admission queue. The policy decides
//! *which* queued job is admitted when a slot frees up — the classic
//! scheduling lever for tail latency under load.

use crate::workload::JobSpec;

/// A job waiting in the admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// The job.
    pub spec: JobSpec,
    /// When it arrived (event time).
    pub arrival: f64,
}

/// Which queued job gets the next free residency slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Earliest arrival first (ties by id).
    Fifo,
    /// Least total remaining work first — the classic mean-latency
    /// optimizer; can starve large jobs under sustained load.
    ShortestExpectedWork,
    /// Max-min fairness across tenants: admit from the tenant with the
    /// fewest currently-resident jobs (FIFO within a tenant).
    FairShare,
}

impl QueuePolicy {
    /// Picks the index (into `queue`) of the job to admit next, given the
    /// tenants of currently-resident jobs. Returns `None` on an empty
    /// queue. Deterministic: all ties break by `(arrival, id)`.
    #[must_use]
    pub fn pick(&self, queue: &[QueuedJob], resident_tenants: &[u32]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let by_arrival =
            |i: usize| (queue[i].arrival.to_bits(), queue[i].spec.id) /* total order */;
        let idx = match self {
            QueuePolicy::Fifo => (0..queue.len()).min_by_key(|&i| by_arrival(i)),
            QueuePolicy::ShortestExpectedWork => (0..queue.len()).min_by(|&a, &b| {
                queue[a]
                    .spec
                    .total_work()
                    .total_cmp(&queue[b].spec.total_work())
                    .then_with(|| by_arrival(a).cmp(&by_arrival(b)))
            }),
            QueuePolicy::FairShare => {
                let resident_of = |t: u32| resident_tenants.iter().filter(|&&r| r == t).count();
                (0..queue.len()).min_by_key(|&i| (resident_of(queue[i].spec.tenant), by_arrival(i)))
            }
        };
        idx
    }
}

impl std::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::ShortestExpectedWork => "shortest-work",
            QueuePolicy::FairShare => "fair-share",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::JobPreset;

    fn queued(id: u64, tenant: u32, arrival: f64, preset: JobPreset) -> QueuedJob {
        QueuedJob {
            spec: preset.instantiate(id, tenant, 8),
            arrival,
        }
    }

    #[test]
    fn fifo_takes_earliest_arrival() {
        let q = vec![
            queued(2, 0, 5.0, JobPreset::small()),
            queued(0, 0, 1.0, JobPreset::large()),
            queued(1, 0, 3.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn shortest_work_prefers_small_jobs() {
        let q = vec![
            queued(0, 0, 0.0, JobPreset::large()),
            queued(1, 0, 9.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::ShortestExpectedWork.pick(&q, &[]), Some(1));
    }

    #[test]
    fn fair_share_balances_tenants() {
        // Tenant 0 already has two resident jobs, tenant 1 none: the
        // tenant-1 job wins even though it arrived later.
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small()),
            queued(1, 1, 4.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::FairShare.pick(&q, &[0, 0]), Some(1));
        // With equal residency, FIFO order applies.
        assert_eq!(QueuePolicy::FairShare.pick(&q, &[0, 1]), Some(0));
    }

    #[test]
    fn empty_queue_picks_nothing() {
        for p in [
            QueuePolicy::Fifo,
            QueuePolicy::ShortestExpectedWork,
            QueuePolicy::FairShare,
        ] {
            assert_eq!(p.pick(&[], &[]), None);
        }
    }

    #[test]
    fn ties_break_by_id() {
        let q = vec![
            queued(7, 0, 2.0, JobPreset::small()),
            queued(3, 0, 2.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn display_names() {
        assert_eq!(QueuePolicy::FairShare.to_string(), "fair-share");
    }
}
