//! Admission and queueing policies.
//!
//! The engine admits at most `max_resident` jobs onto the shared pool at
//! once; everything else waits in the admission queue. The policy decides
//! *which* queued job is admitted when a slot frees up — the classic
//! scheduling lever for tail latency under load, and (with
//! [`QueuePolicy::EarliestDeadline`] / [`QueuePolicy::WeightedFairShare`])
//! the QoS lever for deadline hit rates and tenant entitlements.

use crate::workload::JobSpec;
use std::collections::BTreeMap;

/// A job waiting in the admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// The job.
    pub spec: JobSpec,
    /// When it arrived (event time).
    pub arrival: f64,
}

impl QueuedJob {
    /// Absolute deadline instant (`arrival + relative SLO`), or infinity
    /// for jobs without one — so deadline-ordered comparisons place
    /// SLO-less jobs last.
    #[must_use]
    pub fn absolute_deadline(&self) -> f64 {
        self.spec
            .deadline
            .map_or(f64::INFINITY, |d| self.arrival + d)
    }
}

/// Token-bucket rate limit on one tenant's admissions.
///
/// A tenant accrues `rate` tokens per second up to a `burst` ceiling;
/// each arriving job spends one token or is refused outright (recorded
/// as `rate_limited`, counted separately from deadline rejections).
/// Weights bound a tenant's *relative* share once resident; this is the
/// complementary absolute cap on how fast it may enter at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate, in jobs per second (> 0).
    pub rate: f64,
    /// Burst capacity, in jobs (≥ 1; the bucket starts full).
    pub burst: f64,
}

/// Running token-bucket state for one tenant (virtual-time refill).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last_refill: f64,
}

impl TokenBucket {
    /// A full bucket under `limit`.
    pub(crate) fn new(limit: RateLimit) -> Self {
        TokenBucket {
            limit,
            tokens: limit.burst,
            last_refill: 0.0,
        }
    }

    /// Refills for the elapsed virtual time, then tries to spend one
    /// token. Returns whether the arrival is admitted.
    pub(crate) fn try_admit(&mut self, now: f64) -> bool {
        let elapsed = (now - self.last_refill).max(0.0);
        self.tokens = (self.tokens + elapsed * self.limit.rate).min(self.limit.burst);
        self.last_refill = self.last_refill.max(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What the policy knows about one currently-resident job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentInfo {
    /// Owning tenant.
    pub tenant: u32,
    /// Capacity weight the job holds while resident.
    pub weight: f64,
}

/// Which queued job gets the next free residency slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Earliest arrival first (ties by id).
    Fifo,
    /// Least total remaining work first — the classic mean-latency
    /// optimizer; can starve large jobs under sustained load.
    ShortestExpectedWork,
    /// Max-min fairness across tenants: admit from the tenant with the
    /// fewest currently-resident jobs (FIFO within a tenant).
    FairShare,
    /// Least slack to deadline first: admit the job whose absolute
    /// deadline (`arrival + SLO`) is earliest; jobs without a deadline
    /// queue behind every deadline-carrying job, FIFO among themselves.
    EarliestDeadline,
    /// Weight-normalized fairness across tenants: admit the job whose
    /// tenant holds the least resident capacity *relative to the job's
    /// weight* (`resident_weight[tenant] / job.weight`), so a weight-2
    /// tenant is entitled to hold twice the resident mass before it
    /// yields to a weight-1 tenant.
    WeightedFairShare,
}

impl QueuePolicy {
    /// Picks the index (into `queue`) of the job to admit next, given the
    /// currently-resident jobs' tenants and weights. Returns `None` on an
    /// empty queue. Deterministic: all ties break by `(arrival, id)`,
    /// with arrivals compared via [`f64::total_cmp`] (bit-pattern
    /// ordering of `to_bits` mis-orders negative floats).
    #[must_use]
    pub fn pick(&self, queue: &[QueuedJob], residents: &[ResidentInfo]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let by_arrival = |a: usize, b: usize| {
            queue[a]
                .arrival
                .total_cmp(&queue[b].arrival)
                .then(queue[a].spec.id.cmp(&queue[b].spec.id))
        };
        let idx = match self {
            QueuePolicy::Fifo => (0..queue.len()).min_by(|&a, &b| by_arrival(a, b)),
            QueuePolicy::ShortestExpectedWork => (0..queue.len()).min_by(|&a, &b| {
                queue[a]
                    .spec
                    .total_work()
                    .total_cmp(&queue[b].spec.total_work())
                    .then_with(|| by_arrival(a, b))
            }),
            QueuePolicy::FairShare => {
                // One pass over the resident set, then O(1) per queued
                // job — not an O(queue × residents) rescan.
                let mut count: BTreeMap<u32, usize> = BTreeMap::new();
                for r in residents {
                    *count.entry(r.tenant).or_insert(0) += 1;
                }
                let resident_of = |t: u32| count.get(&t).copied().unwrap_or(0);
                (0..queue.len()).min_by(|&a, &b| {
                    resident_of(queue[a].spec.tenant)
                        .cmp(&resident_of(queue[b].spec.tenant))
                        .then_with(|| by_arrival(a, b))
                })
            }
            QueuePolicy::EarliestDeadline => (0..queue.len()).min_by(|&a, &b| {
                queue[a]
                    .absolute_deadline()
                    .total_cmp(&queue[b].absolute_deadline())
                    .then_with(|| by_arrival(a, b))
            }),
            QueuePolicy::WeightedFairShare => {
                let mut mass: BTreeMap<u32, f64> = BTreeMap::new();
                for r in residents {
                    *mass.entry(r.tenant).or_insert(0.0) += r.weight;
                }
                let normalized = |i: usize| {
                    let held = mass.get(&queue[i].spec.tenant).copied().unwrap_or(0.0);
                    held / queue[i].spec.weight.max(f64::MIN_POSITIVE)
                };
                (0..queue.len()).min_by(|&a, &b| {
                    normalized(a)
                        .total_cmp(&normalized(b))
                        .then_with(|| by_arrival(a, b))
                })
            }
        };
        idx
    }
}

impl std::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::ShortestExpectedWork => "shortest-work",
            QueuePolicy::FairShare => "fair-share",
            QueuePolicy::EarliestDeadline => "earliest-deadline",
            QueuePolicy::WeightedFairShare => "weighted-fair-share",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::JobPreset;

    fn queued(id: u64, tenant: u32, arrival: f64, preset: JobPreset) -> QueuedJob {
        QueuedJob {
            spec: preset.instantiate(id, tenant, 8),
            arrival,
        }
    }

    fn resident(tenant: u32, weight: f64) -> ResidentInfo {
        ResidentInfo { tenant, weight }
    }

    #[test]
    fn fifo_takes_earliest_arrival() {
        let q = vec![
            queued(2, 0, 5.0, JobPreset::small()),
            queued(0, 0, 1.0, JobPreset::large()),
            queued(1, 0, 3.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn fifo_orders_negative_arrivals_correctly() {
        // to_bits ordering put every negative float *after* every
        // positive one; total_cmp must not.
        let q = vec![
            queued(0, 0, 0.5, JobPreset::small()),
            queued(1, 0, -1.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn shortest_work_prefers_small_jobs() {
        let q = vec![
            queued(0, 0, 0.0, JobPreset::large()),
            queued(1, 0, 9.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::ShortestExpectedWork.pick(&q, &[]), Some(1));
    }

    #[test]
    fn fair_share_balances_tenants() {
        // Tenant 0 already has two resident jobs, tenant 1 none: the
        // tenant-1 job wins even though it arrived later.
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small()),
            queued(1, 1, 4.0, JobPreset::small()),
        ];
        let two_zero = [resident(0, 1.0), resident(0, 1.0)];
        assert_eq!(QueuePolicy::FairShare.pick(&q, &two_zero), Some(1));
        // With equal residency, FIFO order applies.
        let one_each = [resident(0, 1.0), resident(1, 1.0)];
        assert_eq!(QueuePolicy::FairShare.pick(&q, &one_each), Some(0));
    }

    #[test]
    fn earliest_deadline_prefers_least_slack() {
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small().with_deadline(10.0)),
            queued(1, 0, 2.0, JobPreset::small().with_deadline(3.0)), // abs 5.0
            queued(2, 0, 1.0, JobPreset::small()),                    // no SLO -> last
        ];
        assert_eq!(QueuePolicy::EarliestDeadline.pick(&q, &[]), Some(1));
        // SLO-less jobs order FIFO behind every deadline-carrying job.
        let q2 = vec![
            queued(0, 0, 4.0, JobPreset::small()),
            queued(1, 0, 1.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::EarliestDeadline.pick(&q2, &[]), Some(1));
    }

    #[test]
    fn weighted_fair_share_respects_entitlements() {
        // Tenant 1 (weight-2 jobs) holds 2.0 resident mass, tenant 0
        // (weight-1 jobs) holds 1.0: normalized residency is equal
        // (2/2 == 1/1), so FIFO breaks the tie...
        let q = vec![
            queued(0, 0, 0.0, JobPreset::small()),
            queued(1, 1, 1.0, JobPreset::small().with_weight(2.0)),
        ];
        let balanced = [resident(0, 1.0), resident(1, 2.0)];
        assert_eq!(QueuePolicy::WeightedFairShare.pick(&q, &balanced), Some(0));
        // ...but once tenant 1 has no residents it wins despite arriving
        // later (0/2 < 1/1).
        let only_zero = [resident(0, 1.0)];
        assert_eq!(QueuePolicy::WeightedFairShare.pick(&q, &only_zero), Some(1));
    }

    #[test]
    fn empty_queue_picks_nothing() {
        for p in [
            QueuePolicy::Fifo,
            QueuePolicy::ShortestExpectedWork,
            QueuePolicy::FairShare,
            QueuePolicy::EarliestDeadline,
            QueuePolicy::WeightedFairShare,
        ] {
            assert_eq!(p.pick(&[], &[]), None);
        }
    }

    #[test]
    fn ties_break_by_id() {
        let q = vec![
            queued(7, 0, 2.0, JobPreset::small()),
            queued(3, 0, 2.0, JobPreset::small()),
        ];
        assert_eq!(QueuePolicy::Fifo.pick(&q, &[]), Some(1));
    }

    #[test]
    fn absolute_deadline_is_arrival_anchored() {
        let j = queued(0, 0, 3.0, JobPreset::small().with_deadline(2.0));
        assert!((j.absolute_deadline() - 5.0).abs() < 1e-12);
        let no_slo = queued(1, 0, 3.0, JobPreset::small());
        assert_eq!(no_slo.absolute_deadline(), f64::INFINITY);
    }

    #[test]
    fn token_bucket_caps_bursts_and_refills() {
        let mut b = TokenBucket::new(RateLimit {
            rate: 2.0,
            burst: 3.0,
        });
        // The burst drains in three back-to-back arrivals...
        assert!(b.try_admit(0.0));
        assert!(b.try_admit(0.0));
        assert!(b.try_admit(0.0));
        assert!(!b.try_admit(0.0), "burst exhausted");
        assert!(!b.try_admit(0.2), "0.4 tokens accrued, still short");
        // ...then refills at 2 tokens/s, capped at the burst ceiling.
        assert!(b.try_admit(0.5));
        assert!(b.try_admit(100.0));
        assert!(b.try_admit(100.0));
        assert!(b.try_admit(100.0));
        assert!(!b.try_admit(100.0), "refill is capped at burst");
    }

    #[test]
    fn token_bucket_ignores_time_regressions() {
        let mut b = TokenBucket::new(RateLimit {
            rate: 1.0,
            burst: 1.0,
        });
        assert!(b.try_admit(5.0));
        // An earlier timestamp must not mint tokens or move time back.
        assert!(!b.try_admit(4.0));
        assert!(b.try_admit(6.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(QueuePolicy::FairShare.to_string(), "fair-share");
        assert_eq!(
            QueuePolicy::EarliestDeadline.to_string(),
            "earliest-deadline"
        );
        assert_eq!(
            QueuePolicy::WeightedFairShare.to_string(),
            "weighted-fair-share"
        );
    }
}
