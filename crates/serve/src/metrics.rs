//! Service-level metrics: the numbers an operator of a shared coded
//! computing service actually watches.
//!
//! The single-job layer reports per-iteration latency and wasted rows;
//! a multi-job service is judged instead by its *distributional* ones:
//! sojourn-time percentiles (p50/p95/p99), sustained throughput, worker
//! utilization, and queue depth over time.

use crate::event::JobId;

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// `p` is in `[0, 100]`; an empty slice yields 0 (a service that served
/// nothing has no tail).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Lifecycle record of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: u32,
    /// Preset label the job was drawn from.
    pub preset: &'static str,
    /// Arrival (enqueue) time.
    pub arrival: f64,
    /// Admission time (start of service).
    pub admitted: f64,
    /// Completion (or failure) time.
    pub finished: f64,
    /// Iterations completed.
    pub iterations: usize,
    /// Iteration restarts forced by churn storms.
    pub retries: usize,
    /// Whether the job failed (exceeded its retry budget).
    pub failed: bool,
}

impl JobRecord {
    /// Sojourn time: arrival to completion — the latency a user feels.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.finished - self.arrival
    }

    /// Time spent waiting in the admission queue.
    #[must_use]
    pub fn queueing_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Time spent in service (admission to completion).
    #[must_use]
    pub fn service_time(&self) -> f64 {
        self.finished - self.admitted
    }
}

/// Everything a finished engine run reports.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Per-job lifecycle records, in completion order.
    pub jobs: Vec<JobRecord>,
    /// `(time, queued_jobs)` samples taken at every queue transition.
    pub queue_depth: Vec<(f64, usize)>,
    /// Per-worker accumulated busy (compute) time.
    pub busy_time: Vec<f64>,
    /// Time the last job resolved (completed or failed) — deliberately
    /// not the last drained event, so throughput is not diluted by stale
    /// straggler work nobody waited for. `queue_depth` samples may extend
    /// past it.
    pub makespan: f64,
    /// Valid §4.3-style timeout firings (mis-prediction / churn recovery).
    pub timeouts: usize,
    /// Iterations that degraded to conventional full assignment.
    pub degraded_iterations: usize,
    /// Total events processed.
    pub events_processed: u64,
}

impl ServiceReport {
    /// Completed (non-failed) job count.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| !j.failed).count()
    }

    /// Failed job count.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.jobs.iter().filter(|j| j.failed).count()
    }

    /// Ascending-sorted sojourn latencies of completed jobs.
    #[must_use]
    pub fn latencies(&self) -> Vec<f64> {
        let mut l: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| !j.failed)
            .map(JobRecord::latency)
            .collect();
        l.sort_by(f64::total_cmp);
        l
    }

    /// Sojourn-latency percentile (`p` in `[0, 100]`) over completed jobs.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(&self.latencies(), p)
    }

    /// Mean sojourn latency over completed jobs.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        let l = self.latencies();
        if l.is_empty() {
            0.0
        } else {
            l.iter().sum::<f64>() / l.len() as f64
        }
    }

    /// Completed jobs per second of makespan.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Pool utilization: busy worker-seconds over available worker-seconds.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy_time.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.busy_time.iter().sum();
        busy / (self.makespan * self.busy_time.len() as f64)
    }

    /// Time-weighted mean admission-queue depth.
    #[must_use]
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth.len() < 2 {
            return self.queue_depth.first().map_or(0.0, |&(_, d)| d as f64);
        }
        let mut area = 0.0;
        for w in self.queue_depth.windows(2) {
            area += w[0].1 as f64 * (w[1].0 - w[0].0);
        }
        let span = self.queue_depth.last().unwrap().0 - self.queue_depth[0].0;
        if span > 0.0 {
            area / span
        } else {
            0.0
        }
    }

    /// Peak admission-queue depth.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: JobId, arrival: f64, admitted: f64, finished: f64, failed: bool) -> JobRecord {
        JobRecord {
            id,
            tenant: 0,
            preset: "small",
            arrival,
            admitted,
            finished,
            iterations: 4,
            retries: 0,
            failed,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn job_record_timings() {
        let j = record(0, 1.0, 2.5, 7.0, false);
        assert!((j.latency() - 6.0).abs() < 1e-12);
        assert!((j.queueing_delay() - 1.5).abs() < 1e-12);
        assert!((j.service_time() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates_exclude_failures() {
        let report = ServiceReport {
            jobs: vec![
                record(0, 0.0, 0.0, 2.0, false),
                record(1, 0.0, 1.0, 4.0, false),
                record(2, 0.0, 1.0, 9.0, true),
            ],
            makespan: 10.0,
            busy_time: vec![5.0, 2.5],
            ..ServiceReport::default()
        };
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.latencies(), vec![2.0, 4.0]);
        assert!((report.mean_latency() - 3.0).abs() < 1e-12);
        assert!((report.throughput() - 0.2).abs() < 1e-12);
        assert!((report.utilization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_time_weighting() {
        let report = ServiceReport {
            queue_depth: vec![(0.0, 0), (1.0, 2), (3.0, 1), (4.0, 1)],
            ..ServiceReport::default()
        };
        // 0·1 + 2·2 + 1·1 over a span of 4.
        assert!((report.mean_queue_depth() - 1.25).abs() < 1e-12);
        assert_eq!(report.max_queue_depth(), 2);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ServiceReport::default();
        assert_eq!(r.completed(), 0);
        assert_eq!(r.latency_percentile(99.0), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.mean_queue_depth(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_rejected() {
        let _ = percentile(&[1.0], 101.0);
    }
}
