//! Service-level metrics: the numbers an operator of a shared coded
//! computing service actually watches.
//!
//! The single-job layer reports per-iteration latency and wasted rows;
//! a multi-job service is judged instead by its *distributional* ones:
//! sojourn-time percentiles (p50/p95/p99), sustained throughput, worker
//! utilization, queue depth over time — and, per tenant, deadline hit
//! rates and achieved-vs-entitled capacity shares.
//!
//! # Semantics
//!
//! * **Makespan** is the instant the last job *resolved* (completed,
//!   failed, or was rejected) — not the time the last event drained.
//! * **Utilization** counts dedicated compute-seconds (a task running at
//!   fractional share `s` accrues `s` busy-seconds per wall second);
//!   busy time is truncated at makespan per worker, so utilization is
//!   always within `[0, 1]`.
//! * **Queue depth** integrates over `[0, makespan]` only; transition
//!   samples past makespan are ignored rather than diluting the mean.

use crate::event::JobId;
use s2c2_telemetry::{PhaseTotals, StreamingHistogram, Telemetry};

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// `p` is in `[0, 100]`; an empty slice yields 0 (a service that served
/// nothing has no tail).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Lifecycle record of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: u32,
    /// Preset label the job was drawn from.
    pub preset: &'static str,
    /// Arrival (enqueue) time.
    pub arrival: f64,
    /// Admission time (start of service).
    pub admitted: f64,
    /// Completion (or failure/rejection) time.
    pub finished: f64,
    /// Iterations completed.
    pub iterations: usize,
    /// Iteration restarts forced by churn storms.
    pub retries: usize,
    /// Whether the job failed (exceeded its retry budget, was malformed,
    /// or was rejected at admission).
    pub failed: bool,
    /// Whether the job was rejected by deadline admission control
    /// (implies `failed`; it never held a residency slot).
    pub rejected: bool,
    /// Whether the job was refused by its tenant's token-bucket rate
    /// limit (implies `failed`; it never entered the admission queue).
    /// Disjoint from `rejected`, so operators can tell "your SLO was
    /// hopeless" from "you burst past your rate".
    pub rate_limited: bool,
    /// Capacity weight the job ran with.
    pub weight: f64,
    /// Relative SLO it arrived with, if any.
    pub deadline: Option<f64>,
    /// Total useful work (matrix elements over all iterations).
    pub work: f64,
}

impl JobRecord {
    /// Sojourn time: arrival to completion — the latency a user feels.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.finished - self.arrival
    }

    /// Time spent waiting in the admission queue.
    #[must_use]
    pub fn queueing_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Time spent in service (admission to completion).
    #[must_use]
    pub fn service_time(&self) -> f64 {
        self.finished - self.admitted
    }

    /// Whether the job met its SLO: completed, and within its deadline
    /// if it carried one. Failed or rejected jobs are never on time;
    /// SLO-less completed jobs always are.
    #[must_use]
    pub fn on_time(&self) -> bool {
        !self.failed && self.deadline.map_or(true, |d| self.latency() <= d + 1e-12)
    }
}

/// Per-tenant QoS summary derived from the job records.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs the tenant submitted (resolved any way).
    pub jobs: usize,
    /// Jobs completed successfully.
    pub completed: usize,
    /// Jobs rejected by deadline admission control.
    pub rejected: usize,
    /// Jobs refused by the tenant's token-bucket rate limit (counted
    /// separately from deadline rejections).
    pub rate_limited: usize,
    /// Fraction of the tenant's deadline-carrying jobs that completed
    /// within their SLO (1.0 when it submitted none).
    pub on_time_ratio: f64,
    /// Median sojourn latency over the tenant's completed jobs.
    pub p50_latency: f64,
    /// 99th-percentile sojourn latency over the tenant's completed jobs.
    pub p99_latency: f64,
    /// Capacity the tenant was entitled to: its submitted weight mass
    /// over the total submitted weight mass.
    pub entitled_share: f64,
    /// Capacity it achieved while tenants were actually contending: its
    /// completed useful work over the total completed useful work, both
    /// censored at the earliest tenant drain (the instant the first
    /// tenant ran out of jobs). Without the censoring every tenant of a
    /// fully-drained closed workload would trivially converge to its
    /// submitted work fraction, hiding any share enforcement.
    pub achieved_share: f64,
}

/// Everything a finished engine run reports.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Per-job lifecycle records, in completion order.
    pub jobs: Vec<JobRecord>,
    /// `(time, queued_jobs)` samples taken at every queue transition.
    pub queue_depth: Vec<(f64, usize)>,
    /// Per-worker accumulated busy (compute) time, in dedicated
    /// compute-seconds (fractional shares accrue fractionally).
    pub busy_time: Vec<f64>,
    /// Time the last job resolved (completed, failed, or rejected) —
    /// deliberately not the last drained event, so throughput is not
    /// diluted by stale straggler work nobody waited for.
    pub makespan: f64,
    /// Valid §4.3-style timeout firings (mis-prediction / churn recovery).
    pub timeouts: usize,
    /// Iterations that degraded to conventional full assignment.
    pub degraded_iterations: usize,
    /// Share rebalances applied when the resident set changed
    /// mid-iteration (the work-conserving path).
    pub rebalances: usize,
    /// Multi-member batches admitted (residency slots that carried ≥ 2
    /// coalesced jobs; solo admissions are not counted).
    pub batches_admitted: usize,
    /// Jobs that rode multi-member batches (the sum of those batches'
    /// member counts, so `batched_jobs / batches_admitted` is the mean
    /// coalesced batch size).
    pub batched_jobs: usize,
    /// Iteration rounds started with a stacked multi-RHS payload
    /// (`rhs > 1`) — each one an encode/dispatch/decode round that
    /// several jobs shared.
    pub batch_rounds: usize,
    /// Deadline-aware share boosts activated: resident jobs whose
    /// effective weight was bumped because their slack-to-deadline ratio
    /// dropped below [`crate::engine::DeadlineBoost::slack_threshold`].
    pub boost_activations: usize,
    /// Total events processed.
    pub events_processed: u64,
    /// Encode-cache lookups served from cache (numeric backends only;
    /// the timing-only backend never encodes).
    pub encode_cache_hits: u64,
    /// Encode-cache lookups that had to encode.
    pub encode_cache_misses: u64,
    /// Iterations whose decoded output a numeric backend checked against
    /// the sequential reference.
    pub verified_iterations: usize,
    /// Largest relative decode error a numeric backend observed across
    /// every verified iteration (0 when nothing was verified).
    pub max_decode_error: f64,
    /// Final-iteration decoded outputs per completed job, in completion
    /// order (numeric backends only; empty under the timing-only
    /// backend). The payload the parity tests compare across backends.
    pub job_outputs: Vec<(JobId, Vec<f64>)>,
    /// Recovery-ladder transitions per rung, indexed `[rung-1]`:
    /// `[0]` normal predict-feasible starts, `[1]` degraded starts,
    /// `[2]` redo-on-finished-workers recoveries, `[3]` wait-out
    /// escalations, `[4]` abandon-and-restart escalations. Mirrors the
    /// trace's `RecoveryRung` events exactly.
    pub recovery_rung_counts: [u64; 5],
    /// Virtual-clock phase split of every completed iteration round.
    /// Deterministic and backend-independent; by construction
    /// `dispatch + compute + collect + decode` equals
    /// [`iteration_time_total`](Self::iteration_time_total).
    pub phase_virtual: PhaseTotals,
    /// Wall-clock phase time measured by the numeric backends (encode /
    /// decode / verify in the master, worker busy time from real
    /// threads). Nondeterministic; all-zero under the timing-only `Sim`
    /// backend, and never part of diffed outputs.
    pub phase_wall: PhaseTotals,
    /// Total virtual service time of completed iteration rounds
    /// (dispatch to decoded result), the denominator the virtual phase
    /// split accounts for.
    pub iteration_time_total: f64,
    /// Completed rounds that parked behind an unretired predecessor
    /// under pipelined serving ([`crate::engine::PipelinePolicy`]);
    /// always 0 at depth 1.
    pub rounds_parked: u64,
    /// Total virtual seconds completed rounds spent parked waiting for
    /// in-order commit (the per-round park durations summed).
    pub pipeline_stall_time: f64,
    /// Virtual seconds of cross-round overlap the pipeline bought: for
    /// every retired round, the time between its dispatch and the
    /// previous round's retirement (0 at depth 1, where rounds are
    /// strictly sequential).
    pub pipeline_overlap_time: f64,
    /// Per-round task/coverage vector sets served from the engine's
    /// scratch pool instead of freshly allocated (every round after a
    /// job's first reuses a retired round's buffers).
    pub scratch_reuses: u64,
    /// Trace buffer + metrics registry, present when the run had
    /// telemetry enabled ([`crate::engine::ServeConfig::telemetry`]).
    pub telemetry: Option<Telemetry>,
}

impl ServiceReport {
    /// Completed (non-failed) job count.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| !j.failed).count()
    }

    /// Failed job count (includes rejections).
    #[must_use]
    pub fn failed(&self) -> usize {
        self.jobs.iter().filter(|j| j.failed).count()
    }

    /// Jobs rejected by deadline admission control.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.jobs.iter().filter(|j| j.rejected).count()
    }

    /// Jobs refused by tenant token-bucket rate limits.
    #[must_use]
    pub fn rate_limited(&self) -> usize {
        self.jobs.iter().filter(|j| j.rate_limited).count()
    }

    /// Mean member count of the multi-member batches admitted, or 0
    /// when nothing was coalesced.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_admitted == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches_admitted as f64
        }
    }

    /// Encode-cache hit rate (`hits / lookups`), or 0 when the backend
    /// never consulted the cache.
    #[must_use]
    pub fn encode_cache_hit_rate(&self) -> f64 {
        let total = self.encode_cache_hits + self.encode_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.encode_cache_hits as f64 / total as f64
        }
    }

    /// Ascending-sorted sojourn latencies of completed jobs.
    #[must_use]
    pub fn latencies(&self) -> Vec<f64> {
        let mut l: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| !j.failed)
            .map(JobRecord::latency)
            .collect();
        l.sort_by(f64::total_cmp);
        l
    }

    /// Exact-mode streaming histogram over completed-job sojourn
    /// latencies: single pass, no sort, and nearest-rank percentiles
    /// that are bit-identical to the sorted-vector path.
    #[must_use]
    pub fn latency_histogram(&self) -> StreamingHistogram {
        Self::latency_histogram_of(self.jobs.iter())
    }

    fn latency_histogram_of<'a>(
        jobs: impl IntoIterator<Item = &'a JobRecord>,
    ) -> StreamingHistogram {
        let mut h = StreamingHistogram::exact();
        for j in jobs {
            if !j.failed {
                h.record(j.latency());
            }
        }
        h
    }

    /// Sojourn-latency percentile (`p` in `[0, 100]`) over completed
    /// jobs, streamed through the exact histogram.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> f64 {
        self.latency_histogram().percentile(p)
    }

    /// Mean sojourn latency over completed jobs.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        let l = self.latencies();
        if l.is_empty() {
            0.0
        } else {
            l.iter().sum::<f64>() / l.len() as f64
        }
    }

    /// Completed jobs per second of makespan.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Pool utilization: busy worker-seconds over available
    /// worker-seconds, with each worker's busy time truncated at
    /// makespan. A worker cannot be busier than the service horizon, so
    /// anything above is stale straggler work nobody waited for (the
    /// engine refunds it, but the truncation keeps the invariant even
    /// under accounting drift). Always within `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy_time.is_empty() {
            return 0.0;
        }
        let busy: f64 = self
            .busy_time
            .iter()
            .map(|&b| b.clamp(0.0, self.makespan))
            .sum();
        busy / (self.makespan * self.busy_time.len() as f64)
    }

    /// Time-weighted mean admission-queue depth over `[0, makespan]`.
    ///
    /// The depth is 0 before the first transition sample, piecewise
    /// constant between samples, and held from the last pre-makespan
    /// sample to makespan; samples past makespan are ignored (they would
    /// dilute the mean with time no job was waiting on).
    #[must_use]
    pub fn mean_queue_depth(&self) -> f64 {
        if self.makespan <= 0.0 || self.queue_depth.is_empty() {
            return 0.0;
        }
        let mut area = 0.0;
        let mut prev_t = 0.0;
        let mut depth = 0.0;
        for &(t, d) in &self.queue_depth {
            let t_clamped = t.clamp(0.0, self.makespan);
            area += depth * (t_clamped - prev_t).max(0.0);
            prev_t = prev_t.max(t_clamped);
            if t >= self.makespan {
                break;
            }
            depth = d as f64;
        }
        area += depth * (self.makespan - prev_t).max(0.0);
        area / self.makespan
    }

    /// Peak admission-queue depth.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Fraction of deadline-carrying jobs that completed within their
    /// SLO (late completions, failures, and rejections all count as
    /// misses). 1.0 when no job carried a deadline.
    #[must_use]
    pub fn on_time_ratio(&self) -> f64 {
        Self::on_time_ratio_of(self.jobs.iter())
    }

    fn on_time_ratio_of<'a>(jobs: impl IntoIterator<Item = &'a JobRecord>) -> f64 {
        let (mut with_deadline, mut on_time) = (0usize, 0usize);
        for j in jobs {
            if j.deadline.is_some() {
                with_deadline += 1;
                if j.on_time() {
                    on_time += 1;
                }
            }
        }
        if with_deadline == 0 {
            1.0
        } else {
            on_time as f64 / with_deadline as f64
        }
    }

    /// Per-tenant QoS summaries, ascending by tenant id.
    ///
    /// `entitled_share` is the tenant's submitted weight mass over the
    /// total; `achieved_share` its completed-work fraction censored at
    /// the earliest tenant drain — a tenant whose jobs weigh 2× should
    /// achieve ≈ 2× a weight-1 tenant's work share under saturation.
    #[must_use]
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        let mut tenants: Vec<u32> = self.jobs.iter().map(|j| j.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        let total_weight: f64 = self.jobs.iter().map(|j| j.weight).sum();
        // Contention horizon: the earliest instant some tenant ran dry.
        let horizon = tenants
            .iter()
            .filter_map(|&t| {
                self.jobs
                    .iter()
                    .filter(|j| j.tenant == t && !j.failed)
                    .map(|j| j.finished)
                    .fold(None, |acc: Option<f64>, f| {
                        Some(acc.map_or(f, |a| a.max(f)))
                    })
            })
            .fold(f64::INFINITY, f64::min);
        let censored_work = |t: u32| -> f64 {
            self.jobs
                .iter()
                .filter(|j| j.tenant == t && !j.failed && j.finished <= horizon + 1e-12)
                .map(|j| j.work)
                .sum()
        };
        let total_censored_work: f64 = tenants.iter().map(|&t| censored_work(t)).sum();
        tenants
            .into_iter()
            .map(|tenant| {
                let mine: Vec<&JobRecord> =
                    self.jobs.iter().filter(|j| j.tenant == tenant).collect();
                let lat = Self::latency_histogram_of(mine.iter().copied());
                let weight_mass: f64 = mine.iter().map(|j| j.weight).sum();
                let done_work: f64 = censored_work(tenant);
                TenantSummary {
                    tenant,
                    jobs: mine.len(),
                    completed: mine.iter().filter(|j| !j.failed).count(),
                    rejected: mine.iter().filter(|j| j.rejected).count(),
                    rate_limited: mine.iter().filter(|j| j.rate_limited).count(),
                    on_time_ratio: Self::on_time_ratio_of(mine.iter().copied()),
                    p50_latency: lat.percentile(50.0),
                    p99_latency: lat.percentile(99.0),
                    entitled_share: if total_weight > 0.0 {
                        weight_mass / total_weight
                    } else {
                        0.0
                    },
                    achieved_share: if total_censored_work > 0.0 {
                        done_work / total_censored_work
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: JobId, arrival: f64, admitted: f64, finished: f64, failed: bool) -> JobRecord {
        JobRecord {
            id,
            tenant: 0,
            preset: "small",
            arrival,
            admitted,
            finished,
            iterations: 4,
            retries: 0,
            failed,
            rejected: false,
            rate_limited: false,
            weight: 1.0,
            deadline: None,
            work: 100.0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: a service that served nothing has no tail.
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
        // Single sample dominates every percentile.
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(percentile(&[7.25], p), 7.25);
        }
        // p = 0 is the minimum, p = 100 the maximum.
        let v = vec![1.5, 2.5, 9.0];
        assert_eq!(percentile(&v, 0.0), 1.5);
        assert_eq!(percentile(&v, 100.0), 9.0);
    }

    #[test]
    fn latency_percentiles_stream_bit_identically_to_the_sorted_path() {
        // The streaming-histogram path must reproduce the legacy
        // sort-the-whole-vector nearest-rank result bit-for-bit — the
        // full-scale qos/e2e figures are pinned on it.
        let mut jobs = Vec::new();
        for i in 0..57u32 {
            let latency = f64::from(i % 13).mul_add(0.731, 0.01) * f64::from(1 + i / 17);
            jobs.push(record(JobId::from(i), 0.0, 0.0, latency, i % 9 == 5));
        }
        let report = ServiceReport {
            jobs,
            ..ServiceReport::default()
        };
        let sorted = report.latencies();
        for p in [0.0, 1.0, 50.0, 73.0, 99.0, 100.0] {
            assert_eq!(
                report.latency_percentile(p).to_bits(),
                percentile(&sorted, p).to_bits(),
                "p = {p}"
            );
        }
        assert_eq!(report.latency_histogram().count() as usize, sorted.len());
    }

    #[test]
    fn job_record_timings() {
        let j = record(0, 1.0, 2.5, 7.0, false);
        assert!((j.latency() - 6.0).abs() < 1e-12);
        assert!((j.queueing_delay() - 1.5).abs() < 1e-12);
        assert!((j.service_time() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn on_time_classification() {
        let mut j = record(0, 1.0, 2.0, 4.0, false); // latency 3.0
        assert!(j.on_time(), "no SLO -> always on time");
        j.deadline = Some(3.5);
        assert!(j.on_time());
        j.deadline = Some(2.5);
        assert!(!j.on_time());
        j.deadline = Some(3.5);
        j.failed = true;
        assert!(!j.on_time(), "failed jobs are never on time");
    }

    #[test]
    fn report_aggregates_exclude_failures() {
        let report = ServiceReport {
            jobs: vec![
                record(0, 0.0, 0.0, 2.0, false),
                record(1, 0.0, 1.0, 4.0, false),
                record(2, 0.0, 1.0, 9.0, true),
            ],
            makespan: 10.0,
            busy_time: vec![5.0, 2.5],
            ..ServiceReport::default()
        };
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.rejected(), 0);
        assert_eq!(report.latencies(), vec![2.0, 4.0]);
        assert!((report.mean_latency() - 3.0).abs() < 1e-12);
        assert!((report.throughput() - 0.2).abs() < 1e-12);
        assert!((report.utilization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn utilization_truncates_per_worker_busy_at_makespan() {
        // Worker 0 carries 14 busy-seconds against a 10-second makespan
        // (stale straggler work past the last resolution): the truncated
        // utilization is (10 + 5) / (10 * 2), never above 1.
        let report = ServiceReport {
            makespan: 10.0,
            busy_time: vec![14.0, 5.0],
            ..ServiceReport::default()
        };
        assert!((report.utilization() - 0.75).abs() < 1e-12);
        let saturated = ServiceReport {
            makespan: 10.0,
            busy_time: vec![14.0, 22.0],
            ..ServiceReport::default()
        };
        assert!(saturated.utilization() <= 1.0);
        assert!((saturated.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_time_weighting() {
        let report = ServiceReport {
            queue_depth: vec![(0.0, 0), (1.0, 2), (3.0, 1), (4.0, 1)],
            makespan: 4.0,
            ..ServiceReport::default()
        };
        // 0·1 + 2·2 + 1·1 over a 4-second makespan.
        assert!((report.mean_queue_depth() - 1.25).abs() < 1e-12);
        assert_eq!(report.max_queue_depth(), 2);
    }

    #[test]
    fn queue_depth_ignores_post_makespan_samples() {
        // Samples extend to t = 8 but the last job resolved at 4: the
        // mean must integrate over [0, 4] only — not dilute the 2-deep
        // first half with post-makespan emptiness.
        let report = ServiceReport {
            queue_depth: vec![(0.0, 2), (2.0, 1), (6.0, 3), (8.0, 0)],
            makespan: 4.0,
            ..ServiceReport::default()
        };
        // 2·2 + 1·2 over 4 seconds = 1.5 (the (6,3)/(8,0) tail ignored).
        assert!((report.mean_queue_depth() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_holds_last_depth_to_makespan() {
        let report = ServiceReport {
            queue_depth: vec![(1.0, 4)],
            makespan: 3.0,
            ..ServiceReport::default()
        };
        // Depth 0 over [0,1), then 4 held over [1,3]: 8/3.
        assert!((report.mean_queue_depth() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn on_time_ratio_counts_misses_failures_and_rejections() {
        let mut on_time = record(0, 0.0, 0.0, 1.0, false);
        on_time.deadline = Some(2.0);
        let mut late = record(1, 0.0, 0.0, 5.0, false);
        late.deadline = Some(2.0);
        let mut rejected = record(2, 0.0, 0.0, 0.0, true);
        rejected.deadline = Some(2.0);
        rejected.rejected = true;
        let no_slo = record(3, 0.0, 0.0, 50.0, false);
        let report = ServiceReport {
            jobs: vec![on_time, late, rejected, no_slo],
            ..ServiceReport::default()
        };
        // 1 of 3 deadline-carrying jobs on time; the SLO-less job is
        // out of the denominator.
        assert!((report.on_time_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.rejected(), 1);
        // No deadlines anywhere -> vacuous 1.0.
        let empty = ServiceReport {
            jobs: vec![record(0, 0.0, 0.0, 1.0, false)],
            ..ServiceReport::default()
        };
        assert_eq!(empty.on_time_ratio(), 1.0);
    }

    #[test]
    fn tenant_summaries_split_shares() {
        let mut t0 = record(0, 0.0, 0.0, 2.0, false);
        t0.work = 100.0;
        let mut t1a = record(1, 0.0, 0.0, 1.0, false);
        t1a.tenant = 1;
        t1a.weight = 2.0;
        t1a.work = 200.0;
        let mut t1b = record(2, 0.0, 0.0, 3.0, false);
        t1b.tenant = 1;
        t1b.weight = 2.0;
        t1b.work = 100.0;
        let report = ServiceReport {
            jobs: vec![t0, t1a, t1b],
            ..ServiceReport::default()
        };
        let tenants = report.tenant_summaries();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].tenant, 0);
        assert_eq!(tenants[1].tenant, 1);
        assert!((tenants[0].entitled_share - 0.2).abs() < 1e-12);
        assert!((tenants[1].entitled_share - 0.8).abs() < 1e-12);
        // Contention horizon: tenant 0 drains at t = 2.0, so only work
        // finished by then counts — 100 for tenant 0, 200 for tenant 1
        // (t1b at t = 3.0 is censored away).
        assert!((tenants[0].achieved_share - 1.0 / 3.0).abs() < 1e-12);
        assert!((tenants[1].achieved_share - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(tenants[1].jobs, 2);
        assert_eq!(tenants[1].completed, 2);
        assert!((tenants[1].p50_latency - 1.0).abs() < 1e-12);
        assert!((tenants[1].p99_latency - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tenant_summaries_ordered_by_id_regardless_of_record_order() {
        // Records arrive in completion order, which interleaves tenants
        // arbitrarily; the summaries must come back ascending by tenant
        // id every time — CI diffs two runs byte-for-byte, so no
        // report vector may depend on map iteration order.
        let mut jobs = Vec::new();
        for (i, tenant) in [7u32, 2, 9, 2, 0, 7, 9].iter().enumerate() {
            let mut j = record(i as JobId, 0.0, 0.0, 1.0 + i as f64, false);
            j.tenant = *tenant;
            jobs.push(j);
        }
        let report = ServiceReport {
            jobs,
            ..ServiceReport::default()
        };
        let tenants: Vec<u32> = report.tenant_summaries().iter().map(|t| t.tenant).collect();
        assert_eq!(tenants, vec![0, 2, 7, 9]);
        // And the whole derivation is a pure function of the records.
        assert_eq!(report.tenant_summaries(), report.tenant_summaries());
    }

    #[test]
    fn zero_makespan_report_is_nan_free() {
        // A run whose every job resolved at t = 0 (all rejected or
        // rate-limited on arrival) has zero makespan: every derived
        // metric must degrade to 0 (or a vacuous ratio), never NaN or
        // a division by zero.
        let mut rejected = record(0, 0.0, 0.0, 0.0, true);
        rejected.rejected = true;
        rejected.deadline = Some(1e-9);
        let mut limited = record(1, 0.0, 0.0, 0.0, true);
        limited.rate_limited = true;
        let report = ServiceReport {
            jobs: vec![rejected, limited],
            queue_depth: vec![(0.0, 0)],
            busy_time: vec![0.0; 4],
            makespan: 0.0,
            ..ServiceReport::default()
        };
        for v in [
            report.throughput(),
            report.utilization(),
            report.mean_queue_depth(),
            report.mean_latency(),
            report.latency_percentile(50.0),
            report.latency_percentile(99.0),
            report.on_time_ratio(),
            report.mean_batch_size(),
            report.encode_cache_hit_rate(),
        ] {
            assert!(v.is_finite(), "zero-makespan metric must be finite: {v}");
        }
        assert_eq!(report.completed(), 0);
        assert_eq!(report.on_time_ratio(), 0.0, "the SLO job missed");
        for t in report.tenant_summaries() {
            assert!(t.p50_latency.is_finite());
            assert!(t.p99_latency.is_finite());
            assert!(t.entitled_share.is_finite());
            assert!(t.achieved_share.is_finite());
            assert!(t.on_time_ratio.is_finite());
        }
    }

    #[test]
    fn mean_batch_size_guards_empty() {
        let mut r = ServiceReport::default();
        assert_eq!(r.mean_batch_size(), 0.0);
        r.batches_admitted = 2;
        r.batched_jobs = 7;
        assert!((r.mean_batch_size() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rate_limited_counted_separately_from_rejections() {
        let mut limited = record(0, 0.0, 0.0, 0.0, true);
        limited.rate_limited = true;
        let mut rejected = record(1, 0.0, 0.0, 0.0, true);
        rejected.rejected = true;
        let served = record(2, 0.0, 0.0, 1.0, false);
        let report = ServiceReport {
            jobs: vec![limited, rejected, served],
            ..ServiceReport::default()
        };
        assert_eq!(report.rate_limited(), 1);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.failed(), 2);
        let t = report.tenant_summaries();
        assert_eq!(t[0].rate_limited, 1);
        assert_eq!(t[0].rejected, 1);
        assert_eq!(t[0].completed, 1);
    }

    #[test]
    fn encode_cache_hit_rate_from_counters() {
        let mut report = ServiceReport::default();
        assert_eq!(report.encode_cache_hit_rate(), 0.0);
        report.encode_cache_hits = 3;
        report.encode_cache_misses = 1;
        assert!((report.encode_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ServiceReport::default();
        assert_eq!(r.completed(), 0);
        assert_eq!(r.latency_percentile(99.0), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.mean_queue_depth(), 0.0);
        assert_eq!(r.on_time_ratio(), 1.0);
        assert!(r.tenant_summaries().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_rejected() {
        let _ = percentile(&[1.0], 101.0);
    }
}
