//! The shared-cluster S²C² allocator: Algorithm 1 across many jobs.
//!
//! Extends the paper's single-job allocator to a pool serving several
//! coded jobs at once. Each worker's per-iteration capacity is split
//! across the resident jobs ([`s2c2_core::split_worker_capacity`], the
//! capacity hook exposed by the core crate) and every job then runs
//! Algorithm 1 on *its slice* of the pool. Because Algorithm 1 is
//! scale-invariant in the speeds, each job keeps exactly the chunk shape
//! it would get on a dedicated cluster running at its fractional rate —
//! and therefore keeps its exactly-`k` chunk coverage, which is the
//! decodability invariant the whole scheme rests on.
//!
//! When a job's slice cannot support `k`-coverage (predictions claim
//! fewer than `k` workers alive), that job — and only that job — degrades
//! to conventional coded computing: every available worker computes its
//! full partition and the master takes the fastest `k` per chunk (§4.4's
//! robustness rule, applied per job).

use s2c2_core::{allocate_chunks, split_worker_capacity, ChunkAssignment};

/// One resident job's allocation inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDemand {
    /// Recovery threshold of the job's code.
    pub k: usize,
    /// Chunks per coded partition.
    pub chunks_per_partition: usize,
    /// Capacity weight (equal weights = processor sharing).
    pub weight: f64,
}

/// One job's slice of the shared allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedAssignment {
    /// Chunk indices per worker for this job.
    pub assignment: ChunkAssignment,
    /// Fraction of every worker's capacity this job received.
    pub share: f64,
    /// Whether the job degraded to conventional full assignment because
    /// its predicted slice could not support exactly-`k` coverage.
    pub degraded: bool,
}

/// Conventional coded computing's assignment restricted to available
/// workers: every worker with positive speed computes its whole
/// partition. Coverage is `available ≥ k` per chunk (over-provisioned on
/// purpose — the master takes the fastest `k`).
#[must_use]
pub fn full_over_available(
    speeds: &[f64],
    k: usize,
    chunks_per_partition: usize,
) -> ChunkAssignment {
    ChunkAssignment {
        chunks: speeds
            .iter()
            .map(|&s| {
                if s > 0.0 {
                    (0..chunks_per_partition).collect()
                } else {
                    Vec::new()
                }
            })
            .collect(),
        chunks_per_partition,
        k,
    }
}

/// Allocates every resident job's chunks over the shared pool.
///
/// `speeds` are the pool's (predicted) per-worker speeds, zero meaning
/// unavailable. The result is index-aligned with `demands`.
///
/// # Panics
///
/// Panics if `demands` is empty or any weight is non-positive (both are
/// engine bugs, not runtime conditions).
#[must_use]
pub fn allocate_shared(speeds: &[f64], demands: &[JobDemand]) -> Vec<SharedAssignment> {
    let weights: Vec<f64> = demands.iter().map(|d| d.weight).collect();
    let slices = split_worker_capacity(speeds, &weights);
    let total: f64 = weights.iter().sum();
    demands
        .iter()
        .zip(slices.iter())
        .map(|(d, slice)| {
            let share = d.weight / total;
            match allocate_chunks(slice, d.k, d.chunks_per_partition) {
                Ok(assignment) => SharedAssignment {
                    assignment,
                    share,
                    degraded: false,
                },
                Err(_) => SharedAssignment {
                    assignment: full_over_available(speeds, d.k, d.chunks_per_partition),
                    share,
                    degraded: true,
                },
            }
        })
        .collect()
}

/// One job's weighted slice of the shared allocation — identical to the
/// matching entry of [`allocate_shared`] for a resident set whose
/// weights sum to `total_weight` (jobs start iterations at different
/// instants, so the engine only ever needs its own slice; recomputing
/// every neighbour's assignment would be `O(residents)` wasted work).
///
/// `weight` is this job's capacity weight; `total_weight` is the sum
/// over the whole resident set (including this job). The slice is cut
/// with the same [`split_worker_capacity`] hook [`allocate_shared`]
/// uses, so the two entry points cannot drift apart.
///
/// # Panics
///
/// Panics if `weight` is non-positive or exceeds `total_weight`.
#[must_use]
pub fn allocate_for_resident(
    speeds: &[f64],
    k: usize,
    chunks_per_partition: usize,
    weight: f64,
    total_weight: f64,
) -> SharedAssignment {
    assert!(
        weight.is_finite() && weight > 0.0,
        "job weight must be positive"
    );
    assert!(
        total_weight.is_finite() && total_weight >= weight,
        "total weight must cover the job's own weight"
    );
    let rest = total_weight - weight;
    let (share, slice) = if rest > 0.0 {
        // The job's slice of a two-way split: itself vs everyone else.
        // `split_worker_capacity` yields one slice per weight; should
        // that contract ever break, falling back to the whole pool
        // degrades gracefully instead of panicking mid-service.
        let slice = split_worker_capacity(speeds, &[weight, rest])
            .into_iter()
            .next()
            .unwrap_or_else(|| speeds.to_vec());
        (weight / total_weight, slice)
    } else {
        // Sole resident: the whole pool.
        (1.0, speeds.to_vec())
    };
    match allocate_chunks(&slice, k, chunks_per_partition) {
        Ok(assignment) => SharedAssignment {
            assignment,
            share,
            degraded: false,
        },
        Err(_) => SharedAssignment {
            assignment: full_over_available(speeds, k, chunks_per_partition),
            share,
            degraded: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_resident_job_keeps_exact_coverage() {
        let speeds = [1.0, 0.9, 0.2, 1.1, 0.7, 0.0, 0.8, 1.0];
        let demands = [
            JobDemand {
                k: 4,
                chunks_per_partition: 8,
                weight: 1.0,
            },
            JobDemand {
                k: 6,
                chunks_per_partition: 5,
                weight: 1.0,
            },
            JobDemand {
                k: 2,
                chunks_per_partition: 12,
                weight: 2.0,
            },
        ];
        let out = allocate_shared(&speeds, &demands);
        assert_eq!(out.len(), 3);
        for (d, s) in demands.iter().zip(out.iter()) {
            assert!(!s.degraded);
            assert!(s.assignment.is_decodable(), "k={} lost coverage", d.k);
            assert_eq!(s.assignment.k, d.k);
        }
        let share_sum: f64 = out.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        assert!((out[2].share - 0.5).abs() < 1e-12, "weight-2 job gets half");
    }

    #[test]
    fn shared_shape_matches_dedicated_shape() {
        // Scale invariance: sharing the pool changes rates, not shapes.
        let speeds = [1.0, 0.5, 0.9, 0.3, 1.2, 0.8];
        let demand = JobDemand {
            k: 3,
            chunks_per_partition: 9,
            weight: 1.0,
        };
        let shared = allocate_shared(&speeds, &[demand, demand, demand]);
        let dedicated = allocate_chunks(&speeds, 3, 9).unwrap();
        for s in &shared {
            assert_eq!(s.assignment, dedicated);
        }
    }

    #[test]
    fn infeasible_job_degrades_alone() {
        // Only 3 workers alive: the k=5 job degrades, the k=2 job does not.
        let speeds = [1.0, 0.0, 0.8, 0.0, 0.0, 0.9];
        let demands = [
            JobDemand {
                k: 5,
                chunks_per_partition: 4,
                weight: 1.0,
            },
            JobDemand {
                k: 2,
                chunks_per_partition: 4,
                weight: 1.0,
            },
        ];
        let out = allocate_shared(&speeds, &demands);
        assert!(out[0].degraded);
        assert!(!out[1].degraded);
        assert!(out[1].assignment.is_decodable());
        // Degraded job: every alive worker holds its full partition.
        for (w, &s) in speeds.iter().enumerate() {
            let expect = if s > 0.0 { 4 } else { 0 };
            assert_eq!(out[0].assignment.chunks[w].len(), expect, "worker {w}");
        }
    }

    #[test]
    fn single_resident_slice_matches_shared_entry() {
        let speeds = [1.0, 0.4, 0.0, 0.9, 0.7];
        for residents in 1..=4 {
            let demands: Vec<JobDemand> = (0..residents)
                .map(|_| JobDemand {
                    k: 2,
                    chunks_per_partition: 6,
                    weight: 1.0,
                })
                .collect();
            let shared = allocate_shared(&speeds, &demands);
            let solo = allocate_for_resident(&speeds, 2, 6, 1.0, residents as f64);
            assert_eq!(solo, shared[0], "{residents} residents");
        }
        // Degrade path agrees too (k above alive count).
        let degraded = allocate_for_resident(&speeds, 5, 6, 1.0, 2.0);
        assert!(degraded.degraded);
        assert_eq!(
            degraded,
            allocate_shared(
                &speeds,
                &[JobDemand {
                    k: 5,
                    chunks_per_partition: 6,
                    weight: 1.0
                }; 2]
            )[0]
        );
    }

    #[test]
    fn weighted_resident_slice_matches_shared_entry() {
        // A weight-2 job among total weight 4: its slice and share must
        // match the allocate_shared entry built from the full demand set.
        let speeds = [1.0, 0.4, 0.0, 0.9, 0.7, 1.1];
        let demands = [
            JobDemand {
                k: 2,
                chunks_per_partition: 6,
                weight: 2.0,
            },
            JobDemand {
                k: 3,
                chunks_per_partition: 4,
                weight: 1.5,
            },
            JobDemand {
                k: 2,
                chunks_per_partition: 5,
                weight: 0.5,
            },
        ];
        let shared = allocate_shared(&speeds, &demands);
        for (i, d) in demands.iter().enumerate() {
            let solo = allocate_for_resident(&speeds, d.k, d.chunks_per_partition, d.weight, 4.0);
            assert!((solo.share - shared[i].share).abs() < 1e-12, "job {i}");
            assert_eq!(solo.assignment, shared[i].assignment, "job {i}");
        }
        // Sole resident gets the full pool regardless of weight.
        let solo = allocate_for_resident(&speeds, 2, 6, 3.0, 3.0);
        assert!((solo.share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_over_available_skips_dead_workers() {
        let a = full_over_available(&[1.0, 0.0, 0.5], 2, 3);
        assert_eq!(a.chunks[0].len(), 3);
        assert_eq!(a.chunks[1].len(), 0);
        assert_eq!(a.chunks[2].len(), 3);
        // Over-covered (2 alive ≥ k = 2 per chunk).
        assert!(a.coverage().iter().all(|&c| c >= 2));
    }
}
