//! Workload generation: heterogeneous coded jobs arriving over time.
//!
//! A service engine is only as interesting as its offered load. This
//! module builds deterministic, seeded arrival sequences of [`JobSpec`]s
//! drawn from size [`JobPreset`]s — Poisson arrivals for open-loop load
//! experiments (the regime *Serverless Straggler Mitigation* and the
//! rateless-coding line of work evaluate in), or explicit trace-driven
//! arrival instants for replaying recorded workloads.

use crate::event::JobId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One coded job as submitted to the service engine.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique id (assigned by the generator, ascending in arrival order).
    pub id: JobId,
    /// Owning tenant (fair-share admission groups by this).
    pub tenant: u32,
    /// Data-matrix rows of the iterated matvec.
    pub rows: usize,
    /// Data-matrix columns.
    pub cols: usize,
    /// Recovery threshold of the job's `(n, k)` code (`n` is always the
    /// pool size — every job is encoded across the whole shared pool).
    pub k: usize,
    /// Over-decomposition granularity: chunks per coded partition.
    pub chunks_per_partition: usize,
    /// Number of iterations the job runs before completing.
    pub iterations: usize,
    /// Preset label the job was drawn from (stable key for reporting).
    pub preset: &'static str,
    /// Capacity weight: a weight-2 job is entitled to twice a weight-1
    /// job's fractional rate on every worker while both are resident
    /// (normalized via [`s2c2_core::normalized_shares`]).
    pub weight: f64,
    /// Optional relative SLO: the job should finish within `deadline`
    /// seconds of its *arrival*. Consulted by
    /// [`crate::admission::QueuePolicy::EarliestDeadline`] and the
    /// engine's admission-time infeasibility rejection; reported as
    /// `on_time` in job records.
    pub deadline: Option<f64>,
    /// Identity of the job's model matrix. Jobs sharing a `matrix_id`
    /// (and shape) declare they carry the *same* matrix — the key the
    /// numeric backends' encode cache amortizes over, so a trace
    /// workload re-submitting one model skips re-encoding. Presets stamp
    /// a name-derived default (every job from one preset shares its
    /// model); override per preset/spec with `with_matrix_id`.
    pub matrix_id: u64,
}

impl JobSpec {
    /// Useful work of one iteration, in matrix elements.
    #[must_use]
    pub fn work_per_iteration(&self) -> f64 {
        (self.rows * self.cols) as f64
    }

    /// Total useful work over all iterations, in matrix elements — the
    /// quantity shortest-expected-work admission orders by.
    #[must_use]
    pub fn total_work(&self) -> f64 {
        self.work_per_iteration() * self.iterations as f64
    }

    /// Returns the spec with its capacity weight replaced.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Returns the spec with a relative deadline (seconds after arrival).
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the spec with its model-matrix identity replaced.
    #[must_use]
    pub fn with_matrix_id(mut self, matrix_id: u64) -> Self {
        self.matrix_id = matrix_id;
        self
    }
}

/// FNV-1a over a byte string — the stable default matrix identity for a
/// preset name (no hasher-randomization, reproducible across runs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A job size class: shapes are fixed, the recovery threshold scales
/// with the pool (`k = round(n · k_frac)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobPreset {
    /// Label used in job records and report tables.
    pub name: &'static str,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Recovery threshold as a fraction of the pool size.
    pub k_frac: f64,
    /// Chunks per coded partition.
    pub chunks_per_partition: usize,
    /// Iterations per job.
    pub iterations: usize,
    /// Capacity weight stamped onto instantiated specs (default 1.0).
    pub weight: f64,
    /// Relative deadline stamped onto instantiated specs (default none).
    pub deadline: Option<f64>,
    /// Model-matrix identity stamped onto instantiated specs; `None`
    /// derives a stable id from the preset name, so every job drawn from
    /// one preset carries the same model (the recurring-matrix regime).
    pub matrix_id: Option<u64>,
}

impl JobPreset {
    /// Small interactive job: quick matvec burst.
    #[must_use]
    pub fn small() -> Self {
        JobPreset {
            name: "small",
            rows: 600,
            cols: 32,
            k_frac: 0.75,
            chunks_per_partition: 8,
            iterations: 4,
            weight: 1.0,
            deadline: None,
            matrix_id: None,
        }
    }

    /// Medium job: the bread-and-butter iterative workload.
    #[must_use]
    pub fn medium() -> Self {
        JobPreset {
            name: "medium",
            rows: 1200,
            cols: 48,
            k_frac: 0.75,
            chunks_per_partition: 10,
            iterations: 8,
            weight: 1.0,
            deadline: None,
            matrix_id: None,
        }
    }

    /// Large batch job: long tail of iterations.
    #[must_use]
    pub fn large() -> Self {
        JobPreset {
            name: "large",
            rows: 2400,
            cols: 64,
            k_frac: 0.75,
            chunks_per_partition: 12,
            iterations: 12,
            weight: 1.0,
            deadline: None,
            matrix_id: None,
        }
    }

    /// Returns the preset with its capacity weight replaced.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Returns the preset with a relative deadline (seconds after
    /// arrival) stamped onto every instantiated spec.
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the preset with an explicit model-matrix identity stamped
    /// onto every instantiated spec (instead of the name-derived
    /// default).
    #[must_use]
    pub fn with_matrix_id(mut self, matrix_id: u64) -> Self {
        self.matrix_id = Some(matrix_id);
        self
    }

    /// The default mix used by the experiments: mostly small and medium
    /// jobs with an occasional large batch (weights 5 : 3 : 1).
    #[must_use]
    pub fn standard_mix() -> Vec<(JobPreset, f64)> {
        vec![
            (JobPreset::small(), 5.0),
            (JobPreset::medium(), 3.0),
            (JobPreset::large(), 1.0),
        ]
    }

    /// Instantiates a [`JobSpec`] for a pool of `pool_n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `pool_n == 0`.
    #[must_use]
    pub fn instantiate(&self, id: JobId, tenant: u32, pool_n: usize) -> JobSpec {
        assert!(pool_n > 0, "pool must have at least one worker");
        let k = ((pool_n as f64 * self.k_frac).round() as usize).clamp(1, pool_n);
        JobSpec {
            id,
            tenant,
            rows: self.rows,
            cols: self.cols,
            k,
            chunks_per_partition: self.chunks_per_partition,
            iterations: self.iterations,
            preset: self.name,
            weight: self.weight,
            deadline: self.deadline,
            matrix_id: self
                .matrix_id
                .unwrap_or_else(|| fnv1a(self.name.as_bytes())),
        }
    }
}

/// When jobs arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals at `rate` jobs per second.
    Poisson {
        /// Mean arrival rate (jobs/second, > 0).
        rate: f64,
    },
    /// Explicit arrival instants (seconds, nondecreasing); the generator
    /// emits exactly one job per instant.
    Trace(Vec<f64>),
}

/// Generates a deterministic arrival sequence: `(arrival_time, spec)`
/// pairs sorted by time, ids ascending.
///
/// * `jobs` — number of jobs to emit (for [`ArrivalPattern::Trace`] the
///   effective count is `min(jobs, trace.len())`).
/// * `tenants` — jobs are assigned tenants uniformly at random from
///   `0..tenants`.
/// * `pool_n` — pool size the presets are instantiated against.
///
/// # Panics
///
/// Panics on a non-positive Poisson rate, an empty/negative/unsorted
/// trace, an empty preset mix, non-positive weights, or zero tenants.
#[must_use]
pub fn generate_workload(
    pattern: &ArrivalPattern,
    mix: &[(JobPreset, f64)],
    jobs: usize,
    tenants: u32,
    pool_n: usize,
    seed: u64,
) -> Vec<(f64, JobSpec)> {
    assert!(!mix.is_empty(), "preset mix cannot be empty");
    assert!(
        mix.iter().all(|(_, w)| w.is_finite() && *w > 0.0),
        "preset weights must be positive"
    );
    assert!(tenants > 0, "need at least one tenant");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E_4E_11_0B);

    let times: Vec<f64> = match pattern {
        ArrivalPattern::Poisson { rate } => {
            assert!(rate.is_finite() && *rate > 0.0, "Poisson rate must be > 0");
            let mut t = 0.0;
            (0..jobs)
                .map(|_| {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / rate;
                    t
                })
                .collect()
        }
        ArrivalPattern::Trace(instants) => {
            assert!(!instants.is_empty(), "trace must contain arrivals");
            assert!(
                instants
                    .windows(2)
                    .all(|w| w[0] <= w[1] && w[0].is_finite()),
                "trace instants must be finite and nondecreasing"
            );
            assert!(instants[0] >= 0.0, "trace instants must be non-negative");
            instants.iter().take(jobs).copied().collect()
        }
    };

    let total_weight: f64 = mix.iter().map(|(_, w)| w).sum();
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let mut roll = rng.gen_range(0.0..total_weight);
            let mut chosen = mix[0].0;
            for (preset, w) in mix {
                if roll < *w {
                    chosen = *preset;
                    break;
                }
                roll -= w;
            }
            let tenant = rng.gen_range(0..tenants);
            (t, chosen.instantiate(i as JobId, tenant, pool_n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_times_are_increasing_and_rate_shaped() {
        let w = generate_workload(
            &ArrivalPattern::Poisson { rate: 2.0 },
            &JobPreset::standard_mix(),
            400,
            3,
            16,
            7,
        );
        assert_eq!(w.len(), 400);
        assert!(w.windows(2).all(|p| p[0].0 < p[1].0));
        // Mean inter-arrival ~ 1/rate = 0.5s; allow a generous band.
        let mean = w.last().map_or(f64::NAN, |(t, _)| *t) / 400.0;
        assert!((0.3..0.7).contains(&mean), "mean inter-arrival {mean}");
    }

    #[test]
    fn trace_pattern_replays_instants() {
        let w = generate_workload(
            &ArrivalPattern::Trace(vec![0.0, 0.5, 0.5, 2.0]),
            &[(JobPreset::small(), 1.0)],
            10,
            1,
            8,
            1,
        );
        let times: Vec<f64> = w.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0.0, 0.5, 0.5, 2.0]);
    }

    #[test]
    fn ids_ascend_and_k_scales_with_pool() {
        let w = generate_workload(
            &ArrivalPattern::Poisson { rate: 1.0 },
            &JobPreset::standard_mix(),
            50,
            4,
            16,
            3,
        );
        for (i, (_, spec)) in w.iter().enumerate() {
            assert_eq!(spec.id, i as JobId);
            assert_eq!(spec.k, 12, "0.75 · 16 pool");
            assert!(spec.tenant < 4);
        }
    }

    #[test]
    fn mix_produces_every_preset() {
        let w = generate_workload(
            &ArrivalPattern::Poisson { rate: 1.0 },
            &JobPreset::standard_mix(),
            300,
            2,
            12,
            11,
        );
        for name in ["small", "medium", "large"] {
            assert!(
                w.iter().any(|(_, s)| s.preset == name),
                "{name} never drawn in 300 jobs"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            generate_workload(
                &ArrivalPattern::Poisson { rate: 3.0 },
                &JobPreset::standard_mix(),
                64,
                3,
                16,
                99,
            )
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn work_accounting() {
        let s = JobPreset::medium().instantiate(0, 0, 16);
        assert_eq!(s.work_per_iteration(), (1200 * 48) as f64);
        assert_eq!(s.total_work(), (1200 * 48 * 8) as f64);
    }

    #[test]
    fn qos_knobs_propagate_from_preset_to_spec() {
        let s = JobPreset::small()
            .with_weight(2.5)
            .with_deadline(4.0)
            .instantiate(0, 1, 8);
        assert_eq!(s.weight, 2.5);
        assert_eq!(s.deadline, Some(4.0));
        // Defaults: unit weight, no SLO.
        let d = JobPreset::small().instantiate(1, 0, 8);
        assert_eq!(d.weight, 1.0);
        assert_eq!(d.deadline, None);
        // Spec-level overrides compose too.
        let s2 = d.with_weight(3.0).with_deadline(9.0);
        assert_eq!(s2.weight, 3.0);
        assert_eq!(s2.deadline, Some(9.0));
    }

    #[test]
    fn matrix_identity_recurs_per_preset_and_overrides() {
        // Same preset -> same model matrix (the recurring regime the
        // encode cache amortizes); different presets -> different ids.
        let a = JobPreset::small().instantiate(0, 0, 8);
        let b = JobPreset::small().instantiate(1, 1, 8);
        let c = JobPreset::medium().instantiate(2, 0, 8);
        assert_eq!(a.matrix_id, b.matrix_id);
        assert_ne!(a.matrix_id, c.matrix_id);
        // Explicit identities override, at preset and spec level.
        let d = JobPreset::small().with_matrix_id(42).instantiate(3, 0, 8);
        assert_eq!(d.matrix_id, 42);
        assert_eq!(d.with_matrix_id(43).matrix_id, 43);
    }

    #[test]
    #[should_panic(expected = "Poisson rate must be > 0")]
    fn zero_rate_rejected() {
        let _ = generate_workload(
            &ArrivalPattern::Poisson { rate: 0.0 },
            &[(JobPreset::small(), 1.0)],
            1,
            1,
            4,
            0,
        );
    }
}
