//! The typed discrete-event core: a binary-heap event queue with
//! deterministic FIFO tie-breaking.
//!
//! Everything the service engine does is a reaction to one of the
//! [`EventKind`] variants. Determinism matters more here than in the
//! single-job simulator: many jobs' events interleave at identical
//! timestamps (iteration boundaries, epoch ticks), and the pop order
//! decides admission order, share computation, and therefore every
//! latency percentile the experiments report. The queue guarantees
//! nondecreasing pop times and, among equal times, insertion (FIFO)
//! order — both properties are proptested in `tests/proptest_serve.rs`.

use crate::workload::JobSpec;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a job across its whole service lifetime.
pub type JobId = u64;

/// Every event the service engine reacts to.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A new job enters the system and joins the admission queue.
    JobArrival(JobSpec),
    /// One worker finished its assigned task for one job iteration.
    TaskComplete {
        /// Job the task belongs to.
        job: JobId,
        /// Worker that finished.
        worker: usize,
        /// Iteration generation the task was scheduled under; stale
        /// generations (completed/retried iterations) are ignored.
        generation: u64,
        /// Whether this was a reassigned (redo) task rather than part of
        /// the original allocation.
        redo: bool,
    },
    /// A worker's sampled speed changed at an epoch boundary.
    WorkerSpeedChange {
        /// Affected worker.
        worker: usize,
        /// New relative speed (> 0).
        speed: f64,
    },
    /// A job iteration hit its §4.3-style deadline before completing.
    Timeout {
        /// Affected job.
        job: JobId,
        /// Iteration generation the deadline was armed for.
        generation: u64,
        /// Arming sequence number within the generation. Every (re)arm
        /// of a round's deadline bumps the round's counter; a timeout
        /// whose `arm` no longer matches is stale and ignored. This
        /// keys the guard by round rather than by job-level deadline
        /// value, so a timeout raced against its own re-arm at the same
        /// virtual instant can never fire against a successor round.
        arm: u64,
    },
    /// A worker left (`up == false`) or rejoined (`up == true`) the pool.
    WorkerChurn {
        /// Affected worker.
        worker: usize,
        /// New availability.
        up: bool,
    },
    /// Internal clock tick driving speed resampling and churn advances.
    EpochTick {
        /// Epoch index (multiples of the configured epoch length).
        epoch: usize,
    },
    /// A batch-assembly time window expired: re-run admission so the
    /// deferred batch (and whatever mates accumulated behind it) is
    /// flushed onto the pool. Only scheduled under
    /// [`crate::admission::BatchPolicy::TimeWindow`]; a spurious flush
    /// (the batch was already admitted early on reaching its size cap)
    /// is a harmless no-op.
    BatchFlush,
}

#[derive(Debug)]
struct QueuedEvent {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first,
        // with the *lowest* sequence number winning ties (FIFO).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-time event queue with FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative times — a NaN in the heap would
    /// silently corrupt the ordering invariant.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative, got {time}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, kind });
    }

    /// Pops the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(f64, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Time of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::EpochTick { epoch: 3 });
        q.push(1.0, EventKind::EpochTick { epoch: 1 });
        q.push(2.0, EventKind::EpochTick { epoch: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for epoch in 0..16 {
            q.push(5.0, EventKind::EpochTick { epoch });
        }
        let mut seen = Vec::new();
        while let Some((_, EventKind::EpochTick { epoch })) = q.pop() {
            seen.push(epoch);
        }
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::EpochTick { epoch: 0 });
        q.push(1.0, EventKind::EpochTick { epoch: 1 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(1.0));
        q.push(1.5, EventKind::EpochTick { epoch: 2 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(1.5));
        assert_eq!(q.pop().map(|(t, _)| t), Some(2.0));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::EpochTick { epoch: 0 });
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(4.0, EventKind::EpochTick { epoch: 0 });
        q.push(2.5, EventKind::EpochTick { epoch: 1 });
        assert_eq!(q.peek_time(), Some(2.5));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|(t, _)| t), Some(2.5));
    }
}
