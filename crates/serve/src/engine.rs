//! The event-driven multi-job service engine.
//!
//! [`ServiceEngine`] multiplexes many concurrent coded jobs onto one
//! shared worker pool, driven entirely by the typed events of
//! [`crate::event`]: arrivals join the admission queue, admitted jobs run
//! iterations whose per-worker tasks are scheduled from the shared-cluster
//! S²C² allocation, epoch ticks resample worker speeds and churn, and
//! §4.3-style timeouts recover from mis-predictions and departed workers.
//!
//! # Timing model
//!
//! The engine is a *timing* simulator in the same spirit as
//! [`s2c2_cluster::ClusterSim`]: a task of `E` elements on worker `w`
//! serving job `j` takes `E / (speed_w · share_j · throughput ·
//! thread_speedup)` seconds, plus transfer times from the
//! [`s2c2_cluster::CommModel`]. `share_j` is the fraction of every
//! worker's capacity the shared allocator granted job `j`: the job's
//! capacity weight normalized over the live resident set
//! (`weight_j / Σ weights`, the [`s2c2_core::normalized_shares`] rule),
//! so a weight-2 tenant runs at twice a weight-1 tenant's fractional
//! rate. Speeds are piecewise constant: each task runs at the speed
//! sampled when it was issued, and epoch ticks only affect tasks issued
//! afterwards — the same once-per-iteration granularity the paper
//! measures and predicts at.
//!
//! # Work conservation
//!
//! Shares are *not* frozen at iteration boundaries: whenever the
//! resident set changes (admission, completion, failure), every running
//! iteration's share is recomputed from the live weight mass and its
//! in-flight tasks are rescaled at that instant. Capacity freed by a
//! finishing job flows to its neighbours immediately instead of idling
//! until their iteration boundaries, and a newly admitted job squeezes
//! its neighbours immediately instead of over-subscribing the pool
//! (stale share snapshots were precisely the bug that let reported
//! utilization exceed 1). The rescale stretches a task's whole
//! remaining span — a deliberate approximation: the transfer tail is a
//! few control/row messages, negligible beside compute in the clusters
//! this models.
//!
//! # Deadlines
//!
//! Jobs may carry a relative SLO ([`crate::workload::JobSpec::deadline`]).
//! [`QueuePolicy::EarliestDeadline`] admits by least slack, and with
//! [`ServeConfig::reject_infeasible_deadlines`] the engine refuses, at
//! admission time, jobs whose deadline cannot be met even by the whole
//! pool running the job alone (an optimistic lower bound, so only
//! provably-hopeless jobs are turned away).
//!
//! # Robustness ladder (per iteration)
//!
//! 1. Predictions feasible → shared-cluster S²C² (exactly-`k` coverage).
//! 2. Predictions infeasible (< `k` workers believed alive) → that job
//!    degrades to conventional coded computing over available workers.
//! 3. Deadline miss (mis-prediction, churn) → finished workers recompute
//!    the missing chunks (they already hold the coded partitions — no
//!    data movement, ever).
//! 4. Not enough finished workers → wait out the in-flight stragglers
//!    (conventional semantics).
//! 5. Nobody left (churn storm) → restart the iteration, up to
//!    `max_retries`, then fail the job.

use crate::admission::{QueuePolicy, QueuedJob, ResidentInfo};
use crate::event::{EventKind, EventQueue, JobId};
use crate::metrics::{JobRecord, ServiceReport};
use crate::shared_alloc::{allocate_for_resident, full_over_available};
use crate::workload::JobSpec;
use s2c2_cluster::{ChurnProcess, ClusterSpec, CommModel, ComputeModel};
use s2c2_core::speed_tracker::{PredictorSource, SpeedTracker};
use s2c2_core::{allocate_chunks_basic, ChunkAssignment};
use s2c2_trace::BoxedSpeedModel;
use std::collections::BTreeMap;

/// How the engine schedules coded work onto the pool.
pub enum SchedulerMode {
    /// Even uncoded split over available workers; every task must finish.
    Uncoded,
    /// Conventional `(n, k)` MDS: every available worker computes its full
    /// partition; the master takes the fastest `k` per chunk.
    ConventionalMds,
    /// Shared-cluster S²C²: capacity split across resident jobs, Algorithm
    /// 1 per job on predicted speeds, timeout-and-reassign on mis-
    /// prediction.
    SharedS2c2 {
        /// Where next-iteration speed estimates come from.
        predictor: PredictorSource,
    },
}

impl std::fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerMode::Uncoded => "uncoded",
            SchedulerMode::ConventionalMds => "mds",
            SchedulerMode::SharedS2c2 { .. } => "s2c2",
        };
        f.write_str(s)
    }
}

impl std::fmt::Debug for SchedulerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedulerMode::{self}")
    }
}

/// Worker churn parameters (see [`ChurnProcess`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Per-epoch probability an up worker departs.
    pub p_fail: f64,
    /// Per-epoch probability a departed worker rejoins.
    pub p_recover: f64,
    /// Availability floor (keep ≥ the largest job `k`, or coded jobs can
    /// wait indefinitely for capacity).
    pub min_up: usize,
}

/// Engine configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// Scheduling mode.
    pub scheduler: SchedulerMode,
    /// Admission-queue policy.
    pub policy: QueuePolicy,
    /// Maximum concurrently-resident jobs (the multiprogramming level).
    pub max_resident: usize,
    /// §4.3 timeout margin over the planned iteration span.
    pub timeout_margin: f64,
    /// Seconds between speed/churn resampling epochs.
    pub epoch: f64,
    /// Threads each worker devotes to its matvec. The timing model charges
    /// the near-linear scaling measured for row-partitioned
    /// [`s2c2_linalg::parallel::par_matvec`]: `1 + 0.9 · (threads − 1)`.
    pub worker_threads: usize,
    /// Optional worker churn.
    pub churn: Option<ChurnConfig>,
    /// Iteration restarts tolerated before a job is failed.
    pub max_retries: usize,
    /// Hard event budget (guards against configuration-induced livelock).
    pub max_events: u64,
    /// Deadline admission control: refuse jobs whose SLO cannot be met
    /// even by the whole pool serving them alone (optimistic bound —
    /// only provably-hopeless jobs are rejected). Rejected jobs resolve
    /// immediately as failed with the `rejected` flag set.
    pub reject_infeasible_deadlines: bool,
}

impl ServeConfig {
    /// Sensible defaults around the given scheduling mode.
    #[must_use]
    pub fn new(scheduler: SchedulerMode) -> Self {
        ServeConfig {
            scheduler,
            policy: QueuePolicy::Fifo,
            max_resident: 4,
            timeout_margin: 0.25,
            epoch: 0.25,
            worker_threads: 1,
            churn: None,
            max_retries: 3,
            max_events: 2_000_000,
            reject_infeasible_deadlines: false,
        }
    }
}

/// Engine failure modes.
#[derive(Debug)]
pub enum ServeError {
    /// Rejected configuration.
    InvalidConfig(String),
    /// The event queue drained while jobs were still queued or resident.
    Stalled {
        /// Jobs still in the admission queue.
        pending: usize,
        /// Jobs still resident.
        resident: usize,
    },
    /// The event budget was exhausted (livelock guard).
    Runaway {
        /// Events processed before giving up.
        events: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Stalled { pending, resident } => write!(
                f,
                "engine stalled with {pending} queued and {resident} resident jobs"
            ),
            ServeError::Runaway { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Effective speedup of `threads`-way row-partitioned matvec.
fn thread_speedup(threads: usize) -> f64 {
    1.0 + 0.9 * threads.saturating_sub(1) as f64
}

/// Refunds the not-yet-performed remainder of an abandoned task's compute
/// charge: a task scheduled to finish at `finish` and abandoned at `now`
/// still owes `(finish − now) · share` dedicated compute-seconds (capped
/// at what was charged).
fn refund_busy(busy_time: &mut f64, charged: &mut f64, finish: f64, now: f64, share: f64) {
    let refund = ((finish - now) * share).clamp(0.0, *charged);
    *busy_time -= refund;
    *charged -= refund;
}

/// One in-flight iteration of a resident job.
#[derive(Debug)]
struct RunningIteration {
    generation: u64,
    share: f64,
    k_eff: usize,
    rows_per_chunk: usize,
    assignment: ChunkAssignment,
    /// Scheduled finish time per worker (`INFINITY` = no task).
    finish: Vec<f64>,
    done: Vec<bool>,
    /// `false` once a task is cancelled (deadline) or its worker churned.
    valid: Vec<bool>,
    redo_chunks: Vec<Vec<usize>>,
    redo_finish: Vec<f64>,
    redo_done: Vec<bool>,
    redo_valid: Vec<bool>,
    /// Dedicated compute-seconds charged to `busy_time` per original task
    /// (refunded pro rata when a task is cancelled or abandoned).
    busy_charged: Vec<f64>,
    /// Same, for redo tasks.
    redo_busy_charged: Vec<f64>,
    /// Set once this iteration fell back to waiting out stragglers.
    waited_out: bool,
    /// The currently-armed §4.3 deadline. Timeout events earlier than
    /// this were superseded (share rebalances stretch in-flight spans
    /// and re-arm) and must be ignored, or a squeezed iteration would be
    /// cancelled while legitimately on schedule.
    armed_deadline: f64,
    /// Dedicated share-seconds accumulated over completed share
    /// segments: `∫ share dt` from iteration start to [`share_anchor`].
    /// With rebalancing, `duration · share` is wrong whenever the share
    /// changed mid-task; speed observations must use this integral or
    /// the predictor inherits a bias of up to `old_share / new_share`.
    share_integral: f64,
    /// Instant the current share segment began.
    share_anchor: f64,
}

impl RunningIteration {
    fn covers(&self, worker: usize, chunk: usize) -> bool {
        self.assignment.chunks[worker].binary_search(&chunk).is_ok()
    }

    /// Dedicated share-seconds the iteration has accrued by instant `t`
    /// (`∫ share` over `[start, t]`, exact across share rebalances).
    fn dedicated_by(&self, t: f64) -> f64 {
        self.share_integral + (t - self.share_anchor).max(0.0) * self.share
    }

    fn done_cover(&self, chunk: usize) -> usize {
        let n = self.assignment.workers();
        (0..n)
            .filter(|&w| {
                (self.done[w] && self.covers(w, chunk))
                    || (self.redo_done[w] && self.redo_chunks[w].contains(&chunk))
            })
            .count()
    }

    fn pending_redo_cover(&self, chunk: usize) -> usize {
        let n = self.assignment.workers();
        (0..n)
            .filter(|&w| {
                self.redo_valid[w] && !self.redo_done[w] && self.redo_chunks[w].contains(&chunk)
            })
            .count()
    }

    fn inflight_original_cover(&self, chunk: usize) -> usize {
        let n = self.assignment.workers();
        (0..n)
            .filter(|&w| self.valid[w] && !self.done[w] && self.covers(w, chunk))
            .count()
    }

    fn complete(&self) -> bool {
        (0..self.assignment.chunks_per_partition).all(|c| self.done_cover(c) >= self.k_eff)
    }
}

/// A job currently holding a residency slot.
#[derive(Debug)]
struct ResidentJob {
    spec: JobSpec,
    arrival: f64,
    admitted: f64,
    iterations_done: usize,
    iter: Option<RunningIteration>,
    iter_retries: usize,
    total_retries: usize,
    waiting_for_capacity: bool,
}

/// The event-driven multi-job service engine.
pub struct ServiceEngine {
    cfg: ServeConfig,
    models: Vec<BoxedSpeedModel>,
    comm: CommModel,
    compute: ComputeModel,
    decode_flops_per_sec: f64,
    churn: ChurnProcess,
    tracker: SpeedTracker,
    speeds: Vec<f64>,
    up: Vec<bool>,
    now: f64,
    queue: EventQueue,
    pending: Vec<QueuedJob>,
    resident: BTreeMap<JobId, ResidentJob>,
    arrivals_remaining: usize,
    next_generation: u64,
    report: ServiceReport,
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("workers", &self.models.len())
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .field("resident", &self.resident.len())
            .finish()
    }
}

impl ServiceEngine {
    /// Builds the engine over a cluster specification.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on degenerate knobs.
    pub fn new(spec: ClusterSpec, cfg: ServeConfig) -> Result<Self, ServeError> {
        let n = spec.n();
        if cfg.max_resident == 0 {
            return Err(ServeError::InvalidConfig("max_resident must be ≥ 1".into()));
        }
        if !(cfg.epoch.is_finite() && cfg.epoch > 0.0) {
            return Err(ServeError::InvalidConfig("epoch must be positive".into()));
        }
        if !(cfg.timeout_margin.is_finite() && cfg.timeout_margin >= 0.0) {
            return Err(ServeError::InvalidConfig(
                "timeout margin must be non-negative".into(),
            ));
        }
        if cfg.worker_threads == 0 {
            return Err(ServeError::InvalidConfig(
                "worker_threads must be ≥ 1".into(),
            ));
        }
        let churn = match &cfg.churn {
            Some(c) => {
                if c.min_up > n {
                    return Err(ServeError::InvalidConfig(
                        "churn min_up exceeds pool size".into(),
                    ));
                }
                ChurnProcess::new(n, c.p_fail, c.p_recover, c.min_up, 0x5EEC)
            }
            None => ChurnProcess::none(n),
        };
        let predictor = match &cfg.scheduler {
            SchedulerMode::SharedS2c2 { predictor } => predictor.clone(),
            _ => PredictorSource::Uniform,
        };
        Ok(ServiceEngine {
            tracker: SpeedTracker::new(&predictor, n),
            cfg,
            models: spec.workers,
            comm: spec.comm,
            compute: spec.compute,
            decode_flops_per_sec: spec.decode_flops_per_sec,
            churn,
            speeds: vec![1.0; n],
            up: vec![true; n],
            now: 0.0,
            queue: EventQueue::new(),
            pending: Vec::new(),
            resident: BTreeMap::new(),
            arrivals_remaining: 0,
            next_generation: 1,
            report: ServiceReport {
                busy_time: vec![0.0; n],
                ..ServiceReport::default()
            },
        })
    }

    /// Number of pool workers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.models.len()
    }

    /// Runs the workload (`(arrival_time, spec)` pairs) to completion and
    /// returns the service report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stalled`] if the event queue drains with jobs left
    /// (configuration error — e.g. churn floor below every job's `k`);
    /// [`ServeError::Runaway`] if the event budget is exhausted.
    pub fn run(mut self, workload: &[(f64, JobSpec)]) -> Result<ServiceReport, ServeError> {
        // Initial samples: epoch 0.
        for (w, m) in self.models.iter_mut().enumerate() {
            self.speeds[w] = m.speed_at(0);
        }
        self.up.copy_from_slice(self.churn.advance_to(0));
        self.arrivals_remaining = workload.len();
        for (t, spec) in workload {
            self.queue.push(*t, EventKind::JobArrival(spec.clone()));
        }
        if self.work_remains() {
            self.queue
                .push(self.cfg.epoch, EventKind::EpochTick { epoch: 1 });
        }

        while let Some((t, kind)) = self.queue.pop() {
            self.now = t;
            self.report.events_processed += 1;
            if self.report.events_processed > self.cfg.max_events {
                return Err(ServeError::Runaway {
                    events: self.report.events_processed,
                });
            }
            match kind {
                EventKind::JobArrival(spec) => self.on_arrival(spec),
                EventKind::TaskComplete {
                    job,
                    worker,
                    generation,
                    redo,
                } => self.on_task_complete(job, worker, generation, redo, t),
                EventKind::WorkerSpeedChange { worker, speed } => self.speeds[worker] = speed,
                EventKind::Timeout { job, generation } => self.on_timeout(job, generation),
                EventKind::WorkerChurn { worker, up } => self.on_churn(worker, up),
                EventKind::EpochTick { epoch } => self.on_epoch_tick(epoch),
            }
        }

        // Makespan is the time the last job resolved, not the time the
        // last (possibly stale-straggler) event drained — throughput
        // should not be diluted by work nobody waited for.
        self.report.makespan = self
            .report
            .jobs
            .iter()
            .map(|j| j.finished)
            .fold(0.0, f64::max);
        if !self.pending.is_empty() || !self.resident.is_empty() {
            return Err(ServeError::Stalled {
                pending: self.pending.len(),
                resident: self.resident.len(),
            });
        }
        Ok(self.report)
    }

    fn work_remains(&self) -> bool {
        self.arrivals_remaining > 0 || !self.pending.is_empty() || !self.resident.is_empty()
    }

    fn avail_speeds(&self) -> Vec<f64> {
        self.speeds
            .iter()
            .zip(self.up.iter())
            .map(|(&s, &u)| if u { s } else { 0.0 })
            .collect()
    }

    fn sample_queue_depth(&mut self) {
        self.report.queue_depth.push((self.now, self.pending.len()));
    }

    // ---- event handlers -------------------------------------------------

    fn on_arrival(&mut self, spec: JobSpec) {
        self.arrivals_remaining -= 1;
        let n = self.n();
        let malformed = spec.k == 0
            || spec.k > n
            || spec.rows == 0
            || spec.cols == 0
            || spec.chunks_per_partition == 0
            || spec.iterations == 0
            || !(spec.weight.is_finite() && spec.weight > 0.0)
            || spec.deadline.is_some_and(|d| !(d.is_finite() && d > 0.0));
        if malformed {
            self.report.jobs.push(JobRecord {
                id: spec.id,
                tenant: spec.tenant,
                preset: spec.preset,
                arrival: self.now,
                admitted: self.now,
                finished: self.now,
                iterations: 0,
                retries: 0,
                failed: true,
                rejected: false,
                weight: spec.weight,
                deadline: spec.deadline,
                work: spec.total_work(),
            });
            return;
        }
        self.pending.push(QueuedJob {
            spec,
            arrival: self.now,
        });
        self.sample_queue_depth();
        self.try_admit();
    }

    fn try_admit(&mut self) {
        while self.resident.len() < self.cfg.max_resident {
            let residents: Vec<ResidentInfo> = self
                .resident
                .values()
                .map(|j| ResidentInfo {
                    tenant: j.spec.tenant,
                    weight: j.spec.weight,
                })
                .collect();
            let Some(i) = self.cfg.policy.pick(&self.pending, &residents) else {
                break;
            };
            let queued = self.pending.remove(i);
            if self.cfg.reject_infeasible_deadlines && self.deadline_infeasible(&queued) {
                self.report.jobs.push(JobRecord {
                    id: queued.spec.id,
                    tenant: queued.spec.tenant,
                    preset: queued.spec.preset,
                    arrival: queued.arrival,
                    admitted: self.now,
                    finished: self.now,
                    iterations: 0,
                    retries: 0,
                    failed: true,
                    rejected: true,
                    weight: queued.spec.weight,
                    deadline: queued.spec.deadline,
                    work: queued.spec.total_work(),
                });
                self.sample_queue_depth();
                continue;
            }
            let id = queued.spec.id;
            self.resident.insert(
                id,
                ResidentJob {
                    spec: queued.spec,
                    arrival: queued.arrival,
                    admitted: self.now,
                    iterations_done: 0,
                    iter: None,
                    iter_retries: 0,
                    total_retries: 0,
                    waiting_for_capacity: false,
                },
            );
            // The newcomer contends immediately: squeeze the neighbours
            // now, or the pool would be over-subscribed until their next
            // iteration boundaries.
            self.rebalance_shares();
            self.sample_queue_depth();
            let at = self.now;
            self.start_iteration(id, at);
        }
    }

    /// Optimistic service-time lower bound: the job's total work run on
    /// the whole available pool at once. If even that misses the SLO,
    /// the deadline is provably infeasible.
    fn deadline_infeasible(&self, queued: &QueuedJob) -> bool {
        if queued.spec.deadline.is_none() {
            return false;
        }
        let cap: f64 = self.avail_speeds().iter().sum::<f64>()
            * self.compute.elements_per_sec
            * thread_speedup(self.cfg.worker_threads);
        if cap <= 0.0 {
            // No live capacity to estimate with: nothing is provable.
            return false;
        }
        let min_service = queued.spec.total_work() / cap;
        self.now + min_service > queued.absolute_deadline()
    }

    /// Effective `(k, chunks, rows_per_chunk)` of a job under the current
    /// scheduling mode. Uncoded jobs run as `k = 1` over a finer split
    /// (each chunk computed by exactly one worker — even-split,
    /// wait-for-all).
    fn effective_shape(&self, spec: &JobSpec) -> (usize, usize, usize) {
        match self.cfg.scheduler {
            SchedulerMode::Uncoded => {
                let c = spec.chunks_per_partition * self.n();
                (1, c, spec.rows.div_ceil(c))
            }
            _ => {
                let c = spec.chunks_per_partition;
                let partition_rows = spec.rows.div_ceil(spec.k);
                (spec.k, c, partition_rows.div_ceil(c))
            }
        }
    }

    fn start_iteration(&mut self, id: JobId, at: f64) {
        let avail = self.avail_speeds();
        let alive = avail.iter().filter(|&&s| s > 0.0).count();
        let spec = self.resident[&id].spec.clone();
        let (k_eff, c_eff, rpc) = self.effective_shape(&spec);

        if alive < k_eff {
            let job = self.resident.get_mut(&id).expect("resident job");
            job.waiting_for_capacity = true;
            job.iter = None;
            return;
        }

        // Planning speeds and per-job assignment. Every mode rates the
        // job at its weight-normalized share of the live resident mass —
        // the same `weight / Σ weights` rule `split_worker_capacity`
        // slices capacity by.
        let total_weight: f64 = self
            .resident
            .values()
            .map(|j| j.spec.weight)
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        let weighted_share = (spec.weight / total_weight).min(1.0);
        let (assignment, share, degraded, plan_speeds) = match &self.cfg.scheduler {
            SchedulerMode::Uncoded => {
                let mask: Vec<bool> = avail.iter().map(|&s| s > 0.0).collect();
                let a = allocate_chunks_basic(&mask, 1, c_eff)
                    .expect("alive >= 1 guarantees feasibility");
                let uniform: Vec<f64> = avail
                    .iter()
                    .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
                    .collect();
                (a, weighted_share, false, uniform)
            }
            SchedulerMode::ConventionalMds => {
                let uniform: Vec<f64> = avail
                    .iter()
                    .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
                    .collect();
                (
                    full_over_available(&avail, k_eff, c_eff),
                    weighted_share,
                    false,
                    uniform,
                )
            }
            SchedulerMode::SharedS2c2 { .. } => {
                let preds: Vec<f64> = self
                    .tracker
                    .predictions_from(&avail)
                    .iter()
                    .zip(self.up.iter())
                    .map(|(&p, &u)| if u { p.max(0.0) } else { 0.0 })
                    .collect();
                // Weighted capacity split across the resident set; only
                // this job's slice is needed (neighbours are rescaled by
                // `rebalance_shares` when membership changes).
                let mine = allocate_for_resident(&preds, k_eff, c_eff, spec.weight, total_weight);
                (mine.assignment, mine.share, mine.degraded, preds)
            }
        };

        if degraded {
            self.report.degraded_iterations += 1;
        }

        let n = self.n();
        let generation = self.next_generation;
        self.next_generation += 1;
        let mut iter = RunningIteration {
            generation,
            share,
            k_eff,
            rows_per_chunk: rpc,
            assignment,
            finish: vec![f64::INFINITY; n],
            done: vec![false; n],
            valid: vec![true; n],
            redo_chunks: vec![Vec::new(); n],
            redo_finish: vec![f64::INFINITY; n],
            redo_done: vec![false; n],
            redo_valid: vec![false; n],
            busy_charged: vec![0.0; n],
            redo_busy_charged: vec![0.0; n],
            waited_out: false,
            armed_deadline: f64::INFINITY,
            share_integral: 0.0,
            share_anchor: at,
        };

        let t_in = self.comm.transfer_time((spec.cols * 8) as u64);
        let speedup = thread_speedup(self.cfg.worker_threads);
        let mut max_planned_span: f64 = 0.0;
        let mut max_actual_span: f64 = 0.0;
        for (w, &plan_speed) in plan_speeds.iter().enumerate() {
            let chunks = iter.assignment.chunks[w].len();
            if chunks == 0 {
                continue;
            }
            let rows_w = chunks * rpc;
            let work = (rows_w * spec.cols) as f64;
            let rate = self.speeds[w] * share * self.compute.elements_per_sec * speedup;
            let t_reply = self.comm.transfer_time((rows_w * 8) as u64);
            let span = t_in + work / rate + t_reply;
            iter.finish[w] = at + span;
            max_actual_span = max_actual_span.max(span);
            let plan_rate =
                plan_speed.max(f64::MIN_POSITIVE) * share * self.compute.elements_per_sec * speedup;
            max_planned_span = max_planned_span.max(t_in + work / plan_rate + t_reply);
            // Utilization is accounted in dedicated compute-seconds (the
            // share factor stretches wall time, not work done).
            iter.busy_charged[w] = work / rate * share;
            self.report.busy_time[w] += iter.busy_charged[w];
            self.queue.push(
                iter.finish[w],
                EventKind::TaskComplete {
                    job: id,
                    worker: w,
                    generation,
                    redo: false,
                },
            );
        }

        // Adaptive scheduling arms the deadline from the *plan* (so
        // mis-predictions are caught); the non-adaptive baselines never
        // cancel, so their timeout is a pure churn-recovery safety net
        // armed past every scheduled finish.
        let span = match self.cfg.scheduler {
            SchedulerMode::SharedS2c2 { .. } => max_planned_span,
            _ => max_actual_span,
        };
        let deadline = at + (1.0 + self.cfg.timeout_margin) * span;
        iter.armed_deadline = deadline;
        self.queue.push(
            deadline,
            EventKind::Timeout {
                job: id,
                generation,
            },
        );

        let job = self.resident.get_mut(&id).expect("resident job");
        job.waiting_for_capacity = false;
        job.iter = Some(iter);
    }

    /// Work-conserving share rebalance: recomputes every running
    /// iteration's share from the live resident weight mass and rescales
    /// its in-flight tasks at the current instant. Called whenever the
    /// resident set changes (admission, completion, failure), so shares
    /// always sum to 1 across residents — which is also what keeps
    /// per-worker busy accounting within the service horizon.
    ///
    /// Rescaling stretches a task's whole remaining span by
    /// `old_share / new_share` and reschedules its completion event; the
    /// superseded event is recognized (and dropped) by its stale finish
    /// time. Busy accounting needs no adjustment: a task's dedicated
    /// compute-seconds are share-invariant, and the refund rule
    /// `(finish − now) · share` is preserved exactly by the rescale.
    fn rebalance_shares(&mut self) {
        let total: f64 = self.resident.values().map(|j| j.spec.weight).sum();
        if total <= 0.0 {
            return;
        }
        let now = self.now;
        let margin = self.cfg.timeout_margin;
        let ids: Vec<JobId> = self.resident.keys().copied().collect();
        for id in ids {
            let weight = self.resident[&id].spec.weight;
            let new_share = weight / total;
            let Some(iter) = self.resident.get_mut(&id).and_then(|j| j.iter.as_mut()) else {
                continue;
            };
            let old_share = iter.share;
            if (new_share - old_share).abs() <= 1e-12 * new_share.max(old_share) {
                continue;
            }
            let stretch = old_share / new_share;
            let generation = iter.generation;
            let mut touched = false;
            let mut latest = now;
            for w in 0..iter.assignment.workers() {
                if iter.valid[w]
                    && !iter.done[w]
                    && iter.finish[w].is_finite()
                    && iter.finish[w] > now
                {
                    let nf = now + (iter.finish[w] - now) * stretch;
                    iter.finish[w] = nf;
                    latest = latest.max(nf);
                    touched = true;
                    self.queue.push(
                        nf,
                        EventKind::TaskComplete {
                            job: id,
                            worker: w,
                            generation,
                            redo: false,
                        },
                    );
                }
                if iter.redo_valid[w]
                    && !iter.redo_done[w]
                    && iter.redo_finish[w].is_finite()
                    && iter.redo_finish[w] > now
                {
                    let nf = now + (iter.redo_finish[w] - now) * stretch;
                    iter.redo_finish[w] = nf;
                    latest = latest.max(nf);
                    touched = true;
                    self.queue.push(
                        nf,
                        EventKind::TaskComplete {
                            job: id,
                            worker: w,
                            generation,
                            redo: true,
                        },
                    );
                }
            }
            // Close the old share segment so speed observations integrate
            // the true dedicated time across the change.
            iter.share_integral += (now - iter.share_anchor).max(0.0) * old_share;
            iter.share_anchor = iter.share_anchor.max(now);
            iter.share = new_share;
            if !touched {
                continue;
            }
            self.report.rebalances += 1;
            // Stretched spans can outrun the armed §4.3 deadline; re-arm
            // behind them so a squeezed (not straggling) iteration is
            // not spuriously cancelled.
            if latest >= iter.armed_deadline {
                let deadline = now + (1.0 + margin) * (latest - now).max(f64::MIN_POSITIVE);
                iter.armed_deadline = deadline;
                self.queue.push(
                    deadline,
                    EventKind::Timeout {
                        job: id,
                        generation,
                    },
                );
            }
        }
    }

    fn on_task_complete(&mut self, id: JobId, worker: usize, generation: u64, redo: bool, t: f64) {
        let Some(job) = self.resident.get_mut(&id) else {
            return;
        };
        let Some(iter) = job.iter.as_mut() else {
            return;
        };
        if iter.generation != generation {
            return;
        }
        if redo {
            // A rescheduled (merged) redo task supersedes this event.
            if !iter.redo_valid[worker]
                || iter.redo_done[worker]
                || (t - iter.redo_finish[worker]).abs() > 1e-9
            {
                return;
            }
            iter.redo_done[worker] = true;
        } else {
            // The finish-time match drops completion events superseded
            // by a share rebalance (the task was rescheduled).
            if !iter.valid[worker] || iter.done[worker] || (t - iter.finish[worker]).abs() > 1e-9 {
                return;
            }
            iter.done[worker] = true;
            // Feed the predictor with the observed relative rate. Redo
            // tasks are excluded (their span includes master-side idle
            // time, which would skew the estimate — same rule as the
            // single-job engine). The denominator is the share
            // *integral*, not `duration · share`: rebalances change the
            // share mid-task and the naive product would mis-scale the
            // estimate by up to `old_share / new_share`.
            if matches!(self.cfg.scheduler, SchedulerMode::SharedS2c2 { .. }) {
                let rows_w = iter.assignment.chunks[worker].len() * iter.rows_per_chunk;
                let dedicated = iter
                    .dedicated_by(iter.finish[worker])
                    .max(f64::MIN_POSITIVE);
                let observed = (rows_w * job.spec.cols) as f64 / dedicated;
                let mut obs: Vec<Option<f64>> = vec![None; self.speeds.len()];
                obs[worker] = Some(observed);
                self.tracker.observe(&obs);
            }
        }
        if job.iter.as_ref().expect("still running").complete() {
            self.complete_iteration(id);
        }
    }

    fn complete_iteration(&mut self, id: JobId) {
        let job = self.resident.get_mut(&id).expect("resident job");
        let mut iter = job.iter.take().expect("running iteration");
        // The master stops caring about still-running tasks (conventional
        // stragglers, superfluous redo): refund the compute they will not
        // perform, as real workers drop stale work on the next dispatch.
        for w in 0..iter.assignment.workers() {
            if iter.valid[w] && !iter.done[w] && iter.finish[w].is_finite() {
                refund_busy(
                    &mut self.report.busy_time[w],
                    &mut iter.busy_charged[w],
                    iter.finish[w],
                    self.now,
                    iter.share,
                );
            }
            if iter.redo_valid[w] && !iter.redo_done[w] && iter.redo_finish[w].is_finite() {
                refund_busy(
                    &mut self.report.busy_time[w],
                    &mut iter.redo_busy_charged[w],
                    iter.redo_finish[w],
                    self.now,
                    iter.share,
                );
            }
        }
        let decode_time = match self.cfg.scheduler {
            SchedulerMode::Uncoded => 0.0,
            _ => {
                let flops = decode_flops(&iter);
                flops / self.decode_flops_per_sec
            }
        };
        let end = self.now + decode_time;
        job.iterations_done += 1;
        job.iter_retries = 0;
        if job.iterations_done >= job.spec.iterations {
            let record = JobRecord {
                id,
                tenant: job.spec.tenant,
                preset: job.spec.preset,
                arrival: job.arrival,
                admitted: job.admitted,
                finished: end,
                iterations: job.iterations_done,
                retries: job.total_retries,
                failed: false,
                rejected: false,
                weight: job.spec.weight,
                deadline: job.spec.deadline,
                work: job.spec.total_work(),
            };
            self.report.jobs.push(record);
            self.resident.remove(&id);
            // Work conservation: the freed capacity flows to the
            // survivors now, not at their next iteration boundaries.
            self.rebalance_shares();
            self.try_admit();
        } else {
            self.start_iteration(id, end);
        }
    }

    fn on_timeout(&mut self, id: JobId, generation: u64) {
        let Some(job) = self.resident.get(&id) else {
            return;
        };
        let Some(iter) = job.iter.as_ref() else {
            return;
        };
        if iter.generation != generation {
            return;
        }
        // Superseded deadline: a share rebalance stretched the in-flight
        // spans and re-armed behind them.
        if self.now + 1e-9 < iter.armed_deadline {
            return;
        }
        self.recover(id, true);
    }

    fn on_churn(&mut self, worker: usize, up: bool) {
        self.up[worker] = up;
        if up {
            // Capacity returned: wake jobs stalled on feasibility.
            let waiting: Vec<JobId> = self
                .resident
                .iter()
                .filter(|(_, j)| j.waiting_for_capacity)
                .map(|(&id, _)| id)
                .collect();
            for id in waiting {
                let at = self.now;
                self.start_iteration(id, at);
            }
            return;
        }
        // Departure: invalidate the worker's in-flight tasks and check
        // each affected job for lost coverage.
        let ids: Vec<JobId> = self.resident.keys().copied().collect();
        for id in ids {
            let Some(iter) = self.resident.get_mut(&id).and_then(|j| j.iter.as_mut()) else {
                continue;
            };
            let mut affected = false;
            if iter.valid[worker] && !iter.done[worker] && iter.finish[worker].is_finite() {
                iter.valid[worker] = false;
                refund_busy(
                    &mut self.report.busy_time[worker],
                    &mut iter.busy_charged[worker],
                    iter.finish[worker],
                    self.now,
                    iter.share,
                );
                affected = true;
            }
            if iter.redo_valid[worker] && !iter.redo_done[worker] {
                iter.redo_valid[worker] = false;
                refund_busy(
                    &mut self.report.busy_time[worker],
                    &mut iter.redo_busy_charged[worker],
                    iter.redo_finish[worker],
                    self.now,
                    iter.share,
                );
                affected = true;
            }
            if !affected {
                continue;
            }
            let doomed = (0..iter.assignment.chunks_per_partition).any(|c| {
                iter.done_cover(c) + iter.pending_redo_cover(c) + iter.inflight_original_cover(c)
                    < iter.k_eff
            });
            if doomed {
                self.recover(id, false);
            }
        }
    }

    fn on_epoch_tick(&mut self, epoch: usize) {
        for (w, m) in self.models.iter_mut().enumerate() {
            let s = m.speed_at(epoch);
            if (s - self.speeds[w]).abs() > f64::EPSILON {
                self.queue.push(
                    self.now,
                    EventKind::WorkerSpeedChange {
                        worker: w,
                        speed: s,
                    },
                );
            }
        }
        let mask = self.churn.advance_to(epoch).to_vec();
        for (w, (&new, &old)) in mask.iter().zip(self.up.iter()).enumerate() {
            if new != old {
                self.queue
                    .push(self.now, EventKind::WorkerChurn { worker: w, up: new });
            }
        }
        if self.work_remains() {
            self.queue.push(
                self.now + self.cfg.epoch,
                EventKind::EpochTick { epoch: epoch + 1 },
            );
        }
    }

    // ---- recovery -------------------------------------------------------

    /// Deadline-miss / churn recovery: the robustness ladder's rungs 3–5.
    #[allow(clippy::too_many_lines)]
    fn recover(&mut self, id: JobId, from_timeout: bool) {
        let now = self.now;
        let speedup = thread_speedup(self.cfg.worker_threads);
        let cancel_late = matches!(self.cfg.scheduler, SchedulerMode::SharedS2c2 { .. });
        let cols = self.resident[&id].spec.cols;
        let margin = self.cfg.timeout_margin;
        let elements_per_sec = self.compute.elements_per_sec;
        let comm = self.comm;
        let speeds = self.speeds.clone();
        let up = self.up.clone();

        let job = self.resident.get_mut(&id).expect("resident job");
        let iter = job.iter.as_mut().expect("running iteration");
        let n = iter.assignment.workers();
        let c = iter.assignment.chunks_per_partition;
        let rpc = iter.rows_per_chunk;

        // Outstanding need per chunk. Adaptive mode writes in-flight
        // originals off as cancelled (the §4.3 rule); the baselines keep
        // counting on them (they only recover from churn).
        let mut need = vec![0usize; c];
        let mut total_need = 0usize;
        for (chunk, slot) in need.iter_mut().enumerate() {
            let mut have = iter.done_cover(chunk) + iter.pending_redo_cover(chunk);
            if !cancel_late {
                have += iter.inflight_original_cover(chunk);
            }
            *slot = iter.k_eff.saturating_sub(have);
            total_need += *slot;
        }

        let reschedule_after_inflight = |iter: &RunningIteration| -> f64 {
            let mut latest = now;
            for w in 0..n {
                if iter.valid[w] && !iter.done[w] && iter.finish[w].is_finite() {
                    latest = latest.max(iter.finish[w]);
                }
                if iter.redo_valid[w] && !iter.redo_done[w] && iter.redo_finish[w].is_finite() {
                    latest = latest.max(iter.redo_finish[w]);
                }
            }
            now + (1.0 + margin) * (latest - now).max(f64::MIN_POSITIVE)
        };

        if total_need == 0 {
            // Everything outstanding is already being handled; re-arm the
            // safety net behind the open tasks.
            let deadline = reschedule_after_inflight(iter);
            let generation = iter.generation;
            iter.armed_deadline = deadline;
            self.queue.push(
                deadline,
                EventKind::Timeout {
                    job: id,
                    generation,
                },
            );
            return;
        }

        // Rung 3: hand the missing chunks to finished, still-present
        // workers (they hold the coded partitions — no data movement).
        let hosts: Vec<usize> = (0..n).filter(|&w| iter.done[w] && up[w]).collect();
        let mut extra: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut satisfiable = true;
        'chunks: for (chunk, &need_c) in need.iter().enumerate() {
            for _ in 0..need_c {
                let pick = hosts
                    .iter()
                    .copied()
                    .filter(|&w| {
                        !iter.covers(w, chunk)
                            && !iter.redo_chunks[w].contains(&chunk)
                            && !extra[w].contains(&chunk)
                    })
                    .min_by(|&a, &b| {
                        (iter.redo_chunks[a].len() + extra[a].len())
                            .cmp(&(iter.redo_chunks[b].len() + extra[b].len()))
                            .then(iter.finish[a].total_cmp(&iter.finish[b]))
                            .then(a.cmp(&b))
                    });
                match pick {
                    Some(w) => extra[w].push(chunk),
                    None => {
                        satisfiable = false;
                        break 'chunks;
                    }
                }
            }
        }

        if satisfiable {
            if cancel_late {
                // Cancel the late workers AND feed the estimator what the
                // master actually learned: by the deadline each cancelled
                // worker had processed `rate · elapsed` elements (the
                // single-job engine's partial-observation rule). Without
                // this, a cold-start straggler is cancelled before it can
                // ever report a speed and stays mispredicted forever.
                let mut obs: Vec<Option<f64>> = vec![None; n];
                let mut any_cancelled = false;
                let t_in = comm.transfer_time((cols * 8) as u64);
                for (w, slot) in obs.iter_mut().enumerate() {
                    // `is_finite` matters: a worker with no task this
                    // iteration has finish == INFINITY, and "cancelling"
                    // it would fabricate a near-zero speed observation
                    // that permanently excludes a healthy worker.
                    if iter.valid[w]
                        && !iter.done[w]
                        && iter.finish[w].is_finite()
                        && iter.finish[w] > now
                    {
                        iter.valid[w] = false;
                        refund_busy(
                            &mut self.report.busy_time[w],
                            &mut iter.busy_charged[w],
                            iter.finish[w],
                            now,
                            iter.share,
                        );
                        let rows_w = iter.assignment.chunks[w].len() * rpc;
                        let work = (rows_w * cols) as f64;
                        let t_reply = comm.transfer_time((rows_w * 8) as u64);
                        // Reconstruct progress in *dedicated* share-
                        // seconds (the share integral), not wall time —
                        // rebalances change the share mid-task, and wall
                        // spans would misattribute the mixed-share
                        // window. Comm legs are charged at the current
                        // share (exact when the share never changed).
                        let ded_total = iter.dedicated_by(iter.finish[w]).max(f64::MIN_POSITIVE);
                        let ded_elapsed = iter.dedicated_by(now).max(f64::MIN_POSITIVE);
                        let ded_comm = (t_in + t_reply) * iter.share;
                        let compute_ded = (ded_total - ded_comm).max(f64::MIN_POSITIVE);
                        let rate = work / compute_ded;
                        let partial = (rate * (ded_elapsed - t_in * iter.share).max(0.0)).min(work);
                        *slot = Some(partial.max(1.0) / ded_elapsed);
                        any_cancelled = true;
                    }
                }
                if any_cancelled {
                    self.tracker.observe(&obs);
                }
            }
            let generation = iter.generation;
            let mut latest_redo = now;
            for (w, new_chunks) in extra.into_iter().enumerate() {
                if new_chunks.is_empty() {
                    continue;
                }
                // Merge with any still-pending redo on the same worker:
                // the combined task finishes after both workloads.
                let base = if iter.redo_valid[w] && !iter.redo_done[w] {
                    iter.redo_finish[w]
                } else {
                    now
                };
                let rows_w = new_chunks.len() * rpc;
                let work = (rows_w * cols) as f64;
                let rate = speeds[w] * iter.share * elements_per_sec * speedup;
                // Coded hosts already hold the partitions, so the work
                // order is a 64-byte control message; uncoded hosts must
                // first receive the raw rows being reassigned.
                let order_bytes = if matches!(self.cfg.scheduler, SchedulerMode::Uncoded) {
                    64 + (rows_w * cols * 8) as u64
                } else {
                    64
                };
                let finish = base
                    + comm.transfer_time(order_bytes)
                    + work / rate
                    + comm.transfer_time((rows_w * 8) as u64);
                iter.redo_chunks[w].extend(new_chunks);
                iter.redo_finish[w] = finish;
                iter.redo_done[w] = false;
                iter.redo_valid[w] = true;
                latest_redo = latest_redo.max(finish);
                iter.redo_busy_charged[w] += work / rate * iter.share;
                self.report.busy_time[w] += work / rate * iter.share;
                self.queue.push(
                    finish,
                    EventKind::TaskComplete {
                        job: id,
                        worker: w,
                        generation,
                        redo: true,
                    },
                );
            }
            if from_timeout {
                self.report.timeouts += 1;
            }
            let deadline = now + (1.0 + margin) * (latest_redo - now).max(f64::MIN_POSITIVE);
            iter.armed_deadline = deadline;
            self.queue.push(
                deadline,
                EventKind::Timeout {
                    job: id,
                    generation,
                },
            );
            return;
        }

        // Rung 4: not enough finished workers — wait out whatever is
        // still in flight (conventional semantics).
        let has_inflight = (0..n).any(|w| {
            (iter.valid[w] && !iter.done[w] && iter.finish[w].is_finite())
                || (iter.redo_valid[w] && !iter.redo_done[w])
        });
        if has_inflight {
            if !iter.waited_out {
                iter.waited_out = true;
                self.report.degraded_iterations += 1;
            }
            let deadline = reschedule_after_inflight(iter);
            let generation = iter.generation;
            iter.armed_deadline = deadline;
            self.queue.push(
                deadline,
                EventKind::Timeout {
                    job: id,
                    generation,
                },
            );
            return;
        }

        // Rung 5: churn storm took everyone — restart the iteration.
        job.iter = None;
        job.iter_retries += 1;
        job.total_retries += 1;
        if job.iter_retries > self.cfg.max_retries {
            let record = JobRecord {
                id,
                tenant: job.spec.tenant,
                preset: job.spec.preset,
                arrival: job.arrival,
                admitted: job.admitted,
                finished: now,
                iterations: job.iterations_done,
                retries: job.total_retries,
                failed: true,
                rejected: false,
                weight: job.spec.weight,
                deadline: job.spec.deadline,
                work: job.spec.total_work(),
            };
            self.report.jobs.push(record);
            self.resident.remove(&id);
            self.rebalance_shares();
            self.try_admit();
        } else {
            self.start_iteration(id, now);
        }
    }
}

/// Master-side decode cost of a completed iteration (same model as the
/// single-job engine: per chunk, LU on the missing systematic rows).
fn decode_flops(iter: &RunningIteration) -> f64 {
    let n = iter.assignment.workers();
    let k = iter.k_eff;
    let rpc = iter.rows_per_chunk as f64;
    let mut flops = 0.0;
    for chunk in 0..iter.assignment.chunks_per_partition {
        let mut finishers: Vec<(f64, usize)> = (0..n)
            .filter_map(|w| {
                if iter.done[w] && iter.covers(w, chunk) {
                    Some((iter.finish[w], w))
                } else if iter.redo_done[w] && iter.redo_chunks[w].contains(&chunk) {
                    Some((iter.redo_finish[w], w))
                } else {
                    None
                }
            })
            .collect();
        finishers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let missing = finishers.iter().take(k).filter(|&&(_, w)| w >= k).count() as f64;
        flops += missing.powi(3) / 3.0 + rpc * missing.powi(2) + missing * k as f64 * rpc;
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, ArrivalPattern, JobPreset};

    fn pool(n: usize, stragglers: &[usize]) -> ClusterSpec {
        ClusterSpec::builder(n)
            .compute_bound()
            .seed(0xFEED)
            .straggler_slowdown(5.0)
            .stragglers(stragglers, 0.2)
            .build()
    }

    fn workload(jobs: usize, rate: f64, n: usize, seed: u64) -> Vec<(f64, JobSpec)> {
        generate_workload(
            &ArrivalPattern::Poisson { rate },
            &JobPreset::standard_mix(),
            jobs,
            3,
            n,
            seed,
        )
    }

    fn run_mode(mode: SchedulerMode, jobs: usize, rate: f64) -> ServiceReport {
        let n = 12;
        let engine = ServiceEngine::new(pool(n, &[2, 7]), ServeConfig::new(mode)).unwrap();
        engine.run(&workload(jobs, rate, n, 5)).unwrap()
    }

    #[test]
    fn single_job_completes() {
        let n = 8;
        let spec = JobPreset::small().instantiate(0, 0, n);
        let engine = ServiceEngine::new(
            pool(n, &[]),
            ServeConfig::new(SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            }),
        )
        .unwrap();
        let report = engine.run(&[(0.0, spec)]).unwrap();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 0);
        assert!(report.jobs[0].latency() > 0.0);
        assert!(report.makespan > 0.0);
        assert!(report.utilization() > 0.0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run_mode(
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
            20,
            1.5,
        );
        let b = run_mode(
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
            20,
            1.5,
        );
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn s2c2_beats_conventional_tail_under_stragglers() {
        let s2c2 = run_mode(
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
            30,
            1.2,
        );
        let mds = run_mode(SchedulerMode::ConventionalMds, 30, 1.2);
        assert_eq!(s2c2.completed(), 30);
        assert_eq!(mds.completed(), 30);
        assert!(
            s2c2.latency_percentile(99.0) < mds.latency_percentile(99.0),
            "s2c2 p99 {} should beat mds p99 {}",
            s2c2.latency_percentile(99.0),
            mds.latency_percentile(99.0)
        );
    }

    #[test]
    fn uncoded_pays_the_straggler_tax() {
        let uncoded = run_mode(SchedulerMode::Uncoded, 15, 0.5);
        let s2c2 = run_mode(
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
            15,
            0.5,
        );
        assert_eq!(uncoded.completed(), 15);
        assert!(
            uncoded.mean_latency() > s2c2.mean_latency(),
            "uncoded {} should trail s2c2 {}",
            uncoded.mean_latency(),
            s2c2.mean_latency()
        );
    }

    #[test]
    fn queue_builds_under_load_and_drains() {
        let report = run_mode(SchedulerMode::ConventionalMds, 40, 8.0);
        assert_eq!(report.completed(), 40);
        assert!(report.max_queue_depth() > 0, "overload must queue");
        assert_eq!(report.queue_depth.last().unwrap().1, 0, "queue drains");
    }

    #[test]
    fn mispredictions_fire_timeouts() {
        // Uniform predictions on a straggler pool: the adaptive engine
        // must detect and recover via timeouts.
        let n = 12;
        let engine = ServiceEngine::new(
            pool(n, &[0, 5]),
            ServeConfig::new(SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::Uniform,
            }),
        )
        .unwrap();
        let report = engine.run(&workload(10, 1.0, n, 9)).unwrap();
        assert_eq!(report.completed(), 10);
        assert!(report.timeouts > 0, "uniform predictions must mispredict");
    }

    #[test]
    fn survives_churn() {
        let n = 12;
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.churn = Some(ChurnConfig {
            p_fail: 0.05,
            p_recover: 0.4,
            min_up: 10,
        });
        cfg.max_retries = 10;
        let engine = ServiceEngine::new(pool(n, &[3]), cfg).unwrap();
        let report = engine.run(&workload(25, 1.0, n, 21)).unwrap();
        assert_eq!(
            report.completed() + report.failed(),
            25,
            "every job resolves"
        );
        assert!(
            report.completed() >= 23,
            "churn floor keeps most jobs alive"
        );
    }

    #[test]
    fn malformed_job_fails_fast() {
        let n = 4;
        let mut spec = JobPreset::small().instantiate(0, 0, 8);
        spec.k = 8; // bigger than the 4-worker pool
        let engine = ServiceEngine::new(
            pool(n, &[]),
            ServeConfig::new(SchedulerMode::ConventionalMds),
        )
        .unwrap();
        let report = engine.run(&[(0.0, spec)]).unwrap();
        assert_eq!(report.failed(), 1);
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn worker_threads_cut_latency() {
        let base = {
            let engine = ServiceEngine::new(
                pool(12, &[2]),
                ServeConfig::new(SchedulerMode::SharedS2c2 {
                    predictor: PredictorSource::LastValue,
                }),
            )
            .unwrap();
            engine.run(&workload(12, 1.0, 12, 13)).unwrap()
        };
        let threaded = {
            let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            });
            cfg.worker_threads = 4;
            let engine = ServiceEngine::new(pool(12, &[2]), cfg).unwrap();
            engine.run(&workload(12, 1.0, 12, 13)).unwrap()
        };
        assert!(
            threaded.mean_latency() < base.mean_latency(),
            "4-thread workers {} should beat 1-thread {}",
            threaded.mean_latency(),
            base.mean_latency()
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
        cfg.max_resident = 0;
        assert!(matches!(
            ServiceEngine::new(pool(4, &[]), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
        let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
        cfg.epoch = 0.0;
        assert!(ServiceEngine::new(pool(4, &[]), cfg).is_err());
    }

    #[test]
    fn fair_share_spreads_tenants() {
        // Two tenants, one flooding: fair-share must still admit the
        // other tenant's job ahead of the flood's backlog.
        let n = 8;
        let mut arrivals: Vec<(f64, JobSpec)> = (0..6)
            .map(|i| (0.001 * i as f64, JobPreset::medium().instantiate(i, 0, n)))
            .collect();
        arrivals.push((0.01, JobPreset::small().instantiate(6, 1, n)));
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.policy = QueuePolicy::FairShare;
        cfg.max_resident = 2;
        let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
        let report = engine.run(&arrivals).unwrap();
        assert_eq!(report.completed(), 7);
        let tenant1 = report.jobs.iter().find(|j| j.tenant == 1).unwrap();
        // The tenant-1 job must not be admitted last even though it
        // arrived last: fair share jumps it over the flood.
        let later_admitted = report
            .jobs
            .iter()
            .filter(|j| j.tenant == 0 && j.admitted > tenant1.admitted)
            .count();
        assert!(later_admitted >= 2, "fair share should leapfrog the flood");
    }

    #[test]
    fn thread_speedup_model() {
        assert_eq!(thread_speedup(1), 1.0);
        assert!((thread_speedup(4) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn utilization_stays_within_bounds_with_abandoned_tasks() {
        // Regression for the stale-share oversubscription bug: one huge
        // single-iteration job snapshots the pool alone, then a stream
        // of small jobs arrives mid-iteration. MDS over-provisions, so
        // plenty of straggler tasks are abandoned (refunded) when the
        // fastest k finish. Utilization used to report 1.24.
        let n = 8;
        let mut big = JobPreset::large().instantiate(0, 0, n);
        big.rows = 200_000;
        big.iterations = 1;
        let mut arrivals: Vec<(f64, JobSpec)> = vec![(0.0, big)];
        for i in 1..40u64 {
            arrivals.push((0.02 * i as f64, JobPreset::small().instantiate(i, 0, n)));
        }
        for mode in [
            SchedulerMode::ConventionalMds,
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
        ] {
            let engine = ServiceEngine::new(pool(n, &[2]), ServeConfig::new(mode)).unwrap();
            let r = engine.run(&arrivals).unwrap();
            assert_eq!(r.completed(), 40);
            assert!(
                (0.0..=1.0).contains(&r.utilization()),
                "utilization {} out of [0, 1]",
                r.utilization()
            );
            // The invariant behind it: no worker is busier than the
            // service horizon, even before the metric-level truncation.
            let max_busy = r.busy_time.iter().cloned().fold(0.0, f64::max);
            assert!(
                max_busy <= r.makespan + 1e-6,
                "worker busy {max_busy} exceeds makespan {}",
                r.makespan
            );
            assert!(r.rebalances > 0, "membership churn must rebalance");
        }
    }

    #[test]
    fn weighted_tenant_gets_proportional_throughput() {
        // Two tenants with identical job streams; tenant 1 weighs 2.
        // Under saturation its censored work share must approach 2x.
        let n = 12;
        let mut arrivals = Vec::new();
        for i in 0..24u64 {
            let tenant = (i % 2) as u32;
            let w = if tenant == 1 { 2.0 } else { 1.0 };
            arrivals.push((
                0.01 * i as f64,
                JobPreset::medium().with_weight(w).instantiate(i, tenant, n),
            ));
        }
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.policy = QueuePolicy::WeightedFairShare;
        cfg.max_resident = 2;
        let engine = ServiceEngine::new(pool(n, &[3]), cfg).unwrap();
        let r = engine.run(&arrivals).unwrap();
        assert_eq!(r.completed(), 24);
        let tenants = r.tenant_summaries();
        assert!((tenants[0].entitled_share - 1.0 / 3.0).abs() < 1e-12);
        assert!((tenants[1].entitled_share - 2.0 / 3.0).abs() < 1e-12);
        let ratio = tenants[1].achieved_share / tenants[0].achieved_share;
        assert!(
            ratio >= 1.8,
            "weight-2 tenant achieved only {ratio:.2}x the weight-1 share"
        );
    }

    #[test]
    fn work_conserving_rebalance_frees_capacity_early() {
        // Job A runs one long iteration; job B shares the pool briefly
        // and departs. With work conservation A reclaims the freed half
        // immediately, so its latency stays close to the solo run —
        // without it, A would crawl at share 1/2 for the whole span.
        let n = 8;
        let mut long_job = JobPreset::large().instantiate(0, 0, n);
        long_job.rows = 100_000;
        long_job.iterations = 1;
        let solo = {
            let engine = ServiceEngine::new(
                pool(n, &[]),
                ServeConfig::new(SchedulerMode::ConventionalMds),
            )
            .unwrap();
            engine.run(&[(0.0, long_job.clone())]).unwrap()
        };
        let shared = {
            let engine = ServiceEngine::new(
                pool(n, &[]),
                ServeConfig::new(SchedulerMode::ConventionalMds),
            )
            .unwrap();
            let mut small = JobPreset::small().instantiate(1, 1, n);
            small.iterations = 1;
            engine
                .run(&[(0.0, long_job.clone()), (0.0, small)])
                .unwrap()
        };
        let solo_latency = solo.jobs[0].latency();
        let shared_latency = shared
            .jobs
            .iter()
            .find(|j| j.id == 0)
            .expect("long job resolves")
            .latency();
        assert!(
            shared_latency < 1.3 * solo_latency,
            "work conservation should keep the long job near its solo \
             latency: solo {solo_latency:.3}, shared {shared_latency:.3}"
        );
        assert!(shared.rebalances > 0);
    }

    #[test]
    fn infeasible_deadlines_rejected_at_admission() {
        let n = 8;
        // A deadline no pool could meet, next to a comfortably feasible
        // neighbour.
        let hopeless = JobPreset::large().with_deadline(1e-6).instantiate(0, 0, n);
        let fine = JobPreset::small().with_deadline(60.0).instantiate(1, 0, n);
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.reject_infeasible_deadlines = true;
        let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
        let r = engine.run(&[(0.0, hopeless), (0.0, fine)]).unwrap();
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.completed(), 1);
        let rejected = r.jobs.iter().find(|j| j.rejected).unwrap();
        assert_eq!(rejected.id, 0);
        assert!(rejected.failed);
        assert!(!rejected.on_time());
        let served = r.jobs.iter().find(|j| !j.failed).unwrap();
        assert!(served.on_time());
        // Without the knob the hopeless job is served (late) instead.
        let cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
        let hopeless = JobPreset::large().with_deadline(1e-6).instantiate(0, 0, n);
        let fine = JobPreset::small().with_deadline(60.0).instantiate(1, 0, n);
        let r = engine.run(&[(0.0, hopeless), (0.0, fine)]).unwrap();
        assert_eq!(r.rejected(), 0);
        assert_eq!(r.completed(), 2);
        assert!(r.on_time_ratio() < 1.0);
    }

    #[test]
    fn earliest_deadline_admission_beats_fifo_on_time() {
        // A burst of loose-deadline work arrives just before one
        // tight-deadline job: FIFO makes it wait out the burst, EDF
        // jumps it forward.
        let n = 8;
        let build = |policy: QueuePolicy| {
            let mut arrivals: Vec<(f64, JobSpec)> = (0..6)
                .map(|i| {
                    (
                        0.001 * i as f64,
                        JobPreset::medium()
                            .with_deadline(120.0)
                            .instantiate(i, 0, n),
                    )
                })
                .collect();
            arrivals.push((
                0.01,
                JobPreset::small().with_deadline(3.0).instantiate(6, 1, n),
            ));
            let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            });
            cfg.policy = policy;
            cfg.max_resident = 1;
            let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
            engine.run(&arrivals).unwrap()
        };
        let fifo = build(QueuePolicy::Fifo);
        let edf = build(QueuePolicy::EarliestDeadline);
        assert_eq!(fifo.completed(), 7);
        assert_eq!(edf.completed(), 7);
        assert!(
            edf.on_time_ratio() > fifo.on_time_ratio(),
            "EDF on-time {} must beat FIFO {}",
            edf.on_time_ratio(),
            fifo.on_time_ratio()
        );
    }

    #[test]
    fn malformed_qos_fields_fail_fast() {
        let n = 4;
        let bad_weight = JobPreset::small().with_weight(0.0).instantiate(0, 0, n);
        let bad_deadline = JobPreset::small().with_deadline(-1.0).instantiate(1, 0, n);
        let engine = ServiceEngine::new(
            pool(n, &[]),
            ServeConfig::new(SchedulerMode::ConventionalMds),
        )
        .unwrap();
        let r = engine
            .run(&[(0.0, bad_weight), (0.0, bad_deadline)])
            .unwrap();
        assert_eq!(r.failed(), 2);
        assert_eq!(r.completed(), 0);
    }
}
