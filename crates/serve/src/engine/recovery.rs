//! The §4.3 robustness ladder's recovery rungs (3–5): cancel late
//! workers and hand their chunks to finished ones, wait out stragglers
//! when nobody has spare capacity, and restart the iteration when a
//! churn storm took everyone.
//!
//! Under pipelined serving every rung operates *per in-flight round*:
//! recovery is keyed by the round's generation, touches only that
//! round's tasks, and a rung-5 restart re-dispatches the same round
//! index while later window rounds keep running (their results park
//! until the restarted round commits).
//!
//! Every cancellation and reassignment is mirrored to the execution
//! backend, so a real-threads run cancels the same worker tasks (via
//! the [`s2c2_cluster::threaded::ThreadedCluster`] cooperative-cancel
//! hook) and dispatches the same redo work the timing model schedules.

use super::core::{reclaim_scratch, refund_busy, RunningIteration};
use super::{thread_speedup, trace_into, SchedulerMode, ServeError, ServiceEngine};
use crate::event::{EventKind, JobId};
use crate::metrics::JobRecord;
use s2c2_telemetry::TraceEventKind;

impl ServiceEngine {
    /// Deadline-miss / churn recovery for one in-flight round: the
    /// robustness ladder's rungs 3–5.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn recover(
        &mut self,
        id: JobId,
        generation: u64,
        from_timeout: bool,
    ) -> Result<(), ServeError> {
        let now = self.now;
        let speedup = thread_speedup(self.cfg.worker_threads);
        let cancel_late = matches!(self.cfg.scheduler, SchedulerMode::SharedS2c2 { .. });
        let margin = self.cfg.timeout_margin;
        let elements_per_sec = self.compute.elements_per_sec;
        let comm = self.comm;
        let speeds = self.speeds.clone();
        let up = self.up.clone();

        // Both lookups are graceful: a churn sweep may queue several
        // doomed generations for one job, and an earlier rung-5 restart
        // can have failed the whole job (or replaced the round) before a
        // later entry is processed.
        let Some(job) = self.resident.get_mut(&id) else {
            return Ok(());
        };
        let cols = job.members[0].spec.cols;
        let Some(pos) = job.window.iter().position(|r| r.generation == generation) else {
            return Ok(());
        };
        if job.window[pos].parked_at.is_some() {
            // Coverage already complete; the round is only waiting for an
            // earlier sibling to retire. Nothing to recover.
            return Ok(());
        }
        let iter = &mut job.window[pos];
        let n = iter.assignment.workers();
        let c = iter.assignment.chunks_per_partition;
        let rpc = iter.rows_per_chunk;
        // A mid-batch straggler degrades or redoes *per batch*: the
        // whole stacked round is recovered at once, so per-member
        // coverage accounting (every member decodes from the identical
        // worker/chunk set) can never diverge inside one batch.
        let rhs = iter.rhs;

        // Outstanding need per chunk. Adaptive mode writes in-flight
        // originals off as cancelled (the §4.3 rule); the baselines keep
        // counting on them (they only recover from churn).
        let mut need = vec![0usize; c];
        let mut total_need = 0usize;
        for (chunk, slot) in need.iter_mut().enumerate() {
            let mut have = iter.done_cover(chunk) + iter.pending_redo_cover(chunk);
            if !cancel_late {
                have += iter.inflight_original_cover(chunk);
            }
            *slot = iter.k_eff.saturating_sub(have);
            total_need += *slot;
        }

        let reschedule_after_inflight = |iter: &RunningIteration| -> f64 {
            let mut latest = now;
            for w in 0..n {
                if iter.valid[w] && !iter.done[w] && iter.finish[w].is_finite() {
                    latest = latest.max(iter.finish[w]);
                }
                if iter.redo_valid[w] && !iter.redo_done[w] && iter.redo_finish[w].is_finite() {
                    latest = latest.max(iter.redo_finish[w]);
                }
            }
            now + (1.0 + margin) * (latest - now).max(f64::MIN_POSITIVE)
        };

        if total_need == 0 {
            // Everything outstanding is already being handled; re-arm the
            // safety net behind the open tasks.
            let deadline = reschedule_after_inflight(iter);
            iter.armed_deadline = deadline;
            iter.armed_seq += 1;
            let arm = iter.armed_seq;
            self.queue.push(
                deadline,
                EventKind::Timeout {
                    job: id,
                    generation,
                    arm,
                },
            );
            return Ok(());
        }

        // Rung 3: hand the missing chunks to finished, still-present
        // workers (they hold the coded partitions — no data movement).
        let hosts: Vec<usize> = (0..n).filter(|&w| iter.done[w] && up[w]).collect();
        let mut extra: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut satisfiable = true;
        'chunks: for (chunk, &need_c) in need.iter().enumerate() {
            for _ in 0..need_c {
                let pick = hosts
                    .iter()
                    .copied()
                    .filter(|&w| {
                        !iter.covers(w, chunk)
                            && !iter.redo_chunks[w].contains(&chunk)
                            && !extra[w].contains(&chunk)
                    })
                    .min_by(|&a, &b| {
                        (iter.redo_chunks[a].len() + extra[a].len())
                            .cmp(&(iter.redo_chunks[b].len() + extra[b].len()))
                            .then(iter.finish[a].total_cmp(&iter.finish[b]))
                            .then(a.cmp(&b))
                    });
                match pick {
                    Some(w) => extra[w].push(chunk),
                    None => {
                        satisfiable = false;
                        break 'chunks;
                    }
                }
            }
        }

        if satisfiable {
            if cancel_late {
                // Cancel the late workers AND feed the estimator what the
                // master actually learned: by the deadline each cancelled
                // worker had processed `rate · elapsed` elements (the
                // single-job engine's partial-observation rule). Without
                // this, a cold-start straggler is cancelled before it can
                // ever report a speed and stays mispredicted forever.
                let mut obs: Vec<Option<f64>> = vec![None; n];
                let mut any_cancelled = false;
                let t_in = comm.transfer_time((cols * rhs * 8) as u64);
                for (w, slot) in obs.iter_mut().enumerate() {
                    // `is_finite` matters: a worker with no task this
                    // iteration has finish == INFINITY, and "cancelling"
                    // it would fabricate a near-zero speed observation
                    // that permanently excludes a healthy worker.
                    if iter.valid[w]
                        && !iter.done[w]
                        && iter.finish[w].is_finite()
                        && iter.finish[w] > now
                    {
                        iter.valid[w] = false;
                        refund_busy(
                            &mut self.report.busy_time[w],
                            &mut iter.busy_charged[w],
                            iter.finish[w],
                            now,
                            iter.share,
                        );
                        self.backend.on_cancel(id, iter.generation, w, false);
                        trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                            job: id,
                            worker: w,
                            generation,
                            redo: false,
                        });
                        let rows_w = iter.assignment.chunks[w].len() * rpc;
                        let work = ((rows_w * cols) * rhs) as f64;
                        let t_reply = comm.transfer_time(((rows_w * rhs) * 8) as u64);
                        // Reconstruct progress in *dedicated* share-
                        // seconds (the share integral), not wall time —
                        // rebalances change the share mid-task, and wall
                        // spans would misattribute the mixed-share
                        // window. Comm legs are charged at the current
                        // share (exact when the share never changed).
                        // Pipelined rounds subtract the queueing offset
                        // spent waiting behind earlier window rounds
                        // (identically 0 at depth 1).
                        let ded_total = (iter.dedicated_by(iter.finish[w]) - iter.ded_offset[w])
                            .max(f64::MIN_POSITIVE);
                        let ded_elapsed =
                            (iter.dedicated_by(now) - iter.ded_offset[w]).max(f64::MIN_POSITIVE);
                        let ded_comm = (t_in + t_reply) * iter.share;
                        let compute_ded = (ded_total - ded_comm).max(f64::MIN_POSITIVE);
                        let rate = work / compute_ded;
                        let partial = (rate * (ded_elapsed - t_in * iter.share).max(0.0)).min(work);
                        *slot = Some(partial.max(1.0) / ded_elapsed);
                        any_cancelled = true;
                    }
                }
                if any_cancelled {
                    self.tracker.observe(&obs);
                }
            }
            // Rung 3 of the ladder: chunks actually move to finished
            // workers this recovery pass.
            self.report.recovery_rung_counts[2] += 1;
            trace_into(&mut self.telemetry, now, || TraceEventKind::RecoveryRung {
                job: id,
                generation,
                rung: 3,
            });
            let mut latest_redo = now;
            for (w, new_chunks) in extra.into_iter().enumerate() {
                if new_chunks.is_empty() {
                    continue;
                }
                // Dispatch the reassigned chunks for real before merging
                // them into the timing model's bookkeeping.
                self.backend
                    .on_redo(id, generation, w, &new_chunks)
                    .map_err(ServeError::Backend)?;
                // Merge with any still-pending redo on the same worker:
                // the combined task finishes after both workloads.
                let base = if iter.redo_valid[w] && !iter.redo_done[w] {
                    iter.redo_finish[w]
                } else {
                    now
                };
                let rows_w = new_chunks.len() * rpc;
                let work = ((rows_w * cols) * rhs) as f64;
                let rate = speeds[w] * iter.share * elements_per_sec * speedup;
                // Coded hosts already hold the partitions, so the work
                // order is a 64-byte control message; uncoded hosts must
                // first receive the raw rows being reassigned.
                let order_bytes = if matches!(self.cfg.scheduler, SchedulerMode::Uncoded) {
                    64 + ((rows_w * cols) * rhs * 8) as u64
                } else {
                    64
                };
                let finish = base
                    + comm.transfer_time(order_bytes)
                    + work / rate
                    + comm.transfer_time(((rows_w * rhs) * 8) as u64);
                iter.redo_chunks[w].extend(new_chunks);
                iter.redo_finish[w] = finish;
                iter.redo_done[w] = false;
                iter.redo_valid[w] = true;
                latest_redo = latest_redo.max(finish);
                iter.redo_busy_charged[w] += work / rate * iter.share;
                self.report.busy_time[w] += work / rate * iter.share;
                let chunks = iter.redo_chunks[w].len();
                trace_into(&mut self.telemetry, now, || TraceEventKind::TaskDispatch {
                    job: id,
                    worker: w,
                    generation,
                    chunks,
                    redo: true,
                });
                self.queue.push(
                    finish,
                    EventKind::TaskComplete {
                        job: id,
                        worker: w,
                        generation,
                        redo: true,
                    },
                );
            }
            if from_timeout {
                self.report.timeouts += 1;
            }
            let deadline = now + (1.0 + margin) * (latest_redo - now).max(f64::MIN_POSITIVE);
            iter.armed_deadline = deadline;
            iter.armed_seq += 1;
            let arm = iter.armed_seq;
            self.queue.push(
                deadline,
                EventKind::Timeout {
                    job: id,
                    generation,
                    arm,
                },
            );
            return Ok(());
        }

        // Rung 4: not enough finished workers — wait out whatever is
        // still in flight (conventional semantics).
        let has_inflight = (0..n).any(|w| {
            (iter.valid[w] && !iter.done[w] && iter.finish[w].is_finite())
                || (iter.redo_valid[w] && !iter.redo_done[w])
        });
        if has_inflight {
            if !iter.waited_out {
                iter.waited_out = true;
                self.report.degraded_iterations += 1;
                // Rung 4: no spare finished workers — conventional
                // wait-out. Counted once per iteration (the flag), not
                // once per re-armed deadline.
                self.report.recovery_rung_counts[3] += 1;
                trace_into(&mut self.telemetry, now, || TraceEventKind::RecoveryRung {
                    job: id,
                    generation,
                    rung: 4,
                });
            }
            let deadline = reschedule_after_inflight(iter);
            iter.armed_deadline = deadline;
            iter.armed_seq += 1;
            let arm = iter.armed_seq;
            self.queue.push(
                deadline,
                EventKind::Timeout {
                    job: id,
                    generation,
                    arm,
                },
            );
            return Ok(());
        }

        // Rung 5: churn storm took everyone — restart this round. Later
        // window rounds keep running: their completions park behind the
        // commit cursor until the restarted round retires.
        self.report.recovery_rung_counts[4] += 1;
        trace_into(&mut self.telemetry, now, || TraceEventKind::RecoveryRung {
            job: id,
            generation,
            rung: 5,
        });
        let failed_round = job.window.remove(pos);
        let round_index = failed_round.round_index;
        reclaim_scratch(&mut self.scratch, failed_round);
        self.backend.on_iteration_abandoned(id, generation);
        job.iter_retries += 1;
        job.total_retries += 1;
        if job.iter_retries > self.cfg.max_retries {
            // The retry budget is a property of the residency: when it
            // is exhausted, every member of the batch fails together,
            // each with its own record. The rest of the window is torn
            // down with it — cancel every surviving in-flight task and
            // abandon each round at the backend.
            while !job.window.is_empty() {
                let mut r = job.window.remove(0);
                let gen_r = r.generation;
                for w in 0..r.assignment.workers() {
                    if r.valid[w] && !r.done[w] && r.finish[w].is_finite() {
                        r.valid[w] = false;
                        refund_busy(
                            &mut self.report.busy_time[w],
                            &mut r.busy_charged[w],
                            r.finish[w],
                            now,
                            r.share,
                        );
                        self.backend.on_cancel(id, gen_r, w, false);
                        trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                            job: id,
                            worker: w,
                            generation: gen_r,
                            redo: false,
                        });
                    }
                    if r.redo_valid[w] && !r.redo_done[w] && r.redo_finish[w].is_finite() {
                        r.redo_valid[w] = false;
                        refund_busy(
                            &mut self.report.busy_time[w],
                            &mut r.redo_busy_charged[w],
                            r.redo_finish[w],
                            now,
                            r.share,
                        );
                        self.backend.on_cancel(id, gen_r, w, true);
                        trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                            job: id,
                            worker: w,
                            generation: gen_r,
                            redo: true,
                        });
                    }
                }
                self.backend.on_iteration_abandoned(id, gen_r);
                reclaim_scratch(&mut self.scratch, r);
            }
            for m in &job.members {
                let record = JobRecord {
                    id: m.spec.id,
                    tenant: m.spec.tenant,
                    preset: m.spec.preset,
                    arrival: m.arrival,
                    admitted: job.admitted,
                    finished: now,
                    iterations: job.iterations_done,
                    retries: job.total_retries,
                    failed: true,
                    rejected: false,
                    rate_limited: false,
                    weight: m.spec.weight,
                    deadline: m.spec.deadline,
                    work: m.spec.total_work(),
                };
                self.report.jobs.push(record);
                let (jid, tenant) = (m.spec.id, m.spec.tenant);
                trace_into(&mut self.telemetry, now, || TraceEventKind::JobFailed {
                    job: jid,
                    tenant,
                });
            }
            let member_ids: Vec<JobId> = job.members.iter().map(|m| m.spec.id).collect();
            self.resident.remove(&id);
            for mid in member_ids {
                self.backend.on_job_resolved(mid);
            }
            self.rebalance_shares();
            self.try_admit()?;
        } else {
            self.dispatch_round(id, round_index, now)?;
        }
        Ok(())
    }
}
