//! Pluggable execution backends: what a scheduled task *does*.
//!
//! The event loop decides *when* work happens; a backend decides
//! *whether anything is actually computed*:
//!
//! * [`BackendKind::Sim`] — nothing is. Jobs carry no data; the engine
//!   is the pure timing simulator it always was (bit-identical event
//!   streams and reports).
//! * [`BackendKind::SimVerified`] — every job carries a real model
//!   matrix, deterministically derived from its
//!   [`JobSpec::matrix_id`], encoded once through a shared
//!   [`EncodeCache`]. When the timing model completes an iteration, the
//!   master recomputes exactly the chunk responses of the workers the
//!   timing model credited, decodes them with [`s2c2_coding`], and
//!   checks the result against a sequential `A·x` reference. No OS
//!   threads — the numerics oracle.
//! * [`BackendKind::Threaded`] — same numerics, but the encoded chunk
//!   work is dispatched to real [`ThreadedCluster`] OS-thread workers
//!   when the iteration *starts*, cancelled cooperatively when the
//!   recovery ladder cancels (late stragglers, churn), re-dispatched on
//!   redo assignment, and collected/decoded at iteration completion.
//!   The schedule the engine decides is the schedule real threads
//!   execute, end to end.
//!
//! Both numeric backends draw per-iteration inputs `x` from the same
//! deterministic generator and decode from identical response sets, so
//! their decoded outputs agree to within threading-independent FP
//! reproducibility (proptested in `tests/proptest_serve.rs`). Cache
//! hit/miss counters, verified-iteration counts, the worst observed
//! decode error, and per-job final outputs are merged into the
//! [`ServiceReport`] when the engine finishes.

use super::core::RunningIteration;
use crate::event::JobId;
use crate::metrics::ServiceReport;
use crate::workload::JobSpec;
use s2c2_cluster::threaded::{CancelToken, ThreadedCluster};
use s2c2_coding::cache::{CachedEncoding, EncodeCache, EncodeKey};
use s2c2_coding::chunks::MultiChunkResult;
use s2c2_linalg::{Matrix, MultiVector, Vector};
use s2c2_telemetry::PhaseTotals;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Relative decode-vs-reference divergence that fails a verified run.
/// Decoding solves at most `(n − k) × (n − k)` systems over a
/// well-conditioned random parity, so honest runs sit orders of
/// magnitude below this.
const VERIFY_TOL: f64 = 1e-6;

/// How long the threaded backend waits for worker replies at an
/// iteration boundary before declaring the executor wedged.
const COLLECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Which execution backend the engine drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Timing-only simulation; no job data, nothing computed (default).
    Sim,
    /// Timing simulation plus master-side sequential numerics: encode
    /// via the shared cache, decode every completed iteration from the
    /// timing model's worker coverage, verify against `A·x`.
    SimVerified,
    /// Real OS-thread workers ([`ThreadedCluster`]): chunk tasks are
    /// dispatched at iteration start, cooperatively cancelled in step
    /// with the recovery ladder, and decoded/verified at completion.
    Threaded,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackendKind::Sim => "sim",
            BackendKind::SimVerified => "sim-verified",
            BackendKind::Threaded => "threaded",
        };
        f.write_str(s)
    }
}

/// The seam between the event loop and execution. Hook errors are
/// surfaced as [`super::ServeError::Backend`].
///
/// Iteration-level hooks receive the *member specs* of the residency's
/// batch (a solo job passes a one-element slice, `specs[0]` is always
/// the leader whose id keys the engine's events): a batch round
/// dispatches one stacked multi-RHS task per worker, whose contiguous
/// reply blocks feed the stacked decoder directly — every member is
/// decoded and verified from one pass, with no per-member
/// de-interleaving.
pub(crate) trait ExecutionBackend {
    /// A job was admitted: materialize/encode its model (via the cache)
    /// under the engine's effective code geometry. Called once per
    /// batch member; members after the first hit the encode cache by
    /// construction.
    fn on_admit(&mut self, spec: &JobSpec, k_eff: usize, c_eff: usize) -> Result<(), String>;
    /// An iteration was scheduled: dispatch its per-worker chunk tasks,
    /// stacked across every member's input vector.
    fn on_iteration_start(
        &mut self,
        specs: &[JobSpec],
        iter: &RunningIteration,
        iteration_index: usize,
    ) -> Result<(), String>;
    /// The recovery ladder reassigned `chunks` to finished worker
    /// `worker` (rung 3): dispatch the redo work.
    fn on_redo(
        &mut self,
        job: JobId,
        generation: u64,
        worker: usize,
        chunks: &[usize],
    ) -> Result<(), String>;
    /// The engine stopped caring about a worker's task (cancelled late
    /// straggler, churned worker, or superfluous work at completion).
    fn on_cancel(&mut self, job: JobId, generation: u64, worker: usize, redo: bool);
    /// The timing model completed an iteration: collect/compute the
    /// credited workers' stacked blocks and decode/verify every batch
    /// member from them in one stacked pass.
    fn on_iteration_complete(
        &mut self,
        specs: &[JobSpec],
        iter: &RunningIteration,
        iteration_index: usize,
        is_final: bool,
    ) -> Result<(), String>;
    /// A churn storm forced an iteration restart (rung 5).
    fn on_iteration_abandoned(&mut self, job: JobId, generation: u64);
    /// The job left the resident set (completed or failed).
    fn on_job_resolved(&mut self, job: JobId);
    /// The run is over (successfully or not): release executor
    /// resources and merge backend counters into the report.
    fn finish(&mut self, report: &mut ServiceReport);
}

/// Builds the configured backend for an `n`-worker pool.
pub(crate) fn make_backend(kind: BackendKind, n: usize) -> Box<dyn ExecutionBackend> {
    match kind {
        BackendKind::Sim => Box::new(SimBackend),
        BackendKind::SimVerified => Box::new(SimVerifiedBackend {
            core: NumericCore::default(),
            n,
        }),
        BackendKind::Threaded => Box::new(ThreadedBackend::spawn(n)),
    }
}

// ---- deterministic job data ---------------------------------------------

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[-1, 1)` from a hash (reproducible across backends).
fn unit(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// The model matrix a job's `matrix_id` denotes. Jobs sharing an id and
/// shape get bit-identical matrices — the recurring-model regime the
/// encode cache amortizes.
pub(crate) fn model_matrix(matrix_id: u64, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        unit(matrix_id ^ ((r as u64) << 24) ^ c as u64)
    })
}

/// The input vector of one job iteration (same in every backend).
pub(crate) fn iteration_input(job: JobId, iteration: usize, cols: usize) -> Vector {
    Vector::from_fn(cols, |i| {
        unit(
            job.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ (iteration as u64).wrapping_mul(0x9E37_79B9)
                ^ i as u64,
        )
    })
}

// ---- Sim ----------------------------------------------------------------

/// Timing-only backend: every hook is a no-op.
struct SimBackend;

impl ExecutionBackend for SimBackend {
    fn on_admit(&mut self, _: &JobSpec, _: usize, _: usize) -> Result<(), String> {
        Ok(())
    }
    fn on_iteration_start(
        &mut self,
        _: &[JobSpec],
        _: &RunningIteration,
        _: usize,
    ) -> Result<(), String> {
        Ok(())
    }
    fn on_redo(&mut self, _: JobId, _: u64, _: usize, _: &[usize]) -> Result<(), String> {
        Ok(())
    }
    fn on_cancel(&mut self, _: JobId, _: u64, _: usize, _: bool) {}
    fn on_iteration_complete(
        &mut self,
        _: &[JobSpec],
        _: &RunningIteration,
        _: usize,
        _: bool,
    ) -> Result<(), String> {
        Ok(())
    }
    fn on_iteration_abandoned(&mut self, _: JobId, _: u64) {}
    fn on_job_resolved(&mut self, _: JobId) {}
    fn finish(&mut self, _: &mut ServiceReport) {}
}

// ---- shared numeric state -----------------------------------------------

/// Per-job numeric state shared by the verified backends.
struct NumericJob {
    enc: Arc<CachedEncoding>,
    a: Arc<Matrix>,
    /// Per in-flight round, keyed by iteration index: the deterministic
    /// input and its sequential reference (`A·x`). Pipelined serving
    /// holds up to `depth` live entries at once; the barrier engine
    /// exactly one. Entries are consumed at verification (and dropped
    /// wholesale when the job resolves).
    rounds: BTreeMap<usize, (Arc<Vector>, Vector)>,
}

/// Upper bound on pooled stacked-input buffers (see
/// [`NumericCore::recycle`]).
const XS_POOL_CAP: usize = 16;

/// Encode/decode/verify plumbing shared by [`SimVerifiedBackend`] and
/// [`ThreadedBackend`].
#[derive(Default)]
struct NumericCore {
    cache: EncodeCache,
    jobs: BTreeMap<JobId, NumericJob>,
    /// Reference matrices by identity — resident jobs sharing a
    /// `matrix_id` alias one allocation instead of each materializing
    /// its own copy. A `BTreeMap` on principle: nothing report-visible
    /// may sit behind hashed iteration order.
    models: BTreeMap<(u64, usize, usize), Arc<Matrix>>,
    verified: usize,
    max_error: f64,
    outputs: Vec<(JobId, Vec<f64>)>,
    /// Real wall time this backend spent per pipeline phase (encode is
    /// read off the cache at merge time; compute is filled by the
    /// concrete backend that owns the compute loop).
    phase_wall: PhaseTotals,
    /// Stacked multi-RHS input buffers returned by completed rounds,
    /// reused (fully overwritten) by the next round of identical shape
    /// instead of reallocating `members × cols` doubles per round.
    xs_pool: Vec<MultiVector>,
    /// How many rounds drew their input buffer from the pool.
    xs_reuses: u64,
}

impl NumericCore {
    fn admit(
        &mut self,
        spec: &JobSpec,
        n: usize,
        k_eff: usize,
        c_eff: usize,
    ) -> Result<(), String> {
        let key = EncodeKey {
            matrix_id: spec.matrix_id,
            rows: spec.rows,
            cols: spec.cols,
            n,
            k: k_eff,
            chunks_per_partition: c_eff,
        };
        let (matrix_id, rows, cols) = (spec.matrix_id, spec.rows, spec.cols);
        let enc = self
            .cache
            .get_or_encode(key, || model_matrix(matrix_id, rows, cols))
            .map_err(|e| format!("job {} encode failed: {e}", spec.id))?;
        // The reference matrix lives beside (not inside) the encode
        // cache — the cache stays exactly what workers need — but is
        // likewise shared by identity, so recurring jobs neither
        // rebuild nor duplicate it.
        let a = Arc::clone(
            self.models
                .entry((matrix_id, rows, cols))
                .or_insert_with(|| Arc::new(model_matrix(matrix_id, rows, cols))),
        );
        self.jobs.insert(
            spec.id,
            NumericJob {
                enc,
                a,
                rounds: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Materializes the round's deterministic input and its reference.
    /// Idempotent per round index: a rung-5 restart re-dispatches the
    /// same index, and the input is a pure function of `(job, index)`,
    /// so the existing entry is reused.
    fn begin_iteration(&mut self, spec: &JobSpec, iteration_index: usize) -> Result<(), String> {
        let job = self
            .jobs
            .get_mut(&spec.id)
            .ok_or_else(|| format!("job {} iterated before admission", spec.id))?;
        if !job.rounds.contains_key(&iteration_index) {
            let x = Arc::new(iteration_input(spec.id, iteration_index, spec.cols));
            let y_ref = job.a.matvec(&x);
            job.rounds.insert(iteration_index, (x, y_ref));
        }
        Ok(())
    }

    /// Returns a round's stacked input buffer to the pool once nothing
    /// else holds it (threaded workers may still own clones briefly; a
    /// contended buffer is simply dropped).
    fn recycle(&mut self, xs: Arc<MultiVector>) {
        if self.xs_pool.len() < XS_POOL_CAP {
            if let Ok(v) = Arc::try_unwrap(xs) {
                self.xs_pool.push(v);
            }
        }
    }

    /// The shared encoding and the stacked member inputs of one batch
    /// round, as a single contiguous multi-RHS buffer (one member for a
    /// solo job). Members share the encoding by batch-key construction
    /// (same matrix identity, shape, and code geometry), so the
    /// leader's cached entry serves the whole group.
    fn batch_inputs(
        &mut self,
        specs: &[JobSpec],
        iteration_index: usize,
    ) -> Result<(Arc<CachedEncoding>, Arc<MultiVector>), String> {
        let leader = self
            .jobs
            .get(&specs[0].id)
            .ok_or_else(|| format!("job {} iterated before admission", specs[0].id))?;
        let enc = Arc::clone(&leader.enc);
        // Draw a shape-matching buffer from the pool when one is free;
        // every member slot is fully overwritten below, so reuse is
        // bit-invisible to the numerics.
        let (count, cols) = (specs.len(), specs[0].cols);
        let mut xs = match self
            .xs_pool
            .iter()
            .position(|v| v.count() == count && v.len() == cols)
        {
            Some(i) => {
                self.xs_reuses += 1;
                self.xs_pool.swap_remove(i)
            }
            None => MultiVector::zeros(count, cols),
        };
        for (m, s) in specs.iter().enumerate() {
            let job = self
                .jobs
                .get(&s.id)
                .ok_or_else(|| format!("job {} iterated before admission", s.id))?;
            let (x, _) = job
                .rounds
                .get(&iteration_index)
                .ok_or_else(|| format!("job {} round {iteration_index} input missing", s.id))?;
            xs.member_mut(m).copy_from_slice(x.as_slice());
        }
        Ok((enc, Arc::new(xs)))
    }

    /// Decodes the round's stacked blocks (all members in one pass, LU
    /// factored once per chunk), verifies every member against its
    /// sequential reference, and records the outcomes.
    fn verify_multi(
        &mut self,
        specs: &[JobSpec],
        blocks: &[MultiChunkResult],
        iteration_index: usize,
        is_final: bool,
    ) -> Result<(), String> {
        let leader = self
            .jobs
            .get(&specs[0].id)
            .ok_or_else(|| format!("job {} completed before admission", specs[0].id))?;
        let t0 = Instant::now();
        let outs = leader
            .enc
            .code
            .decode_matvec_multi(leader.enc.encoded.layout(), blocks)
            .map_err(|e| format!("job {} decode failed: {e}", specs[0].id))?;
        self.phase_wall.decode += t0.elapsed().as_secs_f64();
        if outs.len() != specs.len() {
            return Err(format!(
                "batch led by job {} decoded {} members, expected {}",
                specs[0].id,
                outs.len(),
                specs.len()
            ));
        }
        let t0 = Instant::now();
        for (spec, y) in specs.iter().zip(outs) {
            // Consume (not just read) the round's reference: rounds
            // commit in order exactly once, and the entry must not
            // outlive its round under pipelining.
            let (_, y_ref) = self
                .jobs
                .get_mut(&spec.id)
                .ok_or_else(|| format!("job {} completed before admission", spec.id))?
                .rounds
                .remove(&iteration_index)
                .ok_or_else(|| {
                    format!("job {} round {iteration_index} reference missing", spec.id)
                })?;
            let scale = 1.0 + y_ref.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let err = y
                .as_slice()
                .iter()
                .zip(y_ref.as_slice())
                .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
                / scale;
            if err.is_nan() || err > VERIFY_TOL {
                return Err(format!(
                    "job {} decoded output diverged from the sequential reference \
                     (relative error {err:.3e} > {VERIFY_TOL:.0e})",
                    spec.id
                ));
            }
            self.verified += 1;
            self.max_error = self.max_error.max(err);
            if is_final {
                self.outputs.push((spec.id, y.into_vec()));
            }
        }
        self.phase_wall.verify += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn merge_into(&mut self, report: &mut ServiceReport) {
        report.encode_cache_hits = self.cache.hits();
        report.encode_cache_misses = self.cache.misses();
        report.verified_iterations = self.verified;
        report.max_decode_error = self.max_error;
        report.job_outputs = std::mem::take(&mut self.outputs);
        report.scratch_reuses += self.xs_reuses;
        self.phase_wall.encode = self.cache.encode_seconds();
        report.phase_wall.add(&self.phase_wall);
    }
}

/// The response set the timing model credits for a completed iteration:
/// every done worker's original chunks plus every done redo set — the
/// exact coverage `RunningIteration::complete` certified.
fn credited_coverage(iter: &RunningIteration) -> Vec<(usize, Vec<usize>, bool)> {
    let mut cover = Vec::new();
    for w in 0..iter.assignment.workers() {
        if iter.done[w] && !iter.assignment.chunks[w].is_empty() {
            cover.push((w, iter.assignment.chunks[w].clone(), false));
        }
        if iter.redo_done[w] && !iter.redo_chunks[w].is_empty() {
            cover.push((w, iter.redo_chunks[w].clone(), true));
        }
    }
    cover
}

// ---- SimVerified --------------------------------------------------------

/// Master-side numerics: recompute the credited coverage sequentially at
/// iteration completion. The dispatch/cancel hooks are no-ops — nothing
/// runs concurrently, so there is nothing to cancel.
struct SimVerifiedBackend {
    core: NumericCore,
    /// Pool size (code length of every job's encoding).
    n: usize,
}

impl ExecutionBackend for SimVerifiedBackend {
    fn on_admit(&mut self, spec: &JobSpec, k_eff: usize, c_eff: usize) -> Result<(), String> {
        self.core.admit(spec, self.n, k_eff, c_eff)
    }
    fn on_iteration_start(
        &mut self,
        specs: &[JobSpec],
        _iter: &RunningIteration,
        iteration_index: usize,
    ) -> Result<(), String> {
        for spec in specs {
            self.core.begin_iteration(spec, iteration_index)?;
        }
        Ok(())
    }
    fn on_redo(&mut self, _: JobId, _: u64, _: usize, _: &[usize]) -> Result<(), String> {
        Ok(())
    }
    fn on_cancel(&mut self, _: JobId, _: u64, _: usize, _: bool) {}
    fn on_iteration_complete(
        &mut self,
        specs: &[JobSpec],
        iter: &RunningIteration,
        iteration_index: usize,
        is_final: bool,
    ) -> Result<(), String> {
        // One stacked block per (worker, chunk) the decoder will
        // actually consume — the same kernel the threaded workers run.
        // The decode rule keeps the lowest-k worker ids per chunk
        // (fastest-k with deterministic systematic preference), so this
        // backend truncates the credited coverage *before* computing:
        // responses beyond k would be materialized only to be dropped.
        let (enc, xs) = self.core.batch_inputs(specs, iteration_index)?;
        let k = enc.encoded.params().k;
        let mut per_chunk: Vec<Vec<usize>> =
            vec![Vec::new(); enc.encoded.layout().chunks_per_partition];
        for (w, chunks, _redo) in credited_coverage(iter) {
            for &chunk in &chunks {
                per_chunk[chunk].push(w);
            }
        }
        let t0 = Instant::now();
        let mut blocks = Vec::new();
        for (chunk, mut ws) in per_chunk.into_iter().enumerate() {
            ws.sort_unstable();
            ws.truncate(k);
            for w in ws {
                blocks.push(enc.encoded.worker_compute_chunk_multi(w, chunk, &xs));
            }
        }
        self.core.phase_wall.compute += t0.elapsed().as_secs_f64();
        // Nothing else holds the buffer here (the compute loop borrows
        // it), so it always returns to the pool.
        self.core.recycle(xs);
        self.core
            .verify_multi(specs, &blocks, iteration_index, is_final)
    }
    fn on_iteration_abandoned(&mut self, _: JobId, _: u64) {}
    fn on_job_resolved(&mut self, job: JobId) {
        self.core.jobs.remove(&job);
    }
    fn finish(&mut self, report: &mut ServiceReport) {
        self.core.merge_into(report);
    }
}

// ---- Threaded -----------------------------------------------------------

/// A chunk task addressed to one OS-thread worker: the shared encoding,
/// the chunk set, and the round's stacked inputs — one contiguous
/// multi-RHS buffer shared (not copied) across every worker's task.
struct WorkerTask {
    enc: Arc<CachedEncoding>,
    chunks: Vec<usize>,
    xs: Arc<MultiVector>,
}

/// Bookkeeping for one dispatched task.
struct TaskInfo {
    id: u64,
    worker: usize,
    redo: bool,
    /// Stacked blocks dispatched (one per chunk) — a credited task's
    /// reply must carry exactly this many (fewer means the worker
    /// aborted mid-task).
    expected: usize,
    cancelled: bool,
}

/// Per-round dispatch state, keyed by `(leader job id, generation)` —
/// pipelined serving keeps several generations of one residency in
/// flight at once, so the generation is part of the key, not a field to
/// check.
struct ThreadedJobTasks {
    tasks: Vec<TaskInfo>,
    /// The round's stacked inputs, kept for redo dispatches.
    xs: Arc<MultiVector>,
}

/// Real-threads backend: one OS thread per pool worker, crossbeam
/// channels, cooperative cancellation.
struct ThreadedBackend {
    core: NumericCore,
    cluster: Option<ThreadedCluster<WorkerTask, Vec<MultiChunkResult>>>,
    n: usize,
    inflight: BTreeMap<(JobId, u64), ThreadedJobTasks>,
    /// Replies received but not yet consumed, by task id.
    arrived: BTreeMap<u64, Vec<MultiChunkResult>>,
    /// Task ids whose replies should be dropped on arrival (abandoned
    /// generations).
    discard: BTreeSet<u64>,
}

impl ThreadedBackend {
    fn spawn(n: usize) -> Self {
        let cluster = ThreadedCluster::spawn_cancellable(n, |worker| {
            move |task: WorkerTask, token: &CancelToken| {
                let mut results = Vec::with_capacity(task.chunks.len());
                for &chunk in &task.chunks {
                    // The cooperative-cancel point sits between chunks:
                    // a cancelled worker abandons the rest and replies
                    // with its partial progress, mirroring the paper's
                    // "ignore the slow nodes" semantics with real work.
                    if token.is_cancelled() {
                        break;
                    }
                    // One cache-blocked stacked pass over the chunk's
                    // rows; the reply block ships chunk-row-major,
                    // member-minor — exactly what the decoder consumes.
                    results.push(
                        task.enc
                            .encoded
                            .worker_compute_chunk_multi(worker, chunk, &task.xs),
                    );
                }
                results
            }
        });
        ThreadedBackend {
            core: NumericCore::default(),
            cluster: Some(cluster),
            n,
            inflight: BTreeMap::new(),
            arrived: BTreeMap::new(),
            discard: BTreeSet::new(),
        }
    }

    fn cluster(&mut self) -> &mut ThreadedCluster<WorkerTask, Vec<MultiChunkResult>> {
        // s2c2-allow: no-panic-paths -- backend invariant: `finish` is the only taker and the engine never dispatches after it
        self.cluster.as_mut().expect("cluster alive until finish")
    }

    fn dispatch(
        &mut self,
        job: JobId,
        worker: usize,
        chunks: Vec<usize>,
        xs: Arc<MultiVector>,
    ) -> Result<u64, String> {
        let state = self
            .core
            .jobs
            .get(&job)
            .ok_or_else(|| format!("job {job} dispatched before admission"))?;
        let task = WorkerTask {
            enc: Arc::clone(&state.enc),
            chunks,
            xs,
        };
        Ok(self.cluster().submit(worker, task))
    }
}

impl ExecutionBackend for ThreadedBackend {
    fn on_admit(&mut self, spec: &JobSpec, k_eff: usize, c_eff: usize) -> Result<(), String> {
        self.core.admit(spec, self.n, k_eff, c_eff)
    }

    fn on_iteration_start(
        &mut self,
        specs: &[JobSpec],
        iter: &RunningIteration,
        iteration_index: usize,
    ) -> Result<(), String> {
        for spec in specs {
            self.core.begin_iteration(spec, iteration_index)?;
        }
        let (_, xs) = self.core.batch_inputs(specs, iteration_index)?;
        let leader = specs[0].id;
        let mut tasks = Vec::new();
        for (w, chunks) in iter.assignment.chunks.iter().enumerate() {
            if chunks.is_empty() {
                continue;
            }
            let id = self.dispatch(leader, w, chunks.clone(), Arc::clone(&xs))?;
            tasks.push(TaskInfo {
                id,
                worker: w,
                redo: false,
                expected: chunks.len(),
                cancelled: false,
            });
        }
        let prev = self
            .inflight
            .insert((leader, iter.generation), ThreadedJobTasks { tasks, xs });
        debug_assert!(
            prev.is_none(),
            "a generation is dispatched at most once per round"
        );
        Ok(())
    }

    fn on_redo(
        &mut self,
        job: JobId,
        generation: u64,
        worker: usize,
        chunks: &[usize],
    ) -> Result<(), String> {
        let Some(state) = self.inflight.get(&(job, generation)) else {
            return Err(format!(
                "job {job} redo against a generation that is not running"
            ));
        };
        let xs = Arc::clone(&state.xs);
        let id = self.dispatch(job, worker, chunks.to_vec(), xs)?;
        self.inflight
            .get_mut(&(job, generation))
            // s2c2-allow: no-panic-paths -- backend invariant: the let-else guard above returned on a missing entry
            .expect("checked above")
            .tasks
            .push(TaskInfo {
                id,
                worker,
                redo: true,
                expected: chunks.len(),
                cancelled: false,
            });
        Ok(())
    }

    fn on_cancel(&mut self, job: JobId, generation: u64, worker: usize, redo: bool) {
        let Some(state) = self.inflight.get_mut(&(job, generation)) else {
            return;
        };
        let mut to_cancel = Vec::new();
        for t in &mut state.tasks {
            if t.worker == worker && t.redo == redo && !t.cancelled {
                t.cancelled = true;
                to_cancel.push(t.id);
            }
        }
        for id in to_cancel {
            self.cluster().cancel(id);
        }
    }

    fn on_iteration_complete(
        &mut self,
        specs: &[JobSpec],
        iter: &RunningIteration,
        iteration_index: usize,
        is_final: bool,
    ) -> Result<(), String> {
        let leader = specs[0].id;
        let Some(state) = self.inflight.remove(&(leader, iter.generation)) else {
            return Err(format!("job {leader} completed without dispatched tasks"));
        };
        // Which physical tasks the timing model credits: originals of
        // done workers, every *live* redo task of workers whose merged
        // redo set is done. Cancelled tasks are never credited — the
        // engine clears their chunks from the redo bookkeeping when it
        // cancels (churned workers), so timing and execution agree.
        let needed: Vec<&TaskInfo> = state
            .tasks
            .iter()
            .filter(|t| {
                !t.cancelled
                    && if t.redo {
                        iter.redo_done[t.worker]
                    } else {
                        iter.done[t.worker]
                    }
            })
            .collect();
        // Everything else is work nobody waited for: cancel it now (the
        // engine already refunded its timing charge).
        for t in &state.tasks {
            let is_needed = needed.iter().any(|nt| nt.id == t.id);
            if !is_needed && !t.cancelled && !self.arrived.contains_key(&t.id) {
                self.cluster().cancel(t.id);
            }
        }
        // Collect every reply of this generation — needed ones to
        // decode from, the rest to keep the channel and maps tidy.
        // Cancelled tasks reply promptly with partial progress, so this
        // loop is bounded by real compute time, not virtual time.
        loop {
            let outstanding = state
                .tasks
                .iter()
                .any(|t| !self.arrived.contains_key(&t.id));
            if !outstanding {
                break;
            }
            let Some(reply) = self.cluster().recv_timeout(COLLECT_TIMEOUT) else {
                return Err(format!(
                    "job {leader}: threaded worker did not reply within {COLLECT_TIMEOUT:?}"
                ));
            };
            // Replies are absorbed raw, whichever job they belong to;
            // credit decisions happen against the owning job's task
            // bookkeeping, never against this one's.
            if self.discard.remove(&reply.task_id) {
                continue;
            }
            self.arrived.insert(reply.task_id, reply.result);
        }
        // Assemble the credited stacked blocks in deterministic
        // (submission) order and hand them to the stacked decoder as
        // they arrived — the blocks already carry every member, so
        // there is nothing to de-interleave. A credited task must have
        // run to completion: a short reply means the worker aborted
        // work the timing model counted on (timing/execution
        // divergence).
        let mut blocks: Vec<MultiChunkResult> = Vec::new();
        for t in &state.tasks {
            let output = self
                .arrived
                .remove(&t.id)
                // s2c2-allow: no-panic-paths -- backend invariant: the collect loop above blocks until every credited task has replied
                .expect("collected in the loop above");
            let is_needed = needed.iter().any(|nt| nt.id == t.id);
            if !is_needed {
                continue;
            }
            if output.len() != t.expected {
                return Err(format!(
                    "job {leader}: worker {} replied {} of {} credited chunk blocks \
                     (timing/execution divergence)",
                    t.worker,
                    output.len(),
                    t.expected
                ));
            }
            blocks.extend(output);
        }
        // Workers drop their task clones when they reply; with every
        // reply collected the buffer is usually uncontended and returns
        // to the pool.
        self.core.recycle(state.xs);
        self.core
            .verify_multi(specs, &blocks, iteration_index, is_final)
    }

    fn on_iteration_abandoned(&mut self, job: JobId, generation: u64) {
        let Some(state) = self.inflight.remove(&(job, generation)) else {
            return;
        };
        for t in state.tasks {
            if let Some(_stale) = self.arrived.remove(&t.id) {
                continue;
            }
            if !t.cancelled {
                self.cluster().cancel(t.id);
            }
            // The reply is still in flight; drop it on arrival.
            self.discard.insert(t.id);
        }
    }

    fn on_job_resolved(&mut self, job: JobId) {
        // Any leftover generation state (failed jobs) is abandoned —
        // a pipelined residency can leave several in-flight rounds.
        let leftover: Vec<(JobId, u64)> = self
            .inflight
            .range((job, 0)..=(job, u64::MAX))
            .map(|(&key, _)| key)
            .collect();
        for (j, generation) in leftover {
            self.on_iteration_abandoned(j, generation);
        }
        self.core.jobs.remove(&job);
    }

    fn finish(&mut self, report: &mut ServiceReport) {
        // Cancel whatever is still in flight (stalled/failed runs), then
        // join the worker threads.
        let keys: Vec<(JobId, u64)> = self.inflight.keys().copied().collect();
        for (job, generation) in keys {
            self.on_iteration_abandoned(job, generation);
        }
        if let Some(cluster) = self.cluster.take() {
            // The pool's compute phase is what the threads really spent
            // inside task closures, summed across workers — measured, not
            // modeled, and naturally larger than the elapsed wall span
            // when workers overlap.
            self.core.phase_wall.compute += cluster.busy_seconds().iter().sum::<f64>();
            cluster.shutdown();
        }
        self.core.merge_into(report);
    }
}
