//! Work-conserving share rebalancing and deadline-aware share boosting.
//!
//! Shares are a pure function of the live resident set's *effective*
//! weight mass (nominal weights times any deadline boosts). Whenever
//! that mass changes — admission, completion, failure, or a boost
//! firing — every running iteration's share is recomputed and its
//! in-flight tasks rescaled at the current instant, so capacity is
//! never left idle waiting for an iteration boundary and the pool is
//! never over-subscribed by stale snapshots. Under pipelined serving a
//! job's *whole in-flight window* rescales together: every window round
//! runs at the job's single share, so the job's capacity draw is
//! constant regardless of pipeline depth.

use super::core::{BatchMember, ResidentJob};
use super::{trace_into, ServiceEngine};
use crate::event::{EventKind, JobId};
use s2c2_telemetry::TraceEventKind;

impl ServiceEngine {
    /// One member's effective capacity weight: its nominal weight,
    /// multiplied by the deadline-boost factor once the member has been
    /// flagged at-risk.
    fn member_weight(&self, member: &BatchMember) -> f64 {
        match (&self.cfg.deadline_boost, member.boosted) {
            (Some(boost), true) => member.spec.weight * boost.factor,
            _ => member.spec.weight,
        }
    }

    /// A residency slot's effective capacity weight: the sum of its
    /// members' effective weights. Batching is capacity-neutral by
    /// construction — m coalesced weight-1 jobs hold exactly the
    /// capacity m resident weight-1 jobs would, and a boost firing for
    /// one member raises only that member's contribution.
    pub(crate) fn effective_weight(&self, job: &ResidentJob) -> f64 {
        job.members.iter().map(|m| self.member_weight(m)).sum()
    }

    /// Flags resident members whose remaining SLO slack has dropped
    /// below the configured threshold fraction. Returns whether any
    /// member's boost state changed (the caller then rescales shares).
    /// Boosts are sticky: un-boosting when the bump restores slack
    /// would oscillate at every evaluation point. Boost accounting is
    /// per *member*: a batch carrying one at-risk job boosts that job's
    /// weight contribution, not the whole batch.
    pub(crate) fn update_deadline_boosts(&mut self) -> bool {
        let Some(boost) = self.cfg.deadline_boost else {
            return false;
        };
        let now = self.now;
        let mut changed = false;
        for job in self.resident.values_mut() {
            for member in &mut job.members {
                if member.boosted {
                    continue;
                }
                let Some(deadline_abs) = member.deadline_abs else {
                    continue;
                };
                let total = deadline_abs - member.arrival;
                if total <= 0.0 {
                    continue;
                }
                let remaining = deadline_abs - now;
                if remaining / total < boost.slack_threshold {
                    member.boosted = true;
                    self.report.boost_activations += 1;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Work-conserving share rebalance: recomputes every running
    /// iteration's share from the live resident weight mass and rescales
    /// its in-flight tasks at the current instant. Called whenever the
    /// resident set changes (admission, completion, failure) and when a
    /// deadline boost fires, so shares always sum to 1 across residents
    /// — which is also what keeps per-worker busy accounting within the
    /// service horizon.
    ///
    /// Rescaling stretches a task's whole remaining span by
    /// `old_share / new_share` and reschedules its completion event; the
    /// superseded event is recognized (and dropped) by its stale finish
    /// time. Busy accounting needs no adjustment: a task's dedicated
    /// compute-seconds are share-invariant, and the refund rule
    /// `(finish − now) · share` is preserved exactly by the rescale.
    pub(crate) fn rebalance_shares(&mut self) {
        self.update_deadline_boosts();
        let total: f64 = self
            .resident
            .values()
            .map(|j| self.effective_weight(j))
            .sum();
        if total <= 0.0 {
            return;
        }
        let now = self.now;
        let margin = self.cfg.timeout_margin;
        let ids: Vec<JobId> = self.resident.keys().copied().collect();
        let resident_count = ids.len();
        for id in ids {
            let weight = self.effective_weight(&self.resident[&id]);
            let new_share = weight / total;
            let Some(job) = self.resident.get_mut(&id) else {
                continue;
            };
            let mut job_touched = false;
            // Deferred re-arms: (window position, latest stretched
            // finish). The Rebalance trace and any re-armed Timeout
            // events are emitted after the whole window rescaled, so the
            // per-job trace/event order matches the barrier engine
            // exactly at depth 1.
            let mut rearm: Vec<(usize, f64)> = Vec::new();
            for (pos, iter) in job.window.iter_mut().enumerate() {
                let old_share = iter.share;
                if (new_share - old_share).abs() <= 1e-12 * new_share.max(old_share) {
                    continue;
                }
                let stretch = old_share / new_share;
                let generation = iter.generation;
                let mut touched = false;
                let mut latest = now;
                for w in 0..iter.assignment.workers() {
                    if iter.valid[w]
                        && !iter.done[w]
                        && iter.finish[w].is_finite()
                        && iter.finish[w] > now
                    {
                        let nf = now + (iter.finish[w] - now) * stretch;
                        iter.finish[w] = nf;
                        latest = latest.max(nf);
                        touched = true;
                        self.queue.push(
                            nf,
                            EventKind::TaskComplete {
                                job: id,
                                worker: w,
                                generation,
                                redo: false,
                            },
                        );
                    }
                    if iter.redo_valid[w]
                        && !iter.redo_done[w]
                        && iter.redo_finish[w].is_finite()
                        && iter.redo_finish[w] > now
                    {
                        let nf = now + (iter.redo_finish[w] - now) * stretch;
                        iter.redo_finish[w] = nf;
                        latest = latest.max(nf);
                        touched = true;
                        self.queue.push(
                            nf,
                            EventKind::TaskComplete {
                                job: id,
                                worker: w,
                                generation,
                                redo: true,
                            },
                        );
                    }
                }
                // Close the old share segment so speed observations integrate
                // the true dedicated time across the change.
                iter.share_integral += (now - iter.share_anchor).max(0.0) * old_share;
                iter.share_anchor = iter.share_anchor.max(now);
                iter.share = new_share;
                if !touched {
                    continue;
                }
                job_touched = true;
                // Stretched spans can outrun the armed §4.3 deadline;
                // re-arm behind them so a squeezed (not straggling)
                // round is not spuriously cancelled.
                if latest >= iter.armed_deadline {
                    rearm.push((pos, latest));
                }
            }
            if !job_touched {
                continue;
            }
            self.report.rebalances += 1;
            trace_into(&mut self.telemetry, now, || TraceEventKind::Rebalance {
                resident: resident_count,
            });
            for (pos, latest) in rearm {
                let iter = &mut job.window[pos];
                let deadline = now + (1.0 + margin) * (latest - now).max(f64::MIN_POSITIVE);
                iter.armed_deadline = deadline;
                iter.armed_seq += 1;
                let (generation, arm) = (iter.generation, iter.armed_seq);
                self.queue.push(
                    deadline,
                    EventKind::Timeout {
                        job: id,
                        generation,
                        arm,
                    },
                );
            }
        }
    }
}
