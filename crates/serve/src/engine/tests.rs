//! Unit tests for the service engine: the timing/behavior suite from
//! the monolithic-engine era (kept verbatim to pin the refactor), plus
//! the backend, rate-limit, and deadline-boost suites.

use super::*;
use crate::workload::{generate_workload, ArrivalPattern, JobPreset};

fn pool(n: usize, stragglers: &[usize]) -> ClusterSpec {
    ClusterSpec::builder(n)
        .compute_bound()
        .seed(0xFEED)
        .straggler_slowdown(5.0)
        .stragglers(stragglers, 0.2)
        .build()
}

fn workload(jobs: usize, rate: f64, n: usize, seed: u64) -> Vec<(f64, JobSpec)> {
    generate_workload(
        &ArrivalPattern::Poisson { rate },
        &JobPreset::standard_mix(),
        jobs,
        3,
        n,
        seed,
    )
}

fn run_mode(mode: SchedulerMode, jobs: usize, rate: f64) -> ServiceReport {
    let n = 12;
    let engine = ServiceEngine::new(pool(n, &[2, 7]), ServeConfig::new(mode)).unwrap();
    engine.run(&workload(jobs, rate, n, 5)).unwrap()
}

#[test]
fn single_job_completes() {
    let n = 8;
    let spec = JobPreset::small().instantiate(0, 0, n);
    let engine = ServiceEngine::new(
        pool(n, &[]),
        ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        }),
    )
    .unwrap();
    let report = engine.run(&[(0.0, spec)]).unwrap();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.failed(), 0);
    assert!(report.jobs[0].latency() > 0.0);
    assert!(report.makespan > 0.0);
    assert!(report.utilization() > 0.0);
}

#[test]
fn deterministic_given_seeds() {
    let a = run_mode(
        SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        },
        20,
        1.5,
    );
    let b = run_mode(
        SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        },
        20,
        1.5,
    );
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn s2c2_beats_conventional_tail_under_stragglers() {
    let s2c2 = run_mode(
        SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        },
        30,
        1.2,
    );
    let mds = run_mode(SchedulerMode::ConventionalMds, 30, 1.2);
    assert_eq!(s2c2.completed(), 30);
    assert_eq!(mds.completed(), 30);
    assert!(
        s2c2.latency_percentile(99.0) < mds.latency_percentile(99.0),
        "s2c2 p99 {} should beat mds p99 {}",
        s2c2.latency_percentile(99.0),
        mds.latency_percentile(99.0)
    );
}

#[test]
fn uncoded_pays_the_straggler_tax() {
    let uncoded = run_mode(SchedulerMode::Uncoded, 15, 0.5);
    let s2c2 = run_mode(
        SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        },
        15,
        0.5,
    );
    assert_eq!(uncoded.completed(), 15);
    assert!(
        uncoded.mean_latency() > s2c2.mean_latency(),
        "uncoded {} should trail s2c2 {}",
        uncoded.mean_latency(),
        s2c2.mean_latency()
    );
}

#[test]
fn queue_builds_under_load_and_drains() {
    let report = run_mode(SchedulerMode::ConventionalMds, 40, 8.0);
    assert_eq!(report.completed(), 40);
    assert!(report.max_queue_depth() > 0, "overload must queue");
    assert_eq!(report.queue_depth.last().unwrap().1, 0, "queue drains");
}

#[test]
fn mispredictions_fire_timeouts() {
    // Uniform predictions on a straggler pool: the adaptive engine
    // must detect and recover via timeouts.
    let n = 12;
    let engine = ServiceEngine::new(
        pool(n, &[0, 5]),
        ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::Uniform,
        }),
    )
    .unwrap();
    let report = engine.run(&workload(10, 1.0, n, 9)).unwrap();
    assert_eq!(report.completed(), 10);
    assert!(report.timeouts > 0, "uniform predictions must mispredict");
}

#[test]
fn survives_churn() {
    let n = 12;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.churn = Some(ChurnConfig {
        p_fail: 0.05,
        p_recover: 0.4,
        min_up: 10,
    });
    cfg.max_retries = 10;
    let engine = ServiceEngine::new(pool(n, &[3]), cfg).unwrap();
    let report = engine.run(&workload(25, 1.0, n, 21)).unwrap();
    assert_eq!(
        report.completed() + report.failed(),
        25,
        "every job resolves"
    );
    assert!(
        report.completed() >= 23,
        "churn floor keeps most jobs alive"
    );
}

#[test]
fn malformed_job_fails_fast() {
    let n = 4;
    let mut spec = JobPreset::small().instantiate(0, 0, 8);
    spec.k = 8; // bigger than the 4-worker pool
    let engine = ServiceEngine::new(
        pool(n, &[]),
        ServeConfig::new(SchedulerMode::ConventionalMds),
    )
    .unwrap();
    let report = engine.run(&[(0.0, spec)]).unwrap();
    assert_eq!(report.failed(), 1);
    assert_eq!(report.completed(), 0);
}

#[test]
fn worker_threads_cut_latency() {
    let base = {
        let engine = ServiceEngine::new(
            pool(12, &[2]),
            ServeConfig::new(SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            }),
        )
        .unwrap();
        engine.run(&workload(12, 1.0, 12, 13)).unwrap()
    };
    let threaded = {
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.worker_threads = 4;
        let engine = ServiceEngine::new(pool(12, &[2]), cfg).unwrap();
        engine.run(&workload(12, 1.0, 12, 13)).unwrap()
    };
    assert!(
        threaded.mean_latency() < base.mean_latency(),
        "4-thread workers {} should beat 1-thread {}",
        threaded.mean_latency(),
        base.mean_latency()
    );
}

#[test]
fn invalid_config_rejected() {
    let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
    cfg.max_resident = 0;
    assert!(matches!(
        ServiceEngine::new(pool(4, &[]), cfg),
        Err(ServeError::InvalidConfig(_))
    ));
    let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
    cfg.epoch = 0.0;
    assert!(ServiceEngine::new(pool(4, &[]), cfg).is_err());
}

#[test]
fn fair_share_spreads_tenants() {
    // Two tenants, one flooding: fair-share must still admit the
    // other tenant's job ahead of the flood's backlog.
    let n = 8;
    let mut arrivals: Vec<(f64, JobSpec)> = (0..6)
        .map(|i| (0.001 * i as f64, JobPreset::medium().instantiate(i, 0, n)))
        .collect();
    arrivals.push((0.01, JobPreset::small().instantiate(6, 1, n)));
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.policy = QueuePolicy::FairShare;
    cfg.max_resident = 2;
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let report = engine.run(&arrivals).unwrap();
    assert_eq!(report.completed(), 7);
    let tenant1 = report.jobs.iter().find(|j| j.tenant == 1).unwrap();
    // The tenant-1 job must not be admitted last even though it
    // arrived last: fair share jumps it over the flood.
    let later_admitted = report
        .jobs
        .iter()
        .filter(|j| j.tenant == 0 && j.admitted > tenant1.admitted)
        .count();
    assert!(later_admitted >= 2, "fair share should leapfrog the flood");
}

#[test]
fn thread_speedup_model() {
    assert_eq!(thread_speedup(1), 1.0);
    assert!((thread_speedup(4) - 3.7).abs() < 1e-12);
}

#[test]
fn utilization_stays_within_bounds_with_abandoned_tasks() {
    // Regression for the stale-share oversubscription bug: one huge
    // single-iteration job snapshots the pool alone, then a stream
    // of small jobs arrives mid-iteration. MDS over-provisions, so
    // plenty of straggler tasks are abandoned (refunded) when the
    // fastest k finish. Utilization used to report 1.24.
    let n = 8;
    let mut big = JobPreset::large().instantiate(0, 0, n);
    big.rows = 200_000;
    big.iterations = 1;
    let mut arrivals: Vec<(f64, JobSpec)> = vec![(0.0, big)];
    for i in 1..40u64 {
        arrivals.push((0.02 * i as f64, JobPreset::small().instantiate(i, 0, n)));
    }
    for mode in [
        SchedulerMode::ConventionalMds,
        SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        },
    ] {
        let engine = ServiceEngine::new(pool(n, &[2]), ServeConfig::new(mode)).unwrap();
        let r = engine.run(&arrivals).unwrap();
        assert_eq!(r.completed(), 40);
        assert!(
            (0.0..=1.0).contains(&r.utilization()),
            "utilization {} out of [0, 1]",
            r.utilization()
        );
        // The invariant behind it: no worker is busier than the
        // service horizon, even before the metric-level truncation.
        let max_busy = r.busy_time.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_busy <= r.makespan + 1e-6,
            "worker busy {max_busy} exceeds makespan {}",
            r.makespan
        );
        assert!(r.rebalances > 0, "membership churn must rebalance");
    }
}

#[test]
fn weighted_tenant_gets_proportional_throughput() {
    // Two tenants with identical job streams; tenant 1 weighs 2.
    // Under saturation its censored work share must approach 2x.
    let n = 12;
    let mut arrivals = Vec::new();
    for i in 0..24u64 {
        let tenant = (i % 2) as u32;
        let w = if tenant == 1 { 2.0 } else { 1.0 };
        arrivals.push((
            0.01 * i as f64,
            JobPreset::medium().with_weight(w).instantiate(i, tenant, n),
        ));
    }
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.policy = QueuePolicy::WeightedFairShare;
    cfg.max_resident = 2;
    let engine = ServiceEngine::new(pool(n, &[3]), cfg).unwrap();
    let r = engine.run(&arrivals).unwrap();
    assert_eq!(r.completed(), 24);
    let tenants = r.tenant_summaries();
    assert!((tenants[0].entitled_share - 1.0 / 3.0).abs() < 1e-12);
    assert!((tenants[1].entitled_share - 2.0 / 3.0).abs() < 1e-12);
    let ratio = tenants[1].achieved_share / tenants[0].achieved_share;
    assert!(
        ratio >= 1.8,
        "weight-2 tenant achieved only {ratio:.2}x the weight-1 share"
    );
}

#[test]
fn work_conserving_rebalance_frees_capacity_early() {
    // Job A runs one long iteration; job B shares the pool briefly
    // and departs. With work conservation A reclaims the freed half
    // immediately, so its latency stays close to the solo run —
    // without it, A would crawl at share 1/2 for the whole span.
    let n = 8;
    let mut long_job = JobPreset::large().instantiate(0, 0, n);
    long_job.rows = 100_000;
    long_job.iterations = 1;
    let solo = {
        let engine = ServiceEngine::new(
            pool(n, &[]),
            ServeConfig::new(SchedulerMode::ConventionalMds),
        )
        .unwrap();
        engine.run(&[(0.0, long_job.clone())]).unwrap()
    };
    let shared = {
        let engine = ServiceEngine::new(
            pool(n, &[]),
            ServeConfig::new(SchedulerMode::ConventionalMds),
        )
        .unwrap();
        let mut small = JobPreset::small().instantiate(1, 1, n);
        small.iterations = 1;
        engine
            .run(&[(0.0, long_job.clone()), (0.0, small)])
            .unwrap()
    };
    let solo_latency = solo.jobs[0].latency();
    let shared_latency = shared
        .jobs
        .iter()
        .find(|j| j.id == 0)
        .expect("long job resolves")
        .latency();
    assert!(
        shared_latency < 1.3 * solo_latency,
        "work conservation should keep the long job near its solo \
         latency: solo {solo_latency:.3}, shared {shared_latency:.3}"
    );
    assert!(shared.rebalances > 0);
}

#[test]
fn infeasible_deadlines_rejected_at_admission() {
    let n = 8;
    // A deadline no pool could meet, next to a comfortably feasible
    // neighbour.
    let hopeless = JobPreset::large().with_deadline(1e-6).instantiate(0, 0, n);
    let fine = JobPreset::small().with_deadline(60.0).instantiate(1, 0, n);
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.reject_infeasible_deadlines = true;
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let r = engine.run(&[(0.0, hopeless), (0.0, fine)]).unwrap();
    assert_eq!(r.rejected(), 1);
    assert_eq!(r.completed(), 1);
    let rejected = r.jobs.iter().find(|j| j.rejected).unwrap();
    assert_eq!(rejected.id, 0);
    assert!(rejected.failed);
    assert!(!rejected.on_time());
    let served = r.jobs.iter().find(|j| !j.failed).unwrap();
    assert!(served.on_time());
    // Without the knob the hopeless job is served (late) instead.
    let cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let hopeless = JobPreset::large().with_deadline(1e-6).instantiate(0, 0, n);
    let fine = JobPreset::small().with_deadline(60.0).instantiate(1, 0, n);
    let r = engine.run(&[(0.0, hopeless), (0.0, fine)]).unwrap();
    assert_eq!(r.rejected(), 0);
    assert_eq!(r.completed(), 2);
    assert!(r.on_time_ratio() < 1.0);
}

#[test]
fn earliest_deadline_admission_beats_fifo_on_time() {
    // A burst of loose-deadline work arrives just before one
    // tight-deadline job: FIFO makes it wait out the burst, EDF
    // jumps it forward.
    let n = 8;
    let build = |policy: QueuePolicy| {
        let mut arrivals: Vec<(f64, JobSpec)> = (0..6)
            .map(|i| {
                (
                    0.001 * i as f64,
                    JobPreset::medium()
                        .with_deadline(120.0)
                        .instantiate(i, 0, n),
                )
            })
            .collect();
        arrivals.push((
            0.01,
            JobPreset::small().with_deadline(3.0).instantiate(6, 1, n),
        ));
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.policy = policy;
        cfg.max_resident = 1;
        let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
        engine.run(&arrivals).unwrap()
    };
    let fifo = build(QueuePolicy::Fifo);
    let edf = build(QueuePolicy::EarliestDeadline);
    assert_eq!(fifo.completed(), 7);
    assert_eq!(edf.completed(), 7);
    assert!(
        edf.on_time_ratio() > fifo.on_time_ratio(),
        "EDF on-time {} must beat FIFO {}",
        edf.on_time_ratio(),
        fifo.on_time_ratio()
    );
}

#[test]
fn malformed_qos_fields_return_typed_invalid_job() {
    // A NaN/zero/negative weight or a non-positive deadline must be
    // refused with `ServeError::InvalidJob` — not silently recorded,
    // and certainly not allowed to reach the share normalization or a
    // sorting comparator where it used to be able to panic mid-run.
    let n = 4;
    for (bad, needle) in [
        (
            JobPreset::small().with_weight(0.0).instantiate(0, 0, n),
            "weight",
        ),
        (
            JobPreset::small().with_weight(-2.0).instantiate(1, 0, n),
            "weight",
        ),
        (
            JobPreset::small()
                .with_weight(f64::NAN)
                .instantiate(2, 0, n),
            "weight",
        ),
        (
            JobPreset::small()
                .with_weight(f64::INFINITY)
                .instantiate(3, 0, n),
            "weight",
        ),
        (
            JobPreset::small().with_deadline(-1.0).instantiate(4, 0, n),
            "deadline",
        ),
        (
            JobPreset::small().with_deadline(0.0).instantiate(5, 0, n),
            "deadline",
        ),
        (
            JobPreset::small()
                .with_deadline(f64::NAN)
                .instantiate(6, 0, n),
            "deadline",
        ),
    ] {
        let id = bad.id;
        let engine = ServiceEngine::new(
            pool(n, &[]),
            ServeConfig::new(SchedulerMode::ConventionalMds),
        )
        .unwrap();
        let err = engine
            .run(&[(0.0, bad)])
            .expect_err("invalid QoS fields must be refused");
        match err {
            ServeError::InvalidJob { job, reason } => {
                assert_eq!(job, id);
                assert!(reason.contains(needle), "{reason} should name {needle}");
            }
            other => panic!("expected InvalidJob, got {other}"),
        }
    }
}

// ---- execution backends -------------------------------------------------

/// A small preset so numeric-backend tests stay fast.
fn tiny() -> JobPreset {
    JobPreset {
        name: "tiny",
        rows: 120,
        cols: 8,
        k_frac: 0.75,
        chunks_per_partition: 4,
        iterations: 2,
        weight: 1.0,
        deadline: None,
        matrix_id: None,
    }
}

fn tiny_workload(jobs: usize, n: usize) -> Vec<(f64, JobSpec)> {
    (0..jobs as u64)
        .map(|i| (0.05 * i as f64, tiny().instantiate(i, (i % 2) as u32, n)))
        .collect()
}

#[test]
fn threaded_backend_serves_and_verifies_end_to_end() {
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.backend = BackendKind::Threaded;
    let engine = ServiceEngine::new(pool(n, &[2]), cfg).unwrap();
    let report = engine.run(&tiny_workload(6, n)).unwrap();
    assert_eq!(report.completed(), 6);
    // Every completed iteration was decoded from real worker output and
    // checked against the sequential reference inside the engine.
    assert_eq!(report.verified_iterations, 6 * 2);
    assert!(report.max_decode_error < 1e-6);
    assert_eq!(report.job_outputs.len(), 6, "one final output per job");
    for (id, y) in &report.job_outputs {
        assert_eq!(y.len(), 120, "job {id} output has the original rows");
    }
    // All six jobs share the tiny preset's matrix: one encode, five hits.
    assert_eq!(report.encode_cache_misses, 1);
    assert_eq!(report.encode_cache_hits, 5);
}

#[test]
fn threaded_backend_survives_mispredictions_and_cancels() {
    // Uniform predictions on a straggler pool force the §4.3 cancel +
    // redo path; the threaded backend must keep numerics correct
    // through cancellations and redo dispatches.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::Uniform,
    });
    cfg.backend = BackendKind::Threaded;
    let engine = ServiceEngine::new(pool(n, &[0, 4]), cfg).unwrap();
    let report = engine.run(&tiny_workload(5, n)).unwrap();
    assert_eq!(report.completed(), 5);
    assert!(report.timeouts > 0, "uniform predictions must mispredict");
    assert_eq!(report.verified_iterations, 5 * 2);
    assert!(report.max_decode_error < 1e-6);
}

#[test]
fn sim_verified_and_threaded_outputs_match() {
    let n = 8;
    let run_with = |backend: BackendKind| {
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.backend = backend;
        let engine = ServiceEngine::new(pool(n, &[1]), cfg).unwrap();
        engine.run(&tiny_workload(4, n)).unwrap()
    };
    let sim = run_with(BackendKind::SimVerified);
    let threaded = run_with(BackendKind::Threaded);
    // Timing is backend-independent...
    assert_eq!(sim.jobs, threaded.jobs);
    assert_eq!(sim.events_processed, threaded.events_processed);
    // ...and so are the decoded numerics: same coverage, same chunk
    // arithmetic, same decode order.
    assert_eq!(sim.job_outputs.len(), threaded.job_outputs.len());
    for ((id_a, a), (id_b, b)) in sim.job_outputs.iter().zip(threaded.job_outputs.iter()) {
        assert_eq!(id_a, id_b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12, "job {id_a}: {x} vs {y}");
        }
    }
}

#[test]
fn sim_backend_reports_no_numerics() {
    let n = 8;
    let engine = ServiceEngine::new(
        pool(n, &[]),
        ServeConfig::new(SchedulerMode::ConventionalMds),
    )
    .unwrap();
    let report = engine.run(&tiny_workload(3, n)).unwrap();
    assert_eq!(report.verified_iterations, 0);
    assert_eq!(report.encode_cache_hits + report.encode_cache_misses, 0);
    assert!(report.job_outputs.is_empty());
}

#[test]
fn distinct_matrix_ids_do_not_share_encodings() {
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.backend = BackendKind::SimVerified;
    let arrivals: Vec<(f64, JobSpec)> = (0..4u64)
        .map(|i| {
            (
                0.05 * i as f64,
                tiny().with_matrix_id(i).instantiate(i, 0, n),
            )
        })
        .collect();
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let report = engine.run(&arrivals).unwrap();
    assert_eq!(report.completed(), 4);
    assert_eq!(report.encode_cache_misses, 4, "four distinct models");
    assert_eq!(report.encode_cache_hits, 0);
    assert_eq!(report.encode_cache_hit_rate(), 0.0);
}

#[test]
fn threaded_backend_handles_uncoded_and_mds_modes() {
    let n = 6;
    for mode in [SchedulerMode::Uncoded, SchedulerMode::ConventionalMds] {
        let mut cfg = ServeConfig::new(mode);
        cfg.backend = BackendKind::Threaded;
        let engine = ServiceEngine::new(pool(n, &[3]), cfg).unwrap();
        let report = engine.run(&tiny_workload(3, n)).unwrap();
        assert_eq!(report.completed(), 3);
        assert_eq!(report.verified_iterations, 3 * 2);
        assert!(report.max_decode_error < 1e-6);
    }
}

#[test]
fn threaded_backend_survives_churn_with_verified_numerics() {
    // Churn + mispredictions drive the full recovery ladder — cancels,
    // redo reassignment, redo invalidation when the redo host itself
    // churns, rung-5 restarts — while the threaded backend executes
    // every credited chunk for real. Crediting work nobody computed
    // (e.g. churn-invalidated redo chunks) fails the run loudly.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::Uniform,
    });
    cfg.backend = BackendKind::Threaded;
    cfg.churn = Some(ChurnConfig {
        p_fail: 0.08,
        p_recover: 0.5,
        min_up: 6,
    });
    cfg.max_retries = 10;
    let engine = ServiceEngine::new(pool(n, &[1, 5]), cfg).unwrap();
    let report = engine.run(&tiny_workload(8, n)).unwrap();
    assert_eq!(report.completed() + report.failed(), 8);
    assert!(report.completed() >= 6, "churn floor keeps most jobs alive");
    assert!(report.verified_iterations >= report.completed() * 2);
    assert!(report.max_decode_error < 1e-6);
}

// ---- per-tenant rate limiting -------------------------------------------

#[test]
fn tenant_rate_limit_rejects_bursts_separately_from_deadlines() {
    let n = 8;
    // Tenant 0 floods 10 jobs at t=0 under a burst-2 bucket; tenant 1 is
    // unlimited. One tenant-0 job also carries a hopeless deadline so
    // both rejection kinds appear in one run, counted apart.
    let mut arrivals: Vec<(f64, JobSpec)> = (0..10u64)
        .map(|i| (0.0, JobPreset::small().instantiate(i, 0, n)))
        .collect();
    arrivals.push((0.0, JobPreset::small().instantiate(10, 1, n)));
    arrivals.push((
        0.001,
        JobPreset::large().with_deadline(1e-6).instantiate(11, 1, n),
    ));
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.reject_infeasible_deadlines = true;
    cfg.tenant_rate_limits.insert(
        0,
        RateLimit {
            rate: 0.1,
            burst: 2.0,
        },
    );
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let report = engine.run(&arrivals).unwrap();
    assert_eq!(report.rate_limited(), 8, "burst 2 of 10 admitted");
    assert_eq!(report.rejected(), 1, "the hopeless SLO");
    assert_eq!(report.completed(), 3);
    let tenants = report.tenant_summaries();
    assert_eq!(tenants[0].rate_limited, 8);
    assert_eq!(tenants[0].rejected, 0);
    assert_eq!(tenants[1].rate_limited, 0);
    assert_eq!(tenants[1].rejected, 1);
    // Rate-limited records never held a slot and are never on time.
    for j in report.jobs.iter().filter(|j| j.rate_limited) {
        assert!(j.failed && !j.rejected);
        assert_eq!(j.iterations, 0);
    }
}

#[test]
fn tenant_rate_limit_refills_over_time() {
    let n = 8;
    // 1 job/s refill, burst 1: a 0.5s-spaced stream admits every other.
    let arrivals: Vec<(f64, JobSpec)> = (0..6u64)
        .map(|i| (0.5 * i as f64, JobPreset::small().instantiate(i, 0, n)))
        .collect();
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.tenant_rate_limits.insert(
        0,
        RateLimit {
            rate: 1.0,
            burst: 1.0,
        },
    );
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let report = engine.run(&arrivals).unwrap();
    assert_eq!(report.rate_limited(), 3, "every other arrival refused");
    assert_eq!(report.completed(), 3);
}

#[test]
fn invalid_rate_limit_rejected_at_config() {
    let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
    cfg.tenant_rate_limits.insert(
        0,
        RateLimit {
            rate: 0.0,
            burst: 2.0,
        },
    );
    assert!(matches!(
        ServiceEngine::new(pool(4, &[]), cfg),
        Err(ServeError::InvalidConfig(_))
    ));
    let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
    cfg.tenant_rate_limits.insert(
        0,
        RateLimit {
            rate: 1.0,
            burst: 0.5,
        },
    );
    assert!(ServiceEngine::new(pool(4, &[]), cfg).is_err());
}

// ---- deadline-aware share boosting --------------------------------------

#[test]
fn deadline_boost_activates_and_speeds_at_risk_job() {
    let n = 8;
    // A deadline-carrying job shares the pool with a heavy SLO-less
    // neighbour; unboosted it finishes around 1.84s, so a 2.0s SLO
    // burns through half its slack mid-run. The boost (8x past
    // half-slack) then reclaims most of the pool.
    let build = |boost: Option<DeadlineBoost>| {
        let slo = JobPreset::medium().with_deadline(2.0).instantiate(0, 0, n);
        let heavy = JobPreset::large().with_weight(2.0).instantiate(1, 1, n);
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.deadline_boost = boost;
        let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
        engine.run(&[(0.0, slo), (0.0, heavy)]).unwrap()
    };
    let plain = build(None);
    let boosted = build(Some(DeadlineBoost {
        slack_threshold: 0.5,
        factor: 8.0,
    }));
    assert_eq!(plain.boost_activations, 0);
    assert!(boosted.boost_activations > 0, "the at-risk job must boost");
    let latency = |r: &ServiceReport| r.jobs.iter().find(|j| j.id == 0).unwrap().latency();
    assert!(
        latency(&boosted) < latency(&plain),
        "boost must cut the SLO job's latency: {} vs {}",
        latency(&boosted),
        latency(&plain)
    );
    // A boost firing at an iteration boundary must rescale the
    // neighbour's in-flight tasks too: shares keep summing to 1, so no
    // worker can accrue more dedicated busy time than the horizon (the
    // oversubscription invariant PR 3 established).
    assert!((0.0..=1.0).contains(&boosted.utilization()));
    let max_busy = boosted.busy_time.iter().copied().fold(0.0, f64::max);
    assert!(
        max_busy <= boosted.makespan + 1e-6,
        "worker busy {max_busy} exceeds makespan {}",
        boosted.makespan
    );
}

#[test]
fn boost_firing_mid_stream_keeps_shares_consistent() {
    // Many SLO-carrying jobs across staggered arrivals: boosts fire at
    // iteration starts while neighbours are mid-iteration, repeatedly.
    // Every firing must rescale the whole resident set.
    let n = 8;
    let mut arrivals: Vec<(f64, JobSpec)> = Vec::new();
    for i in 0..10u64 {
        arrivals.push((
            0.3 * i as f64,
            JobPreset::medium()
                .with_deadline(2.5)
                .instantiate(i, (i % 2) as u32, n),
        ));
    }
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.deadline_boost = Some(DeadlineBoost {
        slack_threshold: 0.6,
        factor: 4.0,
    });
    let engine = ServiceEngine::new(pool(n, &[2]), cfg).unwrap();
    let r = engine.run(&arrivals).unwrap();
    assert_eq!(r.completed(), 10);
    assert!(r.boost_activations > 0, "tight SLOs must trigger boosts");
    assert!((0.0..=1.0).contains(&r.utilization()));
    let max_busy = r.busy_time.iter().copied().fold(0.0, f64::max);
    assert!(
        max_busy <= r.makespan + 1e-6,
        "worker busy {max_busy} exceeds makespan {}",
        r.makespan
    );
}

#[test]
fn all_rejected_workload_reports_finite_metrics() {
    // Degenerate but legal: every job arrives at t = 0 with a provably
    // hopeless SLO and is rejected at admission, so the last resolution
    // is at t = 0 and makespan is exactly zero. The engine must drain
    // cleanly and every report metric must come back finite.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.reject_infeasible_deadlines = true;
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let w: Vec<(f64, JobSpec)> = (0..5u64)
        .map(|i| {
            (
                0.0,
                JobPreset::large().with_deadline(1e-9).instantiate(i, 0, n),
            )
        })
        .collect();
    let r = engine.run(&w).unwrap();
    assert_eq!(r.rejected(), 5);
    assert_eq!(r.completed(), 0);
    assert_eq!(r.makespan, 0.0);
    for v in [
        r.throughput(),
        r.utilization(),
        r.mean_queue_depth(),
        r.mean_latency(),
        r.latency_percentile(99.0),
        r.on_time_ratio(),
        r.mean_batch_size(),
    ] {
        assert!(v.is_finite(), "all-rejected metric must be finite: {v}");
    }
    for t in r.tenant_summaries() {
        assert!(t.p99_latency.is_finite());
        assert!(t.achieved_share.is_finite());
    }
    // The same holds when every arrival is rate-limited away.
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.tenant_rate_limits.insert(
        0,
        RateLimit {
            rate: 1e-6,
            burst: 1.0,
        },
    );
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    // First arrival eats the single token and completes; use a burst of
    // pure refusals instead: pre-drain with an id-0 arrival, then the
    // rest are refused at the same instant.
    let w: Vec<(f64, JobSpec)> = (0..4u64)
        .map(|i| (0.0, JobPreset::small().instantiate(i, 0, n)))
        .collect();
    let r = engine.run(&w).unwrap();
    assert_eq!(r.rate_limited(), 3, "burst 1 admits exactly one");
    assert!(r.utilization().is_finite());
    assert!(r.mean_queue_depth().is_finite());
}

// ---- batching / coalescing ----------------------------------------------

/// A saturating burst of small jobs (one shared preset ⇒ one batch key).
fn small_burst(jobs: usize, n: usize) -> Vec<(f64, JobSpec)> {
    (0..jobs as u64)
        .map(|i| {
            (
                0.01 * i as f64,
                JobPreset::small().instantiate(i, (i % 2) as u32, n),
            )
        })
        .collect()
}

/// A simultaneous burst of tiny numeric jobs, so the queue is deep when
/// the first slot frees and batches actually form (tiny jobs outrun any
/// spaced arrival pattern).
fn tiny_burst(jobs: usize, n: usize) -> Vec<(f64, JobSpec)> {
    (0..jobs as u64)
        .map(|i| (0.0, tiny().instantiate(i, (i % 2) as u32, n)))
        .collect()
}

#[test]
fn size_threshold_coalesces_queued_jobs() {
    let n = 8;
    let run_with = |batch: BatchPolicy| {
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.max_resident = 2;
        cfg.batch = batch;
        let engine = ServiceEngine::new(pool(n, &[2]), cfg).unwrap();
        engine.run(&small_burst(12, n)).unwrap()
    };
    let off = run_with(BatchPolicy::Off);
    let batched = run_with(BatchPolicy::SizeThreshold { max_batch: 4 });
    // Both serve the identical job set...
    assert_eq!(off.completed(), 12);
    assert_eq!(batched.completed(), 12);
    let ids = |r: &ServiceReport| {
        let mut v: Vec<JobId> = r.jobs.iter().map(|j| j.id).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&off), ids(&batched));
    // ...but the batched engine coalesced queued mates onto shared
    // rounds, within the configured cap.
    assert!(batched.batches_admitted > 0, "burst must form batches");
    assert!(batched.batch_rounds > 0);
    assert!(batched.mean_batch_size() > 1.0);
    assert!(batched.mean_batch_size() <= 4.0 + 1e-12);
    assert_eq!(off.batches_admitted, 0);
    assert_eq!(off.batch_rounds, 0);
    // Per-member records survive batching: distinct arrivals, tenants,
    // and per-job latencies (members share a finish, not an arrival).
    for j in &batched.jobs {
        assert!(!j.failed);
        assert!(j.finished >= j.arrival);
    }
    // Capacity accounting stays sound under batch shares.
    assert!((0.0..=1.0).contains(&batched.utilization()));
}

#[test]
fn batched_members_decode_their_own_outputs() {
    // SimVerified: every member of a batch round is decoded from the
    // shared coverage and verified against its own A·x reference — the
    // de-interleave cannot mix members up without failing the run.
    let n = 8;
    let run_with = |batch: BatchPolicy| {
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.backend = BackendKind::SimVerified;
        cfg.max_resident = 1;
        cfg.batch = batch;
        let engine = ServiceEngine::new(pool(n, &[2]), cfg).unwrap();
        engine.run(&tiny_burst(6, n)).unwrap()
    };
    let off = run_with(BatchPolicy::Off);
    let batched = run_with(BatchPolicy::SizeThreshold { max_batch: 3 });
    assert_eq!(off.completed(), 6);
    assert_eq!(batched.completed(), 6);
    assert!(batched.batches_admitted > 0);
    assert!(batched.max_decode_error < 1e-6);
    // Decoded final outputs are job-identical whether or not the job
    // rode a batch: the inputs are a function of (job id, iteration),
    // never of the batch.
    let sorted = |r: &ServiceReport| {
        let mut v = r.job_outputs.clone();
        v.sort_by_key(|(id, _)| *id);
        v
    };
    let a = sorted(&off);
    let b = sorted(&batched);
    assert_eq!(a.len(), b.len());
    for ((ia, ya), (ib, yb)) in a.iter().zip(b.iter()) {
        assert_eq!(ia, ib);
        for (x, y) in ya.iter().zip(yb.iter()) {
            assert!((x - y).abs() <= 1e-12, "job {ia}: {x} vs {y}");
        }
    }
    // One shared encode serves every batch member (all six jobs share
    // the tiny preset's matrix): 1 miss, 5 hits, batched or not.
    assert_eq!(batched.encode_cache_misses, 1);
    assert_eq!(batched.encode_cache_hits, 5);
}

#[test]
fn time_window_holds_then_flushes_one_batch() {
    // Two compatible jobs arrive 0.2s apart with free slots; the window
    // holds the first until mates accumulate, then flushes both as one
    // batch at (earliest arrival + window).
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.batch = BatchPolicy::TimeWindow {
        window: 0.5,
        max_batch: 4,
    };
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let w: Vec<(f64, JobSpec)> = vec![
        (0.0, JobPreset::small().instantiate(0, 0, n)),
        (0.2, JobPreset::small().instantiate(1, 0, n)),
    ];
    let r = engine.run(&w).unwrap();
    assert_eq!(r.completed(), 2);
    assert_eq!(r.batches_admitted, 1, "both jobs ride one batch");
    assert_eq!(r.batched_jobs, 2);
    for j in &r.jobs {
        assert!(
            (j.admitted - 0.5).abs() < 1e-9,
            "job {} admitted at {}, expected the window flush at 0.5",
            j.id,
            j.admitted
        );
    }
}

#[test]
fn time_window_size_cap_flushes_early() {
    // Reaching the size threshold flushes before the window expires.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.batch = BatchPolicy::TimeWindow {
        window: 30.0,
        max_batch: 2,
    };
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let w: Vec<(f64, JobSpec)> = vec![
        (0.0, JobPreset::small().instantiate(0, 0, n)),
        (0.1, JobPreset::small().instantiate(1, 0, n)),
    ];
    let r = engine.run(&w).unwrap();
    assert_eq!(r.completed(), 2);
    assert_eq!(r.batches_admitted, 1);
    for j in &r.jobs {
        assert!(
            (j.admitted - 0.1).abs() < 1e-9,
            "cap reached at t = 0.1 must flush immediately, admitted {}",
            j.admitted
        );
    }
}

#[test]
fn batch_window_flush_respects_edf_ordering() {
    // EDF + time-window batching: a tight-deadline job with its own
    // batch key is admitted at its own window expiry, never blocked
    // behind a held small-job group whose window is still open — and
    // the flushed group itself lists members in EDF order.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.policy = QueuePolicy::EarliestDeadline;
    cfg.max_resident = 1;
    cfg.batch = BatchPolicy::TimeWindow {
        window: 0.2,
        max_batch: 8,
    };
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let w: Vec<(f64, JobSpec)> = vec![
        (
            0.0,
            JobPreset::small().with_deadline(60.0).instantiate(0, 0, n),
        ),
        (
            0.0,
            JobPreset::medium().with_deadline(3.0).instantiate(1, 1, n),
        ),
        (
            0.05,
            JobPreset::small().with_deadline(50.0).instantiate(2, 0, n),
        ),
    ];
    let r = engine.run(&w).unwrap();
    assert_eq!(r.completed(), 3);
    let by_id = |id: JobId| r.jobs.iter().find(|j| j.id == id).unwrap();
    // The tight-deadline medium job flushes at its own window (t = 0.2)
    // and takes the single slot first — the held small batch does not
    // starve it.
    assert!(
        (by_id(1).admitted - 0.2).abs() < 1e-9,
        "EDF head admitted at {}, expected its window flush at 0.2",
        by_id(1).admitted
    );
    // The smalls flush later, as one batch, behind the EDF head.
    assert_eq!(r.batches_admitted, 1);
    assert_eq!(by_id(0).admitted, by_id(2).admitted);
    assert!(by_id(0).admitted > by_id(1).admitted);
}

#[test]
fn batch_members_keep_per_member_deadline_boosts() {
    // A batch carrying one SLO member next to a heavy neighbour: the
    // boost fires for the member (not the batch), raising only its
    // weight contribution — and the run stays within capacity bounds.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.batch = BatchPolicy::SizeThreshold { max_batch: 2 };
    cfg.max_resident = 2;
    cfg.deadline_boost = Some(DeadlineBoost {
        slack_threshold: 0.6,
        factor: 6.0,
    });
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    // Burst: two batchable smalls (one with an SLO) behind a heavy
    // large job, single shared arrival instant so they coalesce.
    let w: Vec<(f64, JobSpec)> = vec![
        (
            0.0,
            JobPreset::large().with_weight(3.0).instantiate(0, 0, n),
        ),
        (
            0.0,
            JobPreset::large().with_weight(3.0).instantiate(1, 0, n),
        ),
        (
            0.0,
            JobPreset::small().with_deadline(2.0).instantiate(2, 1, n),
        ),
        (0.0, JobPreset::small().instantiate(3, 1, n)),
    ];
    let r = engine.run(&w).unwrap();
    assert_eq!(r.completed(), 4);
    assert_eq!(r.batches_admitted, 1, "the two smalls coalesce");
    assert!(
        r.boost_activations > 0,
        "the SLO member must boost inside its batch"
    );
    assert!((0.0..=1.0).contains(&r.utilization()));
    let max_busy = r.busy_time.iter().copied().fold(0.0, f64::max);
    assert!(max_busy <= r.makespan + 1e-6);
}

#[test]
fn infeasible_member_rejected_without_dragging_batch_down() {
    // Deadline admission control applies per member: one hopeless SLO
    // inside a gathered group is turned away, the rest ride on.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.batch = BatchPolicy::SizeThreshold { max_batch: 4 };
    cfg.max_resident = 1;
    cfg.reject_infeasible_deadlines = true;
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let w: Vec<(f64, JobSpec)> = vec![
        // A blocker so the next three queue and gather as one group.
        (0.0, JobPreset::medium().instantiate(0, 0, n)),
        (0.0, JobPreset::small().instantiate(1, 0, n)),
        (
            0.0,
            JobPreset::small().with_deadline(1e-7).instantiate(2, 0, n),
        ),
        (0.0, JobPreset::small().instantiate(3, 0, n)),
    ];
    let r = engine.run(&w).unwrap();
    assert_eq!(r.rejected(), 1, "the hopeless member is rejected");
    assert_eq!(r.completed(), 3);
    let rejected = r.jobs.iter().find(|j| j.rejected).unwrap();
    assert_eq!(rejected.id, 2);
    assert_eq!(r.batches_admitted, 1, "survivors still batch");
    assert_eq!(r.batched_jobs, 2);
}

#[test]
fn batching_survives_mid_batch_straggler_recovery() {
    // Uniform predictions on a straggler pool force the §4.3 cancel +
    // redo ladder on batch rounds; the whole batch recovers together
    // and every member still decodes and verifies.
    let n = 8;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::Uniform,
    });
    cfg.backend = BackendKind::Threaded;
    cfg.batch = BatchPolicy::SizeThreshold { max_batch: 3 };
    cfg.max_resident = 1;
    let engine = ServiceEngine::new(pool(n, &[0, 4]), cfg).unwrap();
    let report = engine.run(&tiny_burst(6, n)).unwrap();
    assert_eq!(report.completed(), 6);
    assert!(report.timeouts > 0, "uniform predictions must mispredict");
    assert!(report.batches_admitted > 0, "queued jobs must coalesce");
    assert_eq!(report.verified_iterations, 6 * 2);
    assert!(report.max_decode_error < 1e-6);
}

#[test]
fn invalid_batch_policy_rejected_at_config() {
    for batch in [
        BatchPolicy::SizeThreshold { max_batch: 0 },
        BatchPolicy::SizeThreshold { max_batch: 1 },
        BatchPolicy::TimeWindow {
            window: 0.0,
            max_batch: 4,
        },
        BatchPolicy::TimeWindow {
            window: f64::NAN,
            max_batch: 4,
        },
        BatchPolicy::TimeWindow {
            window: 1.0,
            max_batch: 1,
        },
    ] {
        let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
        cfg.batch = batch;
        assert!(
            matches!(
                ServiceEngine::new(pool(4, &[]), cfg),
                Err(ServeError::InvalidConfig(_))
            ),
            "{batch} must be rejected"
        );
    }
}

#[test]
fn invalid_deadline_boost_rejected_at_config() {
    for (threshold, factor) in [(0.0, 2.0), (1.5, 2.0), (0.5, 0.5), (f64::NAN, 2.0)] {
        let mut cfg = ServeConfig::new(SchedulerMode::Uncoded);
        cfg.deadline_boost = Some(DeadlineBoost {
            slack_threshold: threshold,
            factor,
        });
        assert!(
            matches!(
                ServiceEngine::new(pool(4, &[]), cfg),
                Err(ServeError::InvalidConfig(_))
            ),
            "threshold {threshold}, factor {factor} must be rejected"
        );
    }
}

// ---- telemetry ----------------------------------------------------------

#[test]
fn telemetry_is_off_by_default() {
    let report = run_mode(SchedulerMode::ConventionalMds, 5, 1.0);
    assert!(report.telemetry.is_none(), "tracing must be opt-in");
}

#[test]
fn rung_trace_events_mirror_ladder_transitions() {
    use s2c2_telemetry::TraceEventKind;
    // Uniform predictions on a straggler pool force timeout recovery,
    // so the ladder climbs past its entry rungs.
    let n = 12;
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::Uniform,
    });
    cfg.telemetry = true;
    let engine = ServiceEngine::new(pool(n, &[0, 5]), cfg).unwrap();
    let report = engine.run(&workload(10, 1.0, n, 9)).unwrap();
    assert!(report.timeouts > 0, "uniform predictions must mispredict");
    let tel = report.telemetry.as_ref().expect("telemetry was enabled");
    assert_eq!(
        report.recovery_rung_counts,
        tel.trace.rung_counts(),
        "aggregate counters and the event log must agree rung by rung"
    );
    // Every iteration start is announced by exactly one entry-rung
    // event (1 normal, 2 degraded), adjacent, same instant, matching
    // the start's degraded flag.
    let events = tel.trace.events();
    let mut starts = 0u64;
    for pair in events.windows(2) {
        if let TraceEventKind::IterationStart {
            job,
            generation,
            degraded,
            ..
        } = pair[0].kind
        {
            starts += 1;
            match pair[1].kind {
                TraceEventKind::RecoveryRung {
                    job: j,
                    generation: g,
                    rung,
                } => {
                    assert_eq!((j, g), (job, generation));
                    assert_eq!(rung, if degraded { 2 } else { 1 });
                    assert_eq!(pair[1].time.to_bits(), pair[0].time.to_bits());
                }
                ref other => panic!("iteration start not chased by its rung event: {other:?}"),
            }
        }
    }
    assert_eq!(
        starts,
        report.recovery_rung_counts[0] + report.recovery_rung_counts[1],
        "entry-rung transitions count exactly the iteration starts"
    );
    assert!(
        report.recovery_rung_counts[2] + report.recovery_rung_counts[3] > 0,
        "timeout recovery must surface as rung-3 redo or rung-4 wait-out"
    );
}

// ---- pipelined serving --------------------------------------------------

fn pipelined_cfg(depth: usize, predictor: PredictorSource) -> ServeConfig {
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 { predictor });
    cfg.pipeline = PipelinePolicy::Depth(depth);
    cfg
}

#[test]
fn zero_pipeline_depth_rejected_at_config() {
    let mut cfg = ServeConfig::new(SchedulerMode::ConventionalMds);
    cfg.pipeline = PipelinePolicy::Depth(0);
    assert!(matches!(
        ServiceEngine::new(pool(8, &[]), cfg),
        Err(ServeError::InvalidConfig(_))
    ));
}

#[test]
fn depth_one_reproduces_the_barrier_engine_exactly() {
    // `Depth(1)` routes through the window machinery but must be
    // indistinguishable from `Off` — same records, same virtual clock,
    // same event count, same trace stream, bit for bit. Uniform
    // predictions on a straggler pool drag the recovery ladder (and its
    // re-armed timeouts) into the comparison.
    let run_with = |pipeline: PipelinePolicy| {
        let n = 12;
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::Uniform,
        });
        cfg.pipeline = pipeline;
        cfg.telemetry = true;
        let engine = ServiceEngine::new(pool(n, &[2, 7]), cfg).unwrap();
        engine.run(&workload(15, 1.2, n, 11)).unwrap()
    };
    let off = run_with(PipelinePolicy::Off);
    let one = run_with(PipelinePolicy::Depth(1));
    assert!(off.timeouts > 0, "the scenario must exercise recovery");
    assert_eq!(off.jobs, one.jobs);
    assert_eq!(off.makespan.to_bits(), one.makespan.to_bits());
    assert_eq!(off.events_processed, one.events_processed);
    assert_eq!(off.timeouts, one.timeouts);
    assert_eq!(off.recovery_rung_counts, one.recovery_rung_counts);
    assert_eq!(off.rebalances, one.rebalances);
    let (ta, tb) = (off.telemetry.unwrap(), one.telemetry.unwrap());
    assert_eq!(ta.trace, tb.trace, "trace streams must be identical");
    // And a window of one can never overlap or park anything.
    assert_eq!(one.rounds_parked, 0);
    assert_eq!(one.pipeline_overlap_time, 0.0);
    assert_eq!(one.pipeline_stall_time, 0.0);
}

#[test]
fn pipelined_rounds_retire_in_order() {
    // Depth 4 with mispredictions: later rounds can finish first, but
    // IterationComplete must still walk 0, 1, 2, ... per job.
    use std::collections::BTreeMap;
    let n = 12;
    let mut cfg = pipelined_cfg(4, PredictorSource::Uniform);
    cfg.telemetry = true;
    let engine = ServiceEngine::new(pool(n, &[2, 7]), cfg).unwrap();
    let report = engine.run(&workload(12, 1.2, n, 13)).unwrap();
    assert_eq!(report.completed(), 12);
    assert!(report.timeouts > 0, "uniform predictions must mispredict");
    assert!(
        report.pipeline_overlap_time > 0.0,
        "a deep window must overlap successive rounds"
    );
    let tel = report.telemetry.as_ref().unwrap();
    let mut next: BTreeMap<u64, usize> = BTreeMap::new();
    for ev in tel.trace.events() {
        if let s2c2_telemetry::TraceEventKind::IterationComplete { job, iteration, .. } = ev.kind {
            let e = next.entry(job).or_insert(0);
            assert_eq!(iteration, *e, "job {job} committed a round out of order");
            *e += 1;
        }
    }
    assert!(!next.is_empty(), "the run must commit iterations");
}

#[test]
fn window_depth_caps_in_flight_rounds() {
    // Backpressure: with clean predictions (no restarts), the number of
    // started-but-uncommitted rounds per job never exceeds the depth.
    use std::collections::BTreeMap;
    let n = 8;
    let mut cfg = pipelined_cfg(2, PredictorSource::LastValue);
    cfg.telemetry = true;
    let engine = ServiceEngine::new(pool(n, &[]), cfg).unwrap();
    let report = engine.run(&workload(8, 1.0, n, 17)).unwrap();
    assert_eq!(report.completed(), 8);
    let tel = report.telemetry.as_ref().unwrap();
    let mut in_flight: BTreeMap<u64, usize> = BTreeMap::new();
    for ev in tel.trace.events() {
        match ev.kind {
            s2c2_telemetry::TraceEventKind::IterationStart { job, .. } => {
                let e = in_flight.entry(job).or_insert(0);
                *e += 1;
                assert!(*e <= 2, "job {job} exceeded the window depth");
            }
            s2c2_telemetry::TraceEventKind::IterationComplete { job, .. } => {
                *in_flight.entry(job).or_insert(0) -= 1;
            }
            _ => {}
        }
    }
    assert!(
        report.pipeline_overlap_time > 0.0,
        "depth 2 must actually overlap rounds"
    );
}

#[test]
fn straggled_round_is_reserved_while_successors_stream() {
    // Mispredicted stragglers at depth 2 on the verified backend: the
    // §4.3 ladder re-serves the lagging round inside the window and
    // every decoded iteration still checks against the reference.
    let n = 8;
    let mut cfg = pipelined_cfg(2, PredictorSource::Uniform);
    cfg.backend = BackendKind::SimVerified;
    let engine = ServiceEngine::new(pool(n, &[0, 4]), cfg).unwrap();
    let report = engine.run(&tiny_workload(5, n)).unwrap();
    assert_eq!(report.completed(), 5);
    assert!(report.timeouts > 0, "uniform predictions must mispredict");
    assert_eq!(report.verified_iterations, 5 * 2);
    assert!(report.max_decode_error < 1e-6);
}

#[test]
fn pipelined_engine_survives_churn_across_window_rounds() {
    // The survives_churn scenario at depth 2, traced: a worker dying
    // with live tasks in *two* rounds of one job's window must have
    // both invalidated at the same instant, and the service must still
    // resolve every job.
    use std::collections::BTreeMap;
    let n = 12;
    let mut cfg = pipelined_cfg(2, PredictorSource::LastValue);
    cfg.churn = Some(ChurnConfig {
        p_fail: 0.05,
        p_recover: 0.4,
        min_up: 10,
    });
    cfg.max_retries = 10;
    cfg.telemetry = true;
    let engine = ServiceEngine::new(pool(n, &[3]), cfg).unwrap();
    let report = engine.run(&workload(25, 1.0, n, 21)).unwrap();
    assert_eq!(
        report.completed() + report.failed(),
        25,
        "every job resolves"
    );
    assert!(
        report.completed() >= 23,
        "churn floor keeps most jobs alive"
    );
    // Find a churn instant that swept tasks from two generations of the
    // same job — the multi-round cancellation the window introduces.
    let tel = report.telemetry.as_ref().unwrap();
    let events = tel.trace.events();
    let mut two_round_kill = false;
    for (i, ev) in events.iter().enumerate() {
        let s2c2_telemetry::TraceEventKind::WorkerDown { worker } = ev.kind else {
            continue;
        };
        let mut gens: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for later in &events[i + 1..] {
            if later.time.to_bits() != ev.time.to_bits() {
                break;
            }
            if let s2c2_telemetry::TraceEventKind::TaskCancel {
                job,
                worker: w,
                generation,
                ..
            } = later.kind
            {
                if w == worker {
                    let g = gens.entry(job).or_default();
                    if !g.contains(&generation) {
                        g.push(generation);
                    }
                }
            }
        }
        if gens.values().any(|g| g.len() >= 2) {
            two_round_kill = true;
            break;
        }
    }
    assert!(
        two_round_kill,
        "the scenario must kill a worker holding tasks in two window rounds"
    );
}
