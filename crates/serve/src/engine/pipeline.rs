//! Cross-round pipelined serving: the bounded in-flight window policy
//! and the per-round scratch pool.
//!
//! The paper's serving loop is a hard barrier: round `i + 1` of a job
//! cannot dispatch until round `i` has collected, decoded, and
//! verified — so one straggled round stalls the whole job even when
//! most of its workers are idle. The sequential-gradient-coding line of
//! related work removes the barrier by coding *across* rounds: fast
//! workers stream ahead up to a window of `B` in-flight rounds while a
//! straggled round is re-served inside the window, trading a bounded
//! commit delay for near-zero per-round stalls.
//!
//! [`PipelinePolicy`] is that window bound. Each resident job may hold
//! up to `depth` concurrently running iterations; round `i + 1`
//! dispatches as soon as round `i`'s tasks are issued (serialized
//! per-worker — a worker computes one job's rounds in dispatch order at
//! the job's capacity share), and decode/verify results commit strictly
//! in round order: a completion for round `i + 1` parks until round `i`
//! retires. The §4.3 recovery ladder operates per in-flight round.
//!
//! [`PipelinePolicy::Off`] (and `Depth(1)`) reproduce the barrier
//! engine byte-for-byte: event streams, traces, and reports are pinned
//! against the pre-pipelining outputs in CI.

/// Bounded in-flight iteration window per resident job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PipelinePolicy {
    /// One iteration in flight at a time — the barrier engine, and the
    /// default. Byte-identical to `Depth(1)`.
    #[default]
    Off,
    /// Up to `d ≥ 1` concurrently running iterations per job, committed
    /// in order.
    Depth(usize),
}

impl PipelinePolicy {
    /// The window bound this policy allows (`Off` → 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        match *self {
            PipelinePolicy::Off => 1,
            PipelinePolicy::Depth(d) => d,
        }
    }

    /// Whether rounds can actually overlap (depth ≥ 2). Pipeline-only
    /// trace events and accounting are gated on this so `Off`/`Depth(1)`
    /// stay byte-identical to the barrier engine.
    #[must_use]
    pub fn overlapping(&self) -> bool {
        self.depth() > 1
    }
}

impl std::fmt::Display for PipelinePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PipelinePolicy::Off => f.write_str("off"),
            PipelinePolicy::Depth(d) => write!(f, "depth-{d}"),
        }
    }
}

/// Retired rounds' per-worker bookkeeping vectors, kept for reuse.
///
/// Every round needs ~10 pool-width vectors (scheduled finishes, done /
/// valid flags, redo bookkeeping, busy charges, start offsets). The
/// barrier engine allocated them fresh per round; under pipelining a
/// job touches `depth ×` as many live rounds, so the engine keeps a
/// small pool of retired rounds' vectors and re-initializes them in
/// place — contents after [`IterScratch::reset`] are element-for-element
/// identical to fresh allocation, so reuse is invisible to the timing
/// model. Reuses are counted in `ServiceReport::scratch_reuses`.
#[derive(Debug, Default)]
pub(crate) struct IterScratch {
    pub(crate) finish: Vec<f64>,
    pub(crate) done: Vec<bool>,
    pub(crate) valid: Vec<bool>,
    pub(crate) redo_chunks: Vec<Vec<usize>>,
    pub(crate) redo_finish: Vec<f64>,
    pub(crate) redo_done: Vec<bool>,
    pub(crate) redo_valid: Vec<bool>,
    pub(crate) busy_charged: Vec<f64>,
    pub(crate) redo_busy_charged: Vec<f64>,
    pub(crate) ded_offset: Vec<f64>,
}

/// Upper bound on pooled scratch sets: enough for every resident job's
/// whole window in any realistic configuration, small enough that a
/// churn-heavy run cannot hoard memory.
pub(crate) const SCRATCH_POOL_CAP: usize = 64;

impl IterScratch {
    /// Re-initializes every vector for an `n`-worker round, preserving
    /// capacity. The post-state is exactly what fresh construction
    /// produces.
    pub(crate) fn reset(&mut self, n: usize) {
        fn refill<T: Copy>(v: &mut Vec<T>, n: usize, x: T) {
            v.clear();
            v.resize(n, x);
        }
        refill(&mut self.finish, n, f64::INFINITY);
        refill(&mut self.done, n, false);
        refill(&mut self.valid, n, true);
        refill(&mut self.redo_finish, n, f64::INFINITY);
        refill(&mut self.redo_done, n, false);
        refill(&mut self.redo_valid, n, false);
        refill(&mut self.busy_charged, n, 0.0);
        refill(&mut self.redo_busy_charged, n, 0.0);
        refill(&mut self.ded_offset, n, 0.0);
        // Inner chunk lists keep their capacity — the per-round
        // allocation the pool exists to avoid.
        self.redo_chunks.truncate(n);
        for v in &mut self.redo_chunks {
            v.clear();
        }
        self.redo_chunks.resize_with(n, Vec::new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_depth_and_overlap() {
        assert_eq!(PipelinePolicy::Off.depth(), 1);
        assert_eq!(PipelinePolicy::Depth(1).depth(), 1);
        assert_eq!(PipelinePolicy::Depth(4).depth(), 4);
        assert!(!PipelinePolicy::Off.overlapping());
        assert!(!PipelinePolicy::Depth(1).overlapping());
        assert!(PipelinePolicy::Depth(2).overlapping());
        assert_eq!(PipelinePolicy::default(), PipelinePolicy::Off);
        assert_eq!(PipelinePolicy::Off.to_string(), "off");
        assert_eq!(PipelinePolicy::Depth(3).to_string(), "depth-3");
    }

    #[test]
    fn scratch_reset_matches_fresh_construction() {
        let mut s = IterScratch::default();
        s.reset(3);
        // Dirty every vector as a retired round would.
        s.finish[1] = 7.0;
        s.done[2] = true;
        s.valid[0] = false;
        s.redo_chunks[1].extend([4, 5]);
        s.redo_finish[0] = 1.0;
        s.redo_done[1] = true;
        s.redo_valid[2] = true;
        s.busy_charged[0] = 0.25;
        s.redo_busy_charged[2] = 0.5;
        s.ded_offset[1] = 0.125;
        let kept_cap = s.redo_chunks[1].capacity();
        s.reset(4);
        assert_eq!(s.finish, vec![f64::INFINITY; 4]);
        assert_eq!(s.done, vec![false; 4]);
        assert_eq!(s.valid, vec![true; 4]);
        assert_eq!(s.redo_chunks, vec![Vec::<usize>::new(); 4]);
        assert_eq!(s.redo_finish, vec![f64::INFINITY; 4]);
        assert_eq!(s.redo_done, vec![false; 4]);
        assert_eq!(s.redo_valid, vec![false; 4]);
        assert_eq!(s.busy_charged, vec![0.0; 4]);
        assert_eq!(s.redo_busy_charged, vec![0.0; 4]);
        assert_eq!(s.ded_offset, vec![0.0; 4]);
        assert!(
            s.redo_chunks[1].capacity() >= kept_cap,
            "inner chunk lists keep their allocation across resets"
        );
    }
}
