//! Resident-job state and the engine's event handlers.
//!
//! Everything here reacts to one popped event: arrivals feed the
//! admission queue ([`ServiceEngine::on_arrival`], with token-bucket
//! rate limiting), admission fills a job's in-flight round window
//! whose per-worker tasks are scheduled from the shared allocation
//! ([`ServiceEngine::dispatch_round`]), task completions mark coverage
//! and feed the speed predictor, and completed rounds decode (via the
//! execution backend) strictly in round order — a round that finishes
//! ahead of an earlier sibling parks until the window head retires
//! ([`ServiceEngine::retire_ready_rounds`]). Timeout and churn events
//! are handed to [`super::recovery`]; share rescaling lives in
//! [`super::rebalance`]; the window policy itself is
//! [`super::pipeline::PipelinePolicy`].

use super::pipeline::{IterScratch, SCRATCH_POOL_CAP};
use super::{trace_into, ServeError, ServiceEngine};
use crate::admission::{batch_key, BatchKey, BatchPolicy, QueuedJob, ResidentInfo};
use crate::event::{EventKind, JobId};
use crate::metrics::JobRecord;
use crate::shared_alloc::{allocate_for_resident, full_over_available};
use crate::workload::JobSpec;
use s2c2_core::{allocate_chunks_basic, ChunkAssignment};
use s2c2_telemetry::TraceEventKind;

use super::thread_speedup;
use super::SchedulerMode;

/// Refunds the not-yet-performed remainder of an abandoned task's compute
/// charge: a task scheduled to finish at `finish` and abandoned at `now`
/// still owes `(finish − now) · share` dedicated compute-seconds (capped
/// at what was charged).
pub(crate) fn refund_busy(
    busy_time: &mut f64,
    charged: &mut f64,
    finish: f64,
    now: f64,
    share: f64,
) {
    let refund = ((finish - now) * share).clamp(0.0, *charged);
    *busy_time -= refund;
    *charged -= refund;
}

/// Returns a retired round's per-worker vectors to the scratch pool for
/// the next dispatch (see [`IterScratch`]). A full pool simply drops
/// them.
pub(crate) fn reclaim_scratch(pool: &mut Vec<IterScratch>, iter: RunningIteration) {
    if pool.len() < SCRATCH_POOL_CAP {
        pool.push(IterScratch {
            finish: iter.finish,
            done: iter.done,
            valid: iter.valid,
            redo_chunks: iter.redo_chunks,
            redo_finish: iter.redo_finish,
            redo_done: iter.redo_done,
            redo_valid: iter.redo_valid,
            busy_charged: iter.busy_charged,
            redo_busy_charged: iter.redo_busy_charged,
            ded_offset: iter.ded_offset,
        });
    }
}

/// One in-flight iteration round of a resident job (or batch of jobs).
/// A job holds up to `pipeline.depth()` of these at once, committed in
/// `round_index` order.
#[derive(Debug)]
pub(crate) struct RunningIteration {
    pub(crate) generation: u64,
    /// Zero-based iteration index of this round within its job — the
    /// in-order commit key: a round retires only when every earlier
    /// index has.
    pub(crate) round_index: usize,
    pub(crate) share: f64,
    pub(crate) k_eff: usize,
    pub(crate) rows_per_chunk: usize,
    /// Stacked right-hand sides this round carries: 1 for a solo job,
    /// the member count for a batch round. Every compute charge,
    /// transfer size, and decode cost scales by it (the shared LU
    /// factorization does not — that is the decode amortization).
    pub(crate) rhs: usize,
    pub(crate) assignment: ChunkAssignment,
    /// Scheduled finish time per worker (`INFINITY` = no task).
    pub(crate) finish: Vec<f64>,
    pub(crate) done: Vec<bool>,
    /// `false` once a task is cancelled (deadline) or its worker churned.
    pub(crate) valid: Vec<bool>,
    pub(crate) redo_chunks: Vec<Vec<usize>>,
    pub(crate) redo_finish: Vec<f64>,
    pub(crate) redo_done: Vec<bool>,
    pub(crate) redo_valid: Vec<bool>,
    /// Dedicated compute-seconds charged to `busy_time` per original task
    /// (refunded pro rata when a task is cancelled or abandoned).
    pub(crate) busy_charged: Vec<f64>,
    /// Same, for redo tasks.
    pub(crate) redo_busy_charged: Vec<f64>,
    /// Dedicated share-seconds between this round's dispatch and each
    /// worker's actual task start. A pipelined round queues behind the
    /// job's earlier in-flight rounds on a shared worker, so speed
    /// observations must subtract this offset from the share integral
    /// or the queueing delay would be billed as slowness. Exactly 0 for
    /// every worker at pipeline depth 1.
    pub(crate) ded_offset: Vec<f64>,
    /// Set once this round's coverage completed and it is waiting for
    /// its earlier siblings to retire (in-order commit). The value is
    /// the completion instant; `None` while tasks are still in flight.
    pub(crate) parked_at: Option<f64>,
    /// Set once this iteration fell back to waiting out stragglers.
    pub(crate) waited_out: bool,
    /// The currently-armed §4.3 deadline. Kept for the rebalance
    /// re-arm condition (`latest >= armed_deadline`); staleness of
    /// timeout *events* is decided by [`Self::armed_seq`].
    pub(crate) armed_deadline: f64,
    /// Arming sequence number: bumped at every (re)arm of this round's
    /// deadline, carried in the scheduled timeout event. A timeout
    /// whose `arm` does not match was superseded (share rebalances
    /// stretch in-flight spans and re-arm) and is dropped — keyed per
    /// round, so a retired round's stale timeout can never fire against
    /// a successor round.
    pub(crate) armed_seq: u64,
    /// Dedicated share-seconds accumulated over completed share
    /// segments: `∫ share dt` from iteration start to [`Self::share_anchor`].
    /// With rebalancing, `duration · share` is wrong whenever the share
    /// changed mid-task; speed observations must use this integral or
    /// the predictor inherits a bias of up to `old_share / new_share`.
    pub(crate) share_integral: f64,
    /// Instant the current share segment began.
    pub(crate) share_anchor: f64,
    /// Instant this round was dispatched (phase-profiling anchor).
    pub(crate) started: f64,
    /// Input-broadcast transfer time of this round (the virtual
    /// "dispatch" phase).
    pub(crate) t_input: f64,
    /// Reply transfer time of the most recent task completion — by the
    /// time the iteration completes, the "collect" phase of the
    /// critical path.
    pub(crate) last_reply: f64,
}

impl RunningIteration {
    pub(crate) fn covers(&self, worker: usize, chunk: usize) -> bool {
        self.assignment.chunks[worker].binary_search(&chunk).is_ok()
    }

    /// Dedicated share-seconds the iteration has accrued by instant `t`
    /// (`∫ share` over `[start, t]`, exact across share rebalances).
    pub(crate) fn dedicated_by(&self, t: f64) -> f64 {
        self.share_integral + (t - self.share_anchor).max(0.0) * self.share
    }

    pub(crate) fn done_cover(&self, chunk: usize) -> usize {
        let n = self.assignment.workers();
        (0..n)
            .filter(|&w| {
                (self.done[w] && self.covers(w, chunk))
                    || (self.redo_done[w] && self.redo_chunks[w].contains(&chunk))
            })
            .count()
    }

    pub(crate) fn pending_redo_cover(&self, chunk: usize) -> usize {
        let n = self.assignment.workers();
        (0..n)
            .filter(|&w| {
                self.redo_valid[w] && !self.redo_done[w] && self.redo_chunks[w].contains(&chunk)
            })
            .count()
    }

    pub(crate) fn inflight_original_cover(&self, chunk: usize) -> usize {
        let n = self.assignment.workers();
        (0..n)
            .filter(|&w| self.valid[w] && !self.done[w] && self.covers(w, chunk))
            .count()
    }

    pub(crate) fn complete(&self) -> bool {
        (0..self.assignment.chunks_per_partition).all(|c| self.done_cover(c) >= self.k_eff)
    }
}

/// One job riding a resident batch. A solo job is a batch of one —
/// per-member QoS state (weight, SLO, boost flag) is tracked here so
/// batching never collapses member identities into the batch.
#[derive(Debug)]
pub(crate) struct BatchMember {
    pub(crate) spec: JobSpec,
    pub(crate) arrival: f64,
    /// Absolute SLO instant (`arrival + relative deadline`), if any.
    pub(crate) deadline_abs: Option<f64>,
    /// Whether deadline-aware share boosting has fired for this member
    /// (sticky for the rest of its residency).
    pub(crate) boosted: bool,
}

/// A job (or coalesced batch of jobs) currently holding a residency
/// slot.
#[derive(Debug)]
pub(crate) struct ResidentJob {
    /// Member jobs sharing this slot and its rounds; `members[0]` is
    /// the leader whose id keys the resident map and every scheduled
    /// event. All members share one [`batch_key`] (model identity,
    /// shape, code geometry, iteration count), so their rounds run in
    /// lockstep from admission to completion.
    pub(crate) members: Vec<BatchMember>,
    pub(crate) admitted: f64,
    /// Rounds committed (decoded/verified) so far — the in-order commit
    /// cursor: the next retirable round is exactly `round_index ==
    /// iterations_done`.
    pub(crate) iterations_done: usize,
    /// In-flight rounds, sorted by `round_index`; at most
    /// `pipeline.depth()` long. At depth 1 this is the classic barrier
    /// engine: zero or one round.
    pub(crate) window: Vec<RunningIteration>,
    /// Round indices dispatched but stalled on pool capacity
    /// (`alive < k_eff`), sorted; re-dispatched when a worker rejoins.
    pub(crate) stalled_rounds: Vec<usize>,
    /// Total rounds ever handed to [`ServiceEngine::dispatch_round`]
    /// (including currently stalled ones); the next fresh round index.
    pub(crate) iterations_dispatched: usize,
    /// Virtual instant the most recent round retired (decode end) —
    /// anchor for per-round pipeline-overlap accounting.
    pub(crate) last_retire_end: f64,
    pub(crate) iter_retries: usize,
    pub(crate) total_retries: usize,
}

impl ResidentJob {
    /// The leader's spec: the shared geometry every member agrees on.
    pub(crate) fn leader(&self) -> &JobSpec {
        &self.members[0].spec
    }

    /// Stacked right-hand sides a round of this residency carries.
    pub(crate) fn rhs(&self) -> usize {
        self.members.len()
    }
}

impl ServiceEngine {
    /// A resolved-on-arrival record (malformed, rate-limited, rejected).
    fn stillborn_record(
        &self,
        spec: &JobSpec,
        arrival: f64,
        rejected: bool,
        rate_limited: bool,
    ) -> JobRecord {
        JobRecord {
            id: spec.id,
            tenant: spec.tenant,
            preset: spec.preset,
            arrival,
            admitted: self.now,
            finished: self.now,
            iterations: 0,
            retries: 0,
            failed: true,
            rejected,
            rate_limited,
            weight: spec.weight,
            deadline: spec.deadline,
            work: spec.total_work(),
        }
    }

    pub(crate) fn on_arrival(&mut self, spec: JobSpec) -> Result<(), ServeError> {
        self.arrivals_remaining -= 1;
        let n = self.n();
        // QoS fields are rejected with a *typed* error, not a silent
        // failure record: a NaN/zero/negative weight that slipped
        // through would flow into the normalized-share arithmetic and
        // the queue-ordering comparators, where the best case is a
        // mis-sorted queue and the worst a panicking `unwrap` deep in
        // the allocator. Same for non-positive or non-finite deadlines.
        if !(spec.weight.is_finite() && spec.weight > 0.0) {
            return Err(ServeError::InvalidJob {
                job: spec.id,
                reason: format!("weight must be finite and positive, got {}", spec.weight),
            });
        }
        if let Some(d) = spec.deadline {
            if !(d.is_finite() && d > 0.0) {
                return Err(ServeError::InvalidJob {
                    job: spec.id,
                    reason: format!("deadline must be finite and positive, got {d}"),
                });
            }
        }
        let (jid, tenant, preset, now) = (spec.id, spec.tenant, spec.preset, self.now);
        trace_into(&mut self.telemetry, now, || TraceEventKind::JobArrival {
            job: jid,
            tenant,
            preset,
        });
        // Structural mismatches against *this* pool (k above the pool
        // size, empty shapes) resolve as failed records instead: the
        // spec may be serveable elsewhere, so the stream keeps flowing.
        let malformed = spec.k == 0
            || spec.k > n
            || spec.rows == 0
            || spec.cols == 0
            || spec.chunks_per_partition == 0
            || spec.iterations == 0;
        if malformed {
            trace_into(&mut self.telemetry, now, || TraceEventKind::Malformed {
                job: jid,
            });
            let record = self.stillborn_record(&spec, self.now, false, false);
            self.report.jobs.push(record);
            return Ok(());
        }
        // Token-bucket rate limiting: a tenant that bursts past its
        // admission budget has the job refused on the spot — before it
        // can occupy queue space or a residency slot.
        if let Some(bucket) = self.buckets.get_mut(&spec.tenant) {
            if !bucket.try_admit(self.now) {
                trace_into(&mut self.telemetry, now, || TraceEventKind::RateLimited {
                    job: jid,
                });
                let record = self.stillborn_record(&spec, self.now, false, true);
                self.report.jobs.push(record);
                return Ok(());
            }
        }
        self.pending.push(QueuedJob {
            spec,
            arrival: self.now,
        });
        self.sample_queue_depth();
        self.try_admit()
    }

    pub(crate) fn try_admit(&mut self) -> Result<(), ServeError> {
        'slots: while self.resident.len() < self.cfg.max_resident {
            // The policy sees *member* jobs, never batches: a weight-2
            // member counts its full weight toward its tenant's resident
            // mass whether it rides a batch or runs alone.
            let residents: Vec<ResidentInfo> = self
                .resident
                .values()
                .flat_map(|j| {
                    j.members.iter().map(|m| ResidentInfo {
                        tenant: m.spec.tenant,
                        weight: m.spec.weight,
                    })
                })
                .collect();
            // Batch keys held open by an unexpired time window this
            // pass: invisible to re-picks, so a held group defers only
            // itself and never starves unrelated admissions.
            let mut held: Vec<BatchKey> = Vec::new();
            let group: Vec<QueuedJob> = loop {
                // Most passes hold nothing: pick straight off the
                // pending queue without copying it. The filtered clone
                // is built only while a time-window key is actually
                // held, so the Off/size-threshold hot path stays
                // allocation-free per pick.
                let filtered: Option<(Vec<usize>, Vec<QueuedJob>)> = if held.is_empty() {
                    None
                } else {
                    let visible: Vec<usize> = (0..self.pending.len())
                        .filter(|&i| !held.contains(&batch_key(&self.pending[i].spec)))
                        .collect();
                    let cand = visible.iter().map(|&i| self.pending[i].clone()).collect();
                    Some((visible, cand))
                };
                let queue: &[QueuedJob] = filtered
                    .as_ref()
                    .map_or(self.pending.as_slice(), |(_, cand)| cand.as_slice());
                let to_pending = |i: usize| filtered.as_ref().map_or(i, |(visible, _)| visible[i]);
                let Some(ci) = self.cfg.policy.pick(queue, &residents) else {
                    break 'slots;
                };
                if !self.cfg.batch.enabled() {
                    let at = to_pending(ci);
                    break vec![self.pending.remove(at)];
                }
                // Batch-aware admission: the policy's pick stays the
                // head; queued mates sharing its key ride along, in
                // policy order, up to the size cap.
                let group_c =
                    self.cfg
                        .policy
                        .gather_batch(queue, &residents, ci, self.cfg.batch.max_batch());
                if let BatchPolicy::TimeWindow { window, max_batch } = self.cfg.batch {
                    if group_c.len() < max_batch {
                        let earliest = group_c
                            .iter()
                            .map(|&i| queue[i].arrival)
                            .fold(f64::INFINITY, f64::min);
                        let flush_at = earliest + window;
                        if self.now + 1e-12 < flush_at {
                            // Window still open: hold this key, flush
                            // later, and give the rest of the queue a
                            // chance at the slot now. One flush event
                            // per (key, instant) — every arrival during
                            // the window re-plans the same group, and
                            // duplicate events would burn the event
                            // budget on no-ops.
                            let key = batch_key(&queue[ci].spec);
                            held.push(key);
                            if !self
                                .pending_flushes
                                .iter()
                                .any(|&(k, at)| k == key && at == flush_at)
                            {
                                self.pending_flushes.push((key, flush_at));
                                self.queue.push(flush_at, EventKind::BatchFlush);
                            }
                            continue;
                        }
                    }
                }
                // Remove the group from the queue (descending index
                // order keeps earlier indices valid) while preserving
                // the policy-ordered member sequence.
                let taken: Vec<QueuedJob> = group_c.iter().map(|&i| queue[i].clone()).collect();
                let mut rm: Vec<usize> = group_c.iter().map(|&i| to_pending(i)).collect();
                rm.sort_unstable_by(|a, b| b.cmp(a));
                for i in rm {
                    self.pending.remove(i);
                }
                break taken;
            };
            // Deadline admission control applies per member: a hopeless
            // member is turned away without dragging its mates down.
            let mut members: Vec<BatchMember> = Vec::with_capacity(group.len());
            for queued in group {
                if self.cfg.reject_infeasible_deadlines && self.deadline_infeasible(&queued) {
                    let (jid, now) = (queued.spec.id, self.now);
                    trace_into(&mut self.telemetry, now, || TraceEventKind::Rejected {
                        job: jid,
                    });
                    let record = self.stillborn_record(&queued.spec, queued.arrival, true, false);
                    self.report.jobs.push(record);
                    self.sample_queue_depth();
                    continue;
                }
                let deadline_abs = queued.spec.deadline.map(|d| queued.arrival + d);
                members.push(BatchMember {
                    spec: queued.spec,
                    arrival: queued.arrival,
                    deadline_abs,
                    boosted: false,
                });
            }
            if members.is_empty() {
                continue;
            }
            let id = members[0].spec.id;
            let (k_eff, c_eff, _) = self.effective_shape(&members[0].spec);
            // One shared encode serves the whole batch; every member
            // after the first is a cache hit by construction.
            for m in &members {
                self.backend
                    .on_admit(&m.spec, k_eff, c_eff)
                    .map_err(ServeError::Backend)?;
            }
            if members.len() > 1 {
                self.report.batches_admitted += 1;
                self.report.batched_jobs += members.len();
                let (count, now) = (members.len(), self.now);
                trace_into(&mut self.telemetry, now, || TraceEventKind::BatchFormed {
                    leader: id,
                    members: count,
                });
            }
            if self.telemetry.is_some() {
                let now = self.now;
                for m in &members {
                    let jid = m.spec.id;
                    trace_into(&mut self.telemetry, now, || TraceEventKind::Admitted {
                        job: jid,
                        leader: id,
                    });
                }
            }
            self.resident.insert(
                id,
                ResidentJob {
                    members,
                    admitted: self.now,
                    iterations_done: 0,
                    window: Vec::new(),
                    stalled_rounds: Vec::new(),
                    iterations_dispatched: 0,
                    last_retire_end: self.now,
                    iter_retries: 0,
                    total_retries: 0,
                },
            );
            // The newcomer contends immediately: squeeze the neighbours
            // now, or the pool would be over-subscribed until their next
            // iteration boundaries.
            self.rebalance_shares();
            self.sample_queue_depth();
            let at = self.now;
            self.fill_window(id, at)?;
        }
        Ok(())
    }

    /// Optimistic service-time lower bound: the job's total work run on
    /// the whole available pool at once. If even that misses the SLO,
    /// the deadline is provably infeasible.
    fn deadline_infeasible(&self, queued: &QueuedJob) -> bool {
        if queued.spec.deadline.is_none() {
            return false;
        }
        let cap: f64 = self.avail_speeds().iter().sum::<f64>()
            * self.compute.elements_per_sec
            * thread_speedup(self.cfg.worker_threads);
        if cap <= 0.0 {
            // No live capacity to estimate with: nothing is provable.
            return false;
        }
        let min_service = queued.spec.total_work() / cap;
        self.now + min_service > queued.absolute_deadline()
    }

    /// Effective `(k, chunks, rows_per_chunk)` of a job under the current
    /// scheduling mode. Uncoded jobs run as `k = 1` over a finer split
    /// (each chunk computed by exactly one worker — even-split,
    /// wait-for-all).
    pub(crate) fn effective_shape(&self, spec: &JobSpec) -> (usize, usize, usize) {
        match self.cfg.scheduler {
            SchedulerMode::Uncoded => {
                let c = spec.chunks_per_partition * self.n();
                (1, c, spec.rows.div_ceil(c))
            }
            SchedulerMode::ConventionalMds | SchedulerMode::SharedS2c2 { .. } => {
                let c = spec.chunks_per_partition;
                let partition_rows = spec.rows.div_ceil(spec.k);
                (spec.k, c, partition_rows.div_ceil(c))
            }
        }
    }

    /// Dispatches fresh rounds for `id` until its in-flight window is
    /// full (the pipeline depth), a round stalls on capacity, or the
    /// job runs out of iterations. At depth 1 this is exactly the
    /// barrier engine's "start the next iteration".
    pub(crate) fn fill_window(&mut self, id: JobId, at: f64) -> Result<(), ServeError> {
        let depth = self.cfg.pipeline.depth();
        loop {
            let Some(job) = self.resident.get_mut(&id) else {
                return Ok(());
            };
            // A capacity-stalled round blocks the window: later indices
            // would stall on the same `k_eff` anyway, and dispatch order
            // must stay the commit order.
            if !job.stalled_rounds.is_empty()
                || job.iterations_dispatched >= job.leader().iterations
                || job.window.len() >= depth
            {
                return Ok(());
            }
            let round_index = job.iterations_dispatched;
            job.iterations_dispatched += 1;
            self.dispatch_round(id, round_index, at)?;
        }
    }

    /// Schedules one iteration round's per-worker tasks from the shared
    /// allocation. A pipelined round (depth ≥ 2) queues behind the job's
    /// earlier in-flight rounds on each shared worker — the job's
    /// capacity share is constant regardless of depth; the window only
    /// overlaps a round's dispatch/collect/decode with its siblings'
    /// compute.
    pub(crate) fn dispatch_round(
        &mut self,
        id: JobId,
        round_index: usize,
        at: f64,
    ) -> Result<(), ServeError> {
        // A boost firing here changes the whole resident set's effective
        // weight mass: the neighbours' in-flight tasks must be rescaled
        // too, or shares stop summing to 1 (the oversubscription bug) —
        // and sticky boosts mean the epoch-tick watchdog would never
        // catch up.
        if self.update_deadline_boosts() {
            self.rebalance_shares();
        }
        let avail = self.avail_speeds();
        let alive = avail.iter().filter(|&&s| s > 0.0).count();
        let spec = self.resident[&id].leader().clone();
        let rhs = self.resident[&id].rhs();
        let (k_eff, c_eff, rpc) = self.effective_shape(&spec);

        if alive < k_eff {
            // s2c2-allow: no-panic-paths -- engine invariant: round dispatches are only scheduled for ids the event loop keeps resident
            let job = self.resident.get_mut(&id).expect("resident job");
            if !job.stalled_rounds.contains(&round_index) {
                job.stalled_rounds.push(round_index);
                job.stalled_rounds.sort_unstable();
            }
            return Ok(());
        }

        // Planning speeds and per-job assignment. Every mode rates the
        // job at its weight-normalized share of the live resident mass —
        // the same `weight / Σ weights` rule `split_worker_capacity`
        // slices capacity by. Weights here are *effective* (per-member
        // deadline boosts included, summed over batch members).
        let weight = self.effective_weight(&self.resident[&id]);
        let total_weight: f64 = self
            .resident
            .values()
            .map(|j| self.effective_weight(j))
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        let weighted_share = (weight / total_weight).min(1.0);
        let (assignment, share, degraded, plan_speeds) = match &self.cfg.scheduler {
            SchedulerMode::Uncoded => {
                let mask: Vec<bool> = avail.iter().map(|&s| s > 0.0).collect();
                let a = allocate_chunks_basic(&mask, 1, c_eff)
                    // s2c2-allow: no-panic-paths -- engine invariant: the alive >= k_eff guard above makes k=1 allocation infallible
                    .expect("alive >= 1 guarantees feasibility");
                let uniform: Vec<f64> = avail
                    .iter()
                    .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
                    .collect();
                (a, weighted_share, false, uniform)
            }
            SchedulerMode::ConventionalMds => {
                let uniform: Vec<f64> = avail
                    .iter()
                    .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
                    .collect();
                (
                    full_over_available(&avail, k_eff, c_eff),
                    weighted_share,
                    false,
                    uniform,
                )
            }
            SchedulerMode::SharedS2c2 { .. } => {
                let preds: Vec<f64> = self
                    .tracker
                    .predictions_from(&avail)
                    .iter()
                    .zip(self.up.iter())
                    .map(|(&p, &u)| if u { p.max(0.0) } else { 0.0 })
                    .collect();
                // Weighted capacity split across the resident set; only
                // this job's slice is needed (neighbours are rescaled by
                // `rebalance_shares` when membership changes).
                let mine = allocate_for_resident(&preds, k_eff, c_eff, weight, total_weight);
                (mine.assignment, mine.share, mine.degraded, preds)
            }
        };

        if degraded {
            self.report.degraded_iterations += 1;
        }

        let n = self.n();
        let generation = self.next_generation;
        self.next_generation += 1;
        // Rungs 1 and 2 of the recovery ladder are decided right here at
        // planning time: a predict-feasible start is rung 1, a degraded
        // (reduced-redundancy) start is rung 2. Rungs 3-5 are counted at
        // their trigger points in `super::recovery`.
        let rung: u8 = if degraded { 2 } else { 1 };
        self.report.recovery_rung_counts[usize::from(rung - 1)] += 1;
        trace_into(&mut self.telemetry, at, || TraceEventKind::IterationStart {
            job: id,
            iteration: round_index,
            generation,
            rhs,
            share,
            degraded,
        });
        trace_into(&mut self.telemetry, at, || TraceEventKind::RecoveryRung {
            job: id,
            generation,
            rung,
        });
        // Per-worker bookkeeping comes from the scratch pool when a
        // retired round left one (reset in place — contents identical to
        // fresh allocation).
        let sc = self.take_scratch(n);
        let mut iter = RunningIteration {
            generation,
            round_index,
            share,
            k_eff,
            rows_per_chunk: rpc,
            rhs,
            assignment,
            finish: sc.finish,
            done: sc.done,
            valid: sc.valid,
            redo_chunks: sc.redo_chunks,
            redo_finish: sc.redo_finish,
            redo_done: sc.redo_done,
            redo_valid: sc.redo_valid,
            busy_charged: sc.busy_charged,
            redo_busy_charged: sc.redo_busy_charged,
            ded_offset: sc.ded_offset,
            parked_at: None,
            waited_out: false,
            armed_deadline: f64::INFINITY,
            armed_seq: 1,
            share_integral: 0.0,
            share_anchor: at,
            started: at,
            t_input: 0.0,
            last_reply: 0.0,
        };

        // A batch round ships every member's input in one transfer and
        // every member's chunk results in one reply: the per-message
        // latency is paid once per round, not once per member — the
        // fixed cost batching exists to amortize. Compute still scales
        // with the stacked width (`rhs` matvecs per assigned row).
        let t_in = self.comm.transfer_time((spec.cols * rhs * 8) as u64);
        iter.t_input = t_in;
        let speedup = thread_speedup(self.cfg.worker_threads);
        let mut max_planned_span: f64 = 0.0;
        let mut max_actual_span: f64 = 0.0;
        let window = &self.resident[&id].window;
        for (w, &plan_speed) in plan_speeds.iter().enumerate() {
            let chunks = iter.assignment.chunks[w].len();
            if chunks == 0 {
                continue;
            }
            // Intra-job serialization: a worker computes one job's
            // rounds in dispatch order at the job's share, so this
            // round's task starts after the worker's live tasks from
            // earlier window rounds. With an empty window (depth 1)
            // `start_w == at` exactly.
            let start_w = window.iter().fold(at, |acc, r| {
                let mut latest = acc;
                if r.valid[w] && !r.done[w] && r.finish[w].is_finite() {
                    latest = latest.max(r.finish[w]);
                }
                if r.redo_valid[w] && !r.redo_done[w] && r.redo_finish[w].is_finite() {
                    latest = latest.max(r.redo_finish[w]);
                }
                latest
            });
            let offset = start_w - at;
            let rows_w = chunks * rpc;
            let work = ((rows_w * spec.cols) * rhs) as f64;
            let rate = self.speeds[w] * share * self.compute.elements_per_sec * speedup;
            let t_reply = self.comm.transfer_time(((rows_w * rhs) * 8) as u64);
            let span = t_in + work / rate + t_reply;
            iter.finish[w] = start_w + span;
            // Freeze the queueing delay in dedicated share-seconds so
            // speed observations can subtract it (approximate across a
            // later rebalance, exact otherwise; identically 0 at depth 1).
            iter.ded_offset[w] = offset * share;
            max_actual_span = max_actual_span.max(offset + span);
            let plan_rate =
                plan_speed.max(f64::MIN_POSITIVE) * share * self.compute.elements_per_sec * speedup;
            max_planned_span = max_planned_span.max(offset + (t_in + work / plan_rate + t_reply));
            // Utilization is accounted in dedicated compute-seconds (the
            // share factor stretches wall time, not work done).
            iter.busy_charged[w] = work / rate * share;
            self.report.busy_time[w] += iter.busy_charged[w];
            trace_into(&mut self.telemetry, at, || TraceEventKind::TaskDispatch {
                job: id,
                worker: w,
                generation,
                chunks,
                redo: false,
            });
            self.queue.push(
                iter.finish[w],
                EventKind::TaskComplete {
                    job: id,
                    worker: w,
                    generation,
                    redo: false,
                },
            );
        }

        // Adaptive scheduling arms the deadline from the *plan* (so
        // mis-predictions are caught); the non-adaptive baselines never
        // cancel, so their timeout is a pure churn-recovery safety net
        // armed past every scheduled finish.
        let span = match self.cfg.scheduler {
            SchedulerMode::SharedS2c2 { .. } => max_planned_span,
            SchedulerMode::Uncoded | SchedulerMode::ConventionalMds => max_actual_span,
        };
        let deadline = at + (1.0 + self.cfg.timeout_margin) * span;
        iter.armed_deadline = deadline;
        self.queue.push(
            deadline,
            EventKind::Timeout {
                job: id,
                generation,
                arm: iter.armed_seq,
            },
        );

        if rhs > 1 {
            self.report.batch_rounds += 1;
        }
        // s2c2-allow: no-panic-paths -- engine invariant: this runs inside a round dispatch for a job verified resident above
        let job = self.resident.get_mut(&id).expect("resident job");
        let specs: Vec<JobSpec> = job.members.iter().map(|m| m.spec.clone()).collect();
        self.backend
            .on_iteration_start(&specs, &iter, round_index)
            .map_err(ServeError::Backend)?;
        job.stalled_rounds.retain(|&r| r != round_index);
        let pos = job.window.partition_point(|r| r.round_index < round_index);
        job.window.insert(pos, iter);
        Ok(())
    }

    /// Pops a pooled scratch set (reset in place) or builds a fresh one.
    fn take_scratch(&mut self, n: usize) -> IterScratch {
        let mut sc = match self.scratch.pop() {
            Some(sc) => {
                self.report.scratch_reuses += 1;
                sc
            }
            None => IterScratch::default(),
        };
        sc.reset(n);
        sc
    }

    pub(crate) fn on_task_complete(
        &mut self,
        id: JobId,
        worker: usize,
        generation: u64,
        redo: bool,
        t: f64,
    ) -> Result<(), ServeError> {
        {
            let Some(job) = self.resident.get_mut(&id) else {
                return Ok(());
            };
            let Some(iter) = job.window.iter_mut().find(|r| r.generation == generation) else {
                return Ok(());
            };
            // A parked round's live tasks were cancelled at park time;
            // any straggling completion event for it is stale.
            if iter.parked_at.is_some() {
                return Ok(());
            }
            if redo {
                // A rescheduled (merged) redo task supersedes this event.
                if !iter.redo_valid[worker]
                    || iter.redo_done[worker]
                    || (t - iter.redo_finish[worker]).abs() > 1e-9
                {
                    return Ok(());
                }
                iter.redo_done[worker] = true;
                let rows_w = iter.redo_chunks[worker].len() * iter.rows_per_chunk;
                iter.last_reply = self.comm.transfer_time(((rows_w * iter.rhs) * 8) as u64);
            } else {
                // The finish-time match drops completion events superseded
                // by a share rebalance (the task was rescheduled).
                if !iter.valid[worker]
                    || iter.done[worker]
                    || (t - iter.finish[worker]).abs() > 1e-9
                {
                    return Ok(());
                }
                iter.done[worker] = true;
                let reply_rows = iter.assignment.chunks[worker].len() * iter.rows_per_chunk;
                iter.last_reply = self
                    .comm
                    .transfer_time(((reply_rows * iter.rhs) * 8) as u64);
                // Feed the predictor with the observed relative rate. Redo
                // tasks are excluded (their span includes master-side idle
                // time, which would skew the estimate — same rule as the
                // single-job engine). The denominator is the share
                // *integral*, not `duration · share`: rebalances change the
                // share mid-task and the naive product would mis-scale the
                // estimate by up to `old_share / new_share`. Pipelined
                // rounds additionally subtract the queueing offset the
                // task spent waiting behind earlier window rounds.
                if matches!(self.cfg.scheduler, SchedulerMode::SharedS2c2 { .. }) {
                    let rows_w = iter.assignment.chunks[worker].len() * iter.rows_per_chunk;
                    let dedicated = (iter.dedicated_by(iter.finish[worker])
                        - iter.ded_offset[worker])
                        .max(f64::MIN_POSITIVE);
                    // The observed rate covers the whole stacked width the
                    // worker actually computed, so batched and unbatched
                    // rounds feed the predictor the same per-element speed.
                    let observed =
                        ((rows_w * job.members[0].spec.cols) * iter.rhs) as f64 / dedicated;
                    let mut obs: Vec<Option<f64>> = vec![None; self.speeds.len()];
                    obs[worker] = Some(observed);
                    self.tracker.observe(&obs);
                }
            }
        }
        trace_into(&mut self.telemetry, t, || TraceEventKind::TaskComplete {
            job: id,
            worker,
            generation,
            redo,
        });
        let completed = self
            .resident
            .get(&id)
            .and_then(|j| j.window.iter().find(|r| r.generation == generation))
            .is_some_and(RunningIteration::complete);
        if completed {
            self.on_round_complete(id, generation)?;
        }
        Ok(())
    }

    /// A round's coverage is complete: cancel the tasks nobody waits for
    /// and either retire it (window head) or park it behind its earlier
    /// siblings (in-order commit).
    pub(crate) fn on_round_complete(
        &mut self,
        id: JobId,
        generation: u64,
    ) -> Result<(), ServeError> {
        let now = self.now;
        let Some(job) = self.resident.get_mut(&id) else {
            return Ok(());
        };
        let Some(pos) = job.window.iter().position(|r| r.generation == generation) else {
            return Ok(());
        };
        // Retirable only when every earlier round has already been
        // committed — a capacity-stalled earlier round is *not* in the
        // window, so head position alone is not enough.
        let head = pos == 0 && job.window[0].round_index == job.iterations_done;
        let iter = &mut job.window[pos];
        // The master stops caring about still-running tasks (conventional
        // stragglers, superfluous redo): refund the compute they will not
        // perform, and tell the backend so real workers drop the stale
        // work too. The valid flags are cleared so a later churn event
        // cannot refund the same task twice while the round sits parked.
        for w in 0..iter.assignment.workers() {
            if iter.valid[w] && !iter.done[w] && iter.finish[w].is_finite() {
                iter.valid[w] = false;
                refund_busy(
                    &mut self.report.busy_time[w],
                    &mut iter.busy_charged[w],
                    iter.finish[w],
                    now,
                    iter.share,
                );
                self.backend.on_cancel(id, generation, w, false);
                trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                    job: id,
                    worker: w,
                    generation,
                    redo: false,
                });
            }
            if iter.redo_valid[w] && !iter.redo_done[w] && iter.redo_finish[w].is_finite() {
                iter.redo_valid[w] = false;
                refund_busy(
                    &mut self.report.busy_time[w],
                    &mut iter.redo_busy_charged[w],
                    iter.redo_finish[w],
                    now,
                    iter.share,
                );
                self.backend.on_cancel(id, generation, w, true);
                trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                    job: id,
                    worker: w,
                    generation,
                    redo: true,
                });
            }
        }
        iter.parked_at = Some(now);
        if head {
            return self.retire_ready_rounds(id);
        }
        // Parked: an earlier round is still running (or being
        // recovered). The decode/verify commit waits for it.
        self.report.rounds_parked += 1;
        let iteration = iter.round_index;
        trace_into(&mut self.telemetry, now, || TraceEventKind::RoundParked {
            job: id,
            iteration,
            generation,
        });
        Ok(())
    }

    /// Retires the job's window head and every parked successor behind
    /// it, committing decode/verify strictly in round order, then tops
    /// the window back up. At depth 1 this is exactly the barrier
    /// engine's iteration completion.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn retire_ready_rounds(&mut self, id: JobId) -> Result<(), ServeError> {
        let mut at = self.now;
        // The head this call retires was the round blocking any parked
        // successors: account the in-order-commit stall it caused.
        if self.cfg.pipeline.overlapping() {
            if let Some(job) = self.resident.get(&id) {
                let earliest_parked = job
                    .window
                    .iter()
                    .skip(1)
                    .filter_map(|r| r.parked_at)
                    .fold(f64::INFINITY, f64::min);
                if let Some(head) = job.window.first() {
                    if earliest_parked.is_finite() {
                        let head_gen = head.generation;
                        let seconds = (at - earliest_parked).max(0.0);
                        trace_into(&mut self.telemetry, at, || TraceEventKind::PipelineStall {
                            job: id,
                            generation: head_gen,
                            seconds,
                        });
                    }
                }
            }
        }
        loop {
            let Some(job) = self.resident.get_mut(&id) else {
                return Ok(());
            };
            let ready = job
                .window
                .first()
                .is_some_and(|r| r.parked_at.is_some() && r.round_index == job.iterations_done);
            if !ready {
                break;
            }
            let iter = job.window.remove(0);
            let completed_at = iter.parked_at.unwrap_or(at);
            let is_final = job.iterations_done + 1 >= job.leader().iterations;
            let specs: Vec<JobSpec> = job.members.iter().map(|m| m.spec.clone()).collect();
            self.backend
                .on_iteration_complete(&specs, &iter, job.iterations_done, is_final)
                .map_err(ServeError::Backend)?;
            let decode_time = match self.cfg.scheduler {
                SchedulerMode::Uncoded => 0.0,
                SchedulerMode::ConventionalMds | SchedulerMode::SharedS2c2 { .. } => {
                    let flops = decode_flops(&iter);
                    flops / self.decode_flops_per_sec
                }
            };
            let end = at + decode_time;
            // Virtual phase decomposition of the completed round: the span
            // from round dispatch to the last counted reply splits into the
            // input broadcast (dispatch), the straggler-bounded compute, and
            // the final reply transfer (collect); decode is appended after.
            // The pieces are carved out of the span itself, so they sum to
            // `iteration_time_total` exactly — no separate model to drift.
            let span = (completed_at - iter.started).max(0.0);
            let dispatch = iter.t_input.min(span);
            let rest = span - dispatch;
            let collect = iter.last_reply.min(rest);
            let compute = rest - collect;
            self.report.phase_virtual.dispatch += dispatch;
            self.report.phase_virtual.compute += compute;
            self.report.phase_virtual.collect += collect;
            self.report.phase_virtual.decode += decode_time;
            self.report.iteration_time_total += span + decode_time;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.metrics.observe("iteration_span", span + decode_time);
            }
            let generation = iter.generation;
            let iteration_index = job.iterations_done;
            trace_into(&mut self.telemetry, at, || TraceEventKind::Decode {
                job: id,
                generation,
                seconds: decode_time,
            });
            trace_into(&mut self.telemetry, end, || TraceEventKind::Verify {
                job: id,
                generation,
            });
            trace_into(&mut self.telemetry, end, || {
                TraceEventKind::IterationComplete {
                    job: id,
                    iteration: iteration_index,
                    generation,
                }
            });
            // Pipeline accounting: how long this round sat parked behind
            // its predecessors, and how much of its span overlapped the
            // previous round's lifetime. Both are identically 0 at
            // depth 1.
            let parked_for = (at - completed_at).max(0.0);
            self.report.pipeline_stall_time += parked_for;
            self.report.pipeline_overlap_time += (job.last_retire_end - iter.started).max(0.0);
            if self.cfg.pipeline.overlapping() {
                trace_into(&mut self.telemetry, end, || TraceEventKind::RoundRetired {
                    job: id,
                    iteration: iteration_index,
                    generation,
                    parked: parked_for,
                });
            }
            job.iterations_done += 1;
            job.iter_retries = 0;
            job.last_retire_end = end;
            reclaim_scratch(&mut self.scratch, iter);
            if job.iterations_done >= job.leader().iterations {
                // Every member resolves with its own record: its own
                // arrival (and therefore sojourn), weight, SLO, and work —
                // the batch is an execution detail, not a reporting unit.
                for m in &job.members {
                    let record = JobRecord {
                        id: m.spec.id,
                        tenant: m.spec.tenant,
                        preset: m.spec.preset,
                        arrival: m.arrival,
                        admitted: job.admitted,
                        finished: end,
                        iterations: job.iterations_done,
                        retries: job.total_retries,
                        failed: false,
                        rejected: false,
                        rate_limited: false,
                        weight: m.spec.weight,
                        deadline: m.spec.deadline,
                        work: m.spec.total_work(),
                    };
                    self.report.jobs.push(record);
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.metrics.observe("job_latency", end - m.arrival);
                    }
                    let (jid, tenant) = (m.spec.id, m.spec.tenant);
                    trace_into(&mut self.telemetry, end, || TraceEventKind::JobComplete {
                        job: jid,
                        tenant,
                    });
                }
                let member_ids: Vec<JobId> = job.members.iter().map(|m| m.spec.id).collect();
                self.resident.remove(&id);
                for mid in member_ids {
                    self.backend.on_job_resolved(mid);
                }
                // Work conservation: the freed capacity flows to the
                // survivors now, not at their next iteration boundaries.
                self.rebalance_shares();
                self.try_admit()?;
                return Ok(());
            }
            at = end;
        }
        // The commit cursor advanced and the window has room: dispatch
        // the next fresh rounds from the last decode's end.
        self.fill_window(id, at)
    }

    pub(crate) fn on_timeout(
        &mut self,
        id: JobId,
        generation: u64,
        arm: u64,
    ) -> Result<(), ServeError> {
        let Some(job) = self.resident.get(&id) else {
            return Ok(());
        };
        let Some(iter) = job.window.iter().find(|r| r.generation == generation) else {
            return Ok(());
        };
        // Superseded deadline: recovery or a share rebalance re-armed
        // this round behind a later instant (and bumped the sequence).
        if iter.armed_seq != arm {
            return Ok(());
        }
        // Completed but waiting on an earlier sibling to retire: the
        // round has its coverage, there is nothing left to recover.
        if iter.parked_at.is_some() {
            return Ok(());
        }
        self.recover(id, generation, true)
    }

    pub(crate) fn on_churn(&mut self, worker: usize, up: bool) -> Result<(), ServeError> {
        self.up[worker] = up;
        let now = self.now;
        trace_into(&mut self.telemetry, now, || {
            if up {
                TraceEventKind::WorkerUp { worker }
            } else {
                TraceEventKind::WorkerDown { worker }
            }
        });
        if up {
            // Capacity returned: wake rounds stalled on feasibility, in
            // round order per job (a failed re-dispatch re-stalls them).
            let waiting: Vec<(JobId, Vec<usize>)> = self
                .resident
                .iter_mut()
                .filter(|(_, j)| !j.stalled_rounds.is_empty())
                .map(|(&id, j)| (id, std::mem::take(&mut j.stalled_rounds)))
                .collect();
            for (id, rounds) in waiting {
                for round_index in rounds {
                    self.dispatch_round(id, round_index, now)?;
                }
            }
            return Ok(());
        }
        // Departure: invalidate the worker's in-flight tasks across every
        // window round and check each affected round for lost coverage.
        let ids: Vec<JobId> = self.resident.keys().copied().collect();
        for id in ids {
            let Some(job) = self.resident.get_mut(&id) else {
                continue;
            };
            let mut doomed: Vec<u64> = Vec::new();
            for iter in &mut job.window {
                // Parked rounds have no live tasks (cancelled at park).
                if iter.parked_at.is_some() {
                    continue;
                }
                let generation = iter.generation;
                let mut affected = false;
                if iter.valid[worker] && !iter.done[worker] && iter.finish[worker].is_finite() {
                    iter.valid[worker] = false;
                    refund_busy(
                        &mut self.report.busy_time[worker],
                        &mut iter.busy_charged[worker],
                        iter.finish[worker],
                        now,
                        iter.share,
                    );
                    self.backend.on_cancel(id, generation, worker, false);
                    trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                        job: id,
                        worker,
                        generation,
                        redo: false,
                    });
                    affected = true;
                }
                if iter.redo_valid[worker] && !iter.redo_done[worker] {
                    iter.redo_valid[worker] = false;
                    refund_busy(
                        &mut self.report.busy_time[worker],
                        &mut iter.redo_busy_charged[worker],
                        iter.redo_finish[worker],
                        now,
                        iter.share,
                    );
                    self.backend.on_cancel(id, generation, worker, true);
                    // The cancelled recompute never happens: drop its chunks
                    // from the redo bookkeeping, or a later merged redo on
                    // this worker would mark `redo_done` and `done_cover`
                    // would credit coverage nobody computed.
                    iter.redo_chunks[worker].clear();
                    iter.redo_finish[worker] = f64::INFINITY;
                    trace_into(&mut self.telemetry, now, || TraceEventKind::TaskCancel {
                        job: id,
                        worker,
                        generation,
                        redo: true,
                    });
                    affected = true;
                }
                if !affected {
                    continue;
                }
                let is_doomed = (0..iter.assignment.chunks_per_partition).any(|c| {
                    iter.done_cover(c)
                        + iter.pending_redo_cover(c)
                        + iter.inflight_original_cover(c)
                        < iter.k_eff
                });
                if is_doomed {
                    doomed.push(generation);
                }
            }
            for generation in doomed {
                // A rung-5 restart inside an earlier recovery may have
                // failed the whole job; `recover` re-validates.
                self.recover(id, generation, false)?;
            }
        }
        Ok(())
    }

    pub(crate) fn on_epoch_tick(&mut self, epoch: usize) {
        for (w, m) in self.models.iter_mut().enumerate() {
            let s = m.speed_at(epoch);
            if (s - self.speeds[w]).abs() > f64::EPSILON {
                self.queue.push(
                    self.now,
                    EventKind::WorkerSpeedChange {
                        worker: w,
                        speed: s,
                    },
                );
            }
        }
        let mask = self.churn.advance_to(epoch).to_vec();
        for (w, (&new, &old)) in mask.iter().zip(self.up.iter()).enumerate() {
            if new != old {
                self.queue
                    .push(self.now, EventKind::WorkerChurn { worker: w, up: new });
            }
        }
        // Epoch ticks are also the boost watchdog: a resident job whose
        // slack ran out mid-iteration gets its weight bump (and the pool
        // a rescale) at the next tick, not only at the next membership
        // change.
        if self.update_deadline_boosts() {
            self.rebalance_shares();
        }
        // Epoch ticks double as the utilization / memory sampler: one
        // point per tick keeps the series bounded by run length, not by
        // event volume.
        if self.telemetry.is_some() {
            let busy: f64 = self.report.busy_time.iter().sum();
            let denom = self.now * self.n() as f64;
            let util = if denom > 0.0 {
                (busy / denom).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let rss = s2c2_telemetry::registry::resident_set_bytes() as f64;
            let now = self.now;
            if let Some(tel) = &mut self.telemetry {
                tel.metrics.sample("utilization", now, util);
                tel.metrics.sample("rss_bytes", now, rss);
            }
        }
        if self.work_remains() {
            self.queue.push(
                self.now + self.cfg.epoch,
                EventKind::EpochTick { epoch: epoch + 1 },
            );
        }
    }
}

/// Master-side decode cost of a completed iteration (same model as the
/// single-job engine: per chunk, LU on the missing systematic rows).
/// For a batch round the LU factorization is shared — every stacked
/// right-hand side reuses it and pays only the per-column triangular
/// solves and RHS adjustments. That factor-once term is the decode-side
/// amortization batching buys.
pub(crate) fn decode_flops(iter: &RunningIteration) -> f64 {
    let n = iter.assignment.workers();
    let k = iter.k_eff;
    let rpc = iter.rows_per_chunk as f64;
    let rhs = iter.rhs as f64;
    let mut flops = 0.0;
    for chunk in 0..iter.assignment.chunks_per_partition {
        let mut finishers: Vec<(f64, usize)> = (0..n)
            .filter_map(|w| {
                if iter.done[w] && iter.covers(w, chunk) {
                    Some((iter.finish[w], w))
                } else if iter.redo_done[w] && iter.redo_chunks[w].contains(&chunk) {
                    Some((iter.redo_finish[w], w))
                } else {
                    None
                }
            })
            .collect();
        finishers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let missing = finishers.iter().take(k).filter(|&&(_, w)| w >= k).count() as f64;
        flops += missing.powi(3) / 3.0
            + rhs * (rpc * missing.powi(2))
            + rhs * (missing * k as f64 * rpc);
    }
    flops
}
