//! The event-driven multi-job service engine.
//!
//! [`ServiceEngine`] multiplexes many concurrent coded jobs onto one
//! shared worker pool, driven entirely by the typed events of
//! [`crate::event`]: arrivals join the admission queue, admitted jobs run
//! iterations whose per-worker tasks are scheduled from the shared-cluster
//! S²C² allocation, epoch ticks resample worker speeds and churn, and
//! §4.3-style timeouts recover from mis-predictions and departed workers.
//!
//! The engine is split into focused submodules, all driven by one event
//! loop (this module):
//!
//! * `core` — resident-job state and the event handlers (arrival,
//!   admission, iteration start/completion, churn, epoch ticks);
//! * [`backend`] — the pluggable `ExecutionBackend` seam: timing-only
//!   simulation, master-side verified numerics, or real OS-thread
//!   workers (selected via [`BackendKind`]);
//! * `recovery` — the §4.3 robustness ladder (cancel-and-reassign,
//!   wait-out, retry);
//! * `rebalance` — work-conserving share rebalancing and
//!   deadline-aware share boosting;
//! * `pipeline` — the cross-round in-flight window policy
//!   ([`PipelinePolicy`]) and the per-round scratch pool.
//!
//! # Timing model
//!
//! The engine is a *timing* simulator in the same spirit as
//! [`s2c2_cluster::ClusterSim`]: a task of `E` elements on worker `w`
//! serving job `j` takes `E / (speed_w · share_j · throughput ·
//! thread_speedup)` seconds, plus transfer times from the
//! [`s2c2_cluster::CommModel`]. `share_j` is the fraction of every
//! worker's capacity the shared allocator granted job `j`: the job's
//! capacity weight normalized over the live resident set
//! (`weight_j / Σ weights`, the [`s2c2_core::normalized_shares`] rule),
//! so a weight-2 tenant runs at twice a weight-1 tenant's fractional
//! rate. Speeds are piecewise constant: each task runs at the speed
//! sampled when it was issued, and epoch ticks only affect tasks issued
//! afterwards — the same once-per-iteration granularity the paper
//! measures and predicts at.
//!
//! # Execution backends
//!
//! Timing is always simulated; *numerics* are pluggable. Under
//! [`BackendKind::Sim`] (the default) jobs carry no data and nothing is
//! computed — the historical behavior, bit-identical event streams and
//! reports. Under [`BackendKind::SimVerified`] every job carries a real
//! model matrix (deterministic in [`crate::workload::JobSpec::matrix_id`]),
//! encoded once through a shared [`s2c2_coding::EncodeCache`], and every
//! completed iteration is decoded from exactly the worker coverage the
//! timing model produced and checked against a sequential reference.
//! [`BackendKind::Threaded`] does the same but dispatches the encoded
//! chunk work to real [`s2c2_cluster::threaded::ThreadedCluster`]
//! OS-thread workers (with cooperative cancellation mirroring the
//! recovery ladder), so the schedule the engine decides is the schedule
//! real threads execute. Cache hits/misses, verified-iteration counts,
//! and decoded outputs land in the [`ServiceReport`].
//!
//! # Work conservation
//!
//! Shares are *not* frozen at iteration boundaries: whenever the
//! resident set changes (admission, completion, failure), every running
//! iteration's share is recomputed from the live weight mass and its
//! in-flight tasks are rescaled at that instant. Capacity freed by a
//! finishing job flows to its neighbours immediately instead of idling
//! until their iteration boundaries, and a newly admitted job squeezes
//! its neighbours immediately instead of over-subscribing the pool
//! (stale share snapshots were precisely the bug that let reported
//! utilization exceed 1). The rescale stretches a task's whole
//! remaining span — a deliberate approximation: the transfer tail is a
//! few control/row messages, negligible beside compute in the clusters
//! this models.
//!
//! # Batching
//!
//! [`ServeConfig::batch`] ([`BatchPolicy`]) coalesces queued jobs that
//! share a batch key (model identity, shape, code geometry, iteration
//! count) into one *batch round*: a single cache-backed encode, one
//! stacked multi-RHS dispatch per worker, one decode LU factorization
//! per chunk, and one residency slot for the whole group. QoS always
//! sees the member jobs — per-member weights, deadline boosts,
//! rejections, and records — and the recovery ladder degrades or
//! redoes a straggling round *per batch*, so every member decodes from
//! the identical coverage. With [`BatchPolicy::Off`] (the default) the
//! engine is byte-identical to the pre-batching behavior.
//!
//! # Deadlines and QoS
//!
//! Jobs may carry a relative SLO ([`crate::workload::JobSpec::deadline`]).
//! [`QueuePolicy::EarliestDeadline`] admits by least slack, and with
//! [`ServeConfig::reject_infeasible_deadlines`] the engine refuses, at
//! admission time, jobs whose deadline cannot be met even by the whole
//! pool running the job alone (an optimistic lower bound, so only
//! provably-hopeless jobs are turned away). Two capacity-side QoS levers
//! extend that admission-side pair: per-tenant token-bucket **rate
//! limits** ([`ServeConfig::tenant_rate_limits`]) cap a tenant's
//! absolute burst admission, and **deadline-aware share boosting**
//! ([`ServeConfig::deadline_boost`]) bumps a resident job's effective
//! weight once its remaining slack falls below a threshold fraction of
//! its SLO, pulling at-risk jobs forward inside the capacity layer.
//!
//! # Robustness ladder (per iteration)
//!
//! 1. Predictions feasible → shared-cluster S²C² (exactly-`k` coverage).
//! 2. Predictions infeasible (< `k` workers believed alive) → that job
//!    degrades to conventional coded computing over available workers.
//! 3. Deadline miss (mis-prediction, churn) → finished workers recompute
//!    the missing chunks (they already hold the coded partitions — no
//!    data movement, ever).
//! 4. Not enough finished workers → wait out the in-flight stragglers
//!    (conventional semantics).
//! 5. Nobody left (churn storm) → restart the iteration, up to
//!    `max_retries`, then fail the job.

pub mod backend;
mod core;
mod pipeline;
mod rebalance;
mod recovery;
#[cfg(test)]
mod tests;

pub use backend::BackendKind;
pub use pipeline::PipelinePolicy;

use crate::admission::{BatchKey, BatchPolicy, QueuePolicy, QueuedJob, RateLimit, TokenBucket};
use crate::event::{EventKind, EventQueue, JobId};
use crate::metrics::ServiceReport;
use crate::workload::JobSpec;
use backend::ExecutionBackend;
use core::ResidentJob;
use s2c2_cluster::{ChurnProcess, ClusterSpec, CommModel, ComputeModel};
use s2c2_core::speed_tracker::{PredictorSource, SpeedTracker};
use s2c2_telemetry::{Telemetry, TraceEvent, TraceEventKind, TraceSink};
use s2c2_trace::BoxedSpeedModel;
use std::collections::BTreeMap;

/// Records the event built by `f` into an enabled telemetry bundle.
///
/// A free function over the `Option` field (rather than a method on the
/// engine) so emission sites can run while other engine fields are
/// borrowed; the closure is never evaluated when telemetry is off, which
/// is the zero-cost-when-disabled guarantee.
#[inline]
pub(crate) fn trace_into(
    telemetry: &mut Option<Telemetry>,
    time: f64,
    f: impl FnOnce() -> TraceEventKind,
) {
    if let Some(tel) = telemetry.as_mut() {
        tel.trace.record(TraceEvent { time, kind: f() });
    }
}

/// How the engine schedules coded work onto the pool.
pub enum SchedulerMode {
    /// Even uncoded split over available workers; every task must finish.
    Uncoded,
    /// Conventional `(n, k)` MDS: every available worker computes its full
    /// partition; the master takes the fastest `k` per chunk.
    ConventionalMds,
    /// Shared-cluster S²C²: capacity split across resident jobs, Algorithm
    /// 1 per job on predicted speeds, timeout-and-reassign on mis-
    /// prediction.
    SharedS2c2 {
        /// Where next-iteration speed estimates come from.
        predictor: PredictorSource,
    },
}

impl std::fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerMode::Uncoded => "uncoded",
            SchedulerMode::ConventionalMds => "mds",
            SchedulerMode::SharedS2c2 { .. } => "s2c2",
        };
        f.write_str(s)
    }
}

impl std::fmt::Debug for SchedulerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedulerMode::{self}")
    }
}

/// Worker churn parameters (see [`ChurnProcess`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Per-epoch probability an up worker departs.
    pub p_fail: f64,
    /// Per-epoch probability a departed worker rejoins.
    pub p_recover: f64,
    /// Availability floor (keep ≥ the largest job `k`, or coded jobs can
    /// wait indefinitely for capacity).
    pub min_up: usize,
}

/// Deadline-aware share boosting: the capacity-layer complement to
/// earliest-deadline *admission*.
///
/// A resident job carrying an SLO is watched at every share recompute
/// point (iteration boundaries, resident-set changes, epoch ticks): once
/// the fraction of its SLO budget still remaining drops below
/// `slack_threshold`, its effective capacity weight is multiplied by
/// `factor` for the rest of its residency (sticky — slack regained by
/// the boost does not un-boost it, which would oscillate). Activations
/// are counted in [`ServiceReport::boost_activations`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineBoost {
    /// Boost when `remaining_slack / total_SLO` falls below this
    /// fraction (in `(0, 1]`).
    pub slack_threshold: f64,
    /// Effective-weight multiplier applied to at-risk jobs (≥ 1).
    pub factor: f64,
}

/// Engine configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// Scheduling mode.
    pub scheduler: SchedulerMode,
    /// Execution backend: timing-only simulation (default), master-side
    /// verified numerics, or real OS-thread workers.
    pub backend: BackendKind,
    /// Admission-queue policy.
    pub policy: QueuePolicy,
    /// Maximum concurrently-resident jobs (the multiprogramming level).
    pub max_resident: usize,
    /// §4.3 timeout margin over the planned iteration span.
    pub timeout_margin: f64,
    /// Seconds between speed/churn resampling epochs.
    pub epoch: f64,
    /// Threads each worker devotes to its matvec. The timing model charges
    /// the near-linear scaling measured for row-partitioned
    /// [`s2c2_linalg::parallel::par_matvec`]: `1 + 0.9 · (threads − 1)`.
    pub worker_threads: usize,
    /// Optional worker churn.
    pub churn: Option<ChurnConfig>,
    /// Iteration restarts tolerated before a job is failed.
    pub max_retries: usize,
    /// Hard event budget (guards against configuration-induced livelock).
    pub max_events: u64,
    /// Deadline admission control: refuse jobs whose SLO cannot be met
    /// even by the whole pool serving them alone (optimistic bound —
    /// only provably-hopeless jobs are rejected). Rejected jobs resolve
    /// immediately as failed with the `rejected` flag set.
    pub reject_infeasible_deadlines: bool,
    /// Per-tenant token-bucket rate limits on arrival admission. Tenants
    /// without an entry are unlimited; a tenant that exhausts its bucket
    /// has the arrival refused on the spot (recorded `rate_limited`,
    /// disjoint from deadline rejections).
    pub tenant_rate_limits: BTreeMap<u32, RateLimit>,
    /// Optional deadline-aware share boosting for at-risk resident jobs.
    pub deadline_boost: Option<DeadlineBoost>,
    /// Batching/coalescing of queued jobs sharing a model matrix and
    /// code geometry onto one encode/dispatch round (see
    /// [`BatchPolicy`]). Off by default — the unbatched engine is
    /// byte-identical to the pre-batching behavior.
    pub batch: BatchPolicy,
    /// Cross-round pipelining: how many of a job's iterations may be in
    /// flight concurrently (see [`PipelinePolicy`]). Results always
    /// commit in round order. Off by default — `Off` and `Depth(1)` are
    /// byte-identical to the barrier engine.
    pub pipeline: PipelinePolicy,
    /// Record structured trace events and a metrics registry during the
    /// run, surfaced as [`ServiceReport::telemetry`]. Off by default;
    /// the disabled path never constructs an event (emission sites take
    /// closures that are simply not evaluated), so existing outputs stay
    /// byte-identical.
    pub telemetry: bool,
}

impl ServeConfig {
    /// Sensible defaults around the given scheduling mode.
    #[must_use]
    pub fn new(scheduler: SchedulerMode) -> Self {
        ServeConfig {
            scheduler,
            backend: BackendKind::Sim,
            policy: QueuePolicy::Fifo,
            max_resident: 4,
            timeout_margin: 0.25,
            epoch: 0.25,
            worker_threads: 1,
            churn: None,
            max_retries: 3,
            max_events: 2_000_000,
            reject_infeasible_deadlines: false,
            tenant_rate_limits: BTreeMap::new(),
            deadline_boost: None,
            batch: BatchPolicy::Off,
            pipeline: PipelinePolicy::Off,
            telemetry: false,
        }
    }
}

/// Engine failure modes.
#[derive(Debug)]
pub enum ServeError {
    /// Rejected configuration.
    InvalidConfig(String),
    /// The event queue drained while jobs were still queued or resident.
    Stalled {
        /// Jobs still in the admission queue.
        pending: usize,
        /// Jobs still resident.
        resident: usize,
    },
    /// The event budget was exhausted (livelock guard).
    Runaway {
        /// Events processed before giving up.
        events: u64,
    },
    /// A numeric execution backend failed (encode/decode error, a
    /// decoded iteration diverging from the sequential reference, or a
    /// threaded worker failing to reply).
    Backend(String),
    /// A submitted [`JobSpec`] carried an invalid QoS field — a NaN,
    /// infinite, zero, or negative `weight`, or a non-positive or
    /// non-finite `deadline`. Rejected with a typed error at arrival,
    /// before the value can reach the weight-normalization and
    /// queue-ordering comparators.
    InvalidJob {
        /// The offending job.
        job: crate::event::JobId,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Stalled { pending, resident } => write!(
                f,
                "engine stalled with {pending} queued and {resident} resident jobs"
            ),
            ServeError::Runaway { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
            ServeError::Backend(msg) => write!(f, "execution backend failed: {msg}"),
            ServeError::InvalidJob { job, reason } => {
                write!(f, "invalid job {job}: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Effective speedup of `threads`-way row-partitioned matvec.
pub(crate) fn thread_speedup(threads: usize) -> f64 {
    1.0 + 0.9 * threads.saturating_sub(1) as f64
}

/// The event-driven multi-job service engine.
pub struct ServiceEngine {
    cfg: ServeConfig,
    models: Vec<BoxedSpeedModel>,
    comm: CommModel,
    compute: ComputeModel,
    decode_flops_per_sec: f64,
    churn: ChurnProcess,
    tracker: SpeedTracker,
    speeds: Vec<f64>,
    up: Vec<bool>,
    now: f64,
    queue: EventQueue,
    pending: Vec<QueuedJob>,
    resident: BTreeMap<JobId, ResidentJob>,
    arrivals_remaining: usize,
    next_generation: u64,
    report: ServiceReport,
    backend: Box<dyn ExecutionBackend>,
    buckets: BTreeMap<u32, TokenBucket>,
    /// Trace buffer + metrics registry, present only when
    /// [`ServeConfig::telemetry`] is on. Every emission site goes
    /// through [`trace_into`], so the `None` path costs one branch.
    telemetry: Option<Telemetry>,
    /// Batch-flush events already scheduled, by `(key, instant)` —
    /// admission re-plans a held group on every arrival during its
    /// window, and without this dedup each re-plan would enqueue
    /// another identical no-op flush.
    pending_flushes: Vec<(BatchKey, f64)>,
    /// Retired rounds' per-worker bookkeeping vectors, pooled for reuse
    /// by the next dispatch (see [`pipeline::IterScratch`]).
    scratch: Vec<pipeline::IterScratch>,
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("workers", &self.models.len())
            .field("backend", &self.cfg.backend)
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .field("resident", &self.resident.len())
            .finish()
    }
}

impl ServiceEngine {
    /// Builds the engine over a cluster specification.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on degenerate knobs.
    pub fn new(spec: ClusterSpec, cfg: ServeConfig) -> Result<Self, ServeError> {
        let n = spec.n();
        if cfg.max_resident == 0 {
            return Err(ServeError::InvalidConfig("max_resident must be ≥ 1".into()));
        }
        if !(cfg.epoch.is_finite() && cfg.epoch > 0.0) {
            return Err(ServeError::InvalidConfig("epoch must be positive".into()));
        }
        if !(cfg.timeout_margin.is_finite() && cfg.timeout_margin >= 0.0) {
            return Err(ServeError::InvalidConfig(
                "timeout margin must be non-negative".into(),
            ));
        }
        if cfg.worker_threads == 0 {
            return Err(ServeError::InvalidConfig(
                "worker_threads must be ≥ 1".into(),
            ));
        }
        for (tenant, limit) in &cfg.tenant_rate_limits {
            if !(limit.rate.is_finite() && limit.rate > 0.0) {
                return Err(ServeError::InvalidConfig(format!(
                    "tenant {tenant} rate limit must have a positive rate"
                )));
            }
            if !(limit.burst.is_finite() && limit.burst >= 1.0) {
                return Err(ServeError::InvalidConfig(format!(
                    "tenant {tenant} rate limit must allow a burst of at least one job"
                )));
            }
        }
        match cfg.batch {
            BatchPolicy::Off => {}
            BatchPolicy::SizeThreshold { max_batch } => {
                if max_batch < 2 {
                    return Err(ServeError::InvalidConfig(
                        "batch size threshold must be ≥ 2 (use BatchPolicy::Off to disable)".into(),
                    ));
                }
            }
            BatchPolicy::TimeWindow { window, max_batch } => {
                if !(window.is_finite() && window > 0.0) {
                    return Err(ServeError::InvalidConfig(
                        "batch time window must be finite and positive".into(),
                    ));
                }
                if max_batch < 2 {
                    return Err(ServeError::InvalidConfig(
                        "batch size cap must be ≥ 2 (use BatchPolicy::Off to disable)".into(),
                    ));
                }
            }
        }
        if cfg.pipeline == PipelinePolicy::Depth(0) {
            return Err(ServeError::InvalidConfig(
                "pipeline depth must be ≥ 1 (use PipelinePolicy::Off to disable)".into(),
            ));
        }
        if let Some(boost) = &cfg.deadline_boost {
            if !(boost.slack_threshold.is_finite()
                && boost.slack_threshold > 0.0
                && boost.slack_threshold <= 1.0)
            {
                return Err(ServeError::InvalidConfig(
                    "deadline boost slack_threshold must be in (0, 1]".into(),
                ));
            }
            if !(boost.factor.is_finite() && boost.factor >= 1.0) {
                return Err(ServeError::InvalidConfig(
                    "deadline boost factor must be ≥ 1".into(),
                ));
            }
        }
        let churn = match &cfg.churn {
            Some(c) => {
                if c.min_up > n {
                    return Err(ServeError::InvalidConfig(
                        "churn min_up exceeds pool size".into(),
                    ));
                }
                ChurnProcess::new(n, c.p_fail, c.p_recover, c.min_up, 0x5EEC)
            }
            None => ChurnProcess::none(n),
        };
        let predictor = match &cfg.scheduler {
            SchedulerMode::SharedS2c2 { predictor } => predictor.clone(),
            SchedulerMode::Uncoded | SchedulerMode::ConventionalMds => PredictorSource::Uniform,
        };
        let buckets = cfg
            .tenant_rate_limits
            .iter()
            .map(|(&tenant, &limit)| (tenant, TokenBucket::new(limit)))
            .collect();
        Ok(ServiceEngine {
            tracker: SpeedTracker::new(&predictor, n),
            backend: backend::make_backend(cfg.backend, n),
            telemetry: cfg.telemetry.then(Telemetry::new),
            cfg,
            models: spec.workers,
            comm: spec.comm,
            compute: spec.compute,
            decode_flops_per_sec: spec.decode_flops_per_sec,
            churn,
            speeds: vec![1.0; n],
            up: vec![true; n],
            now: 0.0,
            queue: EventQueue::new(),
            pending: Vec::new(),
            resident: BTreeMap::new(),
            arrivals_remaining: 0,
            next_generation: 1,
            report: ServiceReport {
                busy_time: vec![0.0; n],
                ..ServiceReport::default()
            },
            buckets,
            pending_flushes: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Number of pool workers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.models.len()
    }

    /// Runs the workload (`(arrival_time, spec)` pairs) to completion and
    /// returns the service report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stalled`] if the event queue drains with jobs left
    /// (configuration error — e.g. churn floor below every job's `k`);
    /// [`ServeError::Runaway`] if the event budget is exhausted;
    /// [`ServeError::Backend`] if a numeric backend fails (decode error,
    /// verification divergence, or an unresponsive threaded worker).
    pub fn run(mut self, workload: &[(f64, JobSpec)]) -> Result<ServiceReport, ServeError> {
        let outcome = self.drive(workload);
        // Always dismantle the backend (joins worker threads, merges
        // cache/verification counters into the report) — including on
        // the error paths, or a failed run would leak OS threads.
        self.backend.finish(&mut self.report);
        outcome?;

        // Makespan is the time the last job resolved, not the time the
        // last (possibly stale-straggler) event drained — throughput
        // should not be diluted by work nobody waited for.
        self.report.makespan = self
            .report
            .jobs
            .iter()
            .map(|j| j.finished)
            .fold(0.0, f64::max);
        if !self.pending.is_empty() || !self.resident.is_empty() {
            return Err(ServeError::Stalled {
                pending: self.pending.len(),
                resident: self.resident.len(),
            });
        }
        self.finalize_telemetry();
        Ok(self.report)
    }

    /// Rolls run-level summary counters and gauges into the metrics
    /// registry and hands the whole telemetry bundle to the report.
    fn finalize_telemetry(&mut self) {
        let Some(mut tel) = self.telemetry.take() else {
            return;
        };
        let trace_events = tel.trace.len() as u64;
        let m = &mut tel.metrics;
        m.inc_by("events_processed", self.report.events_processed);
        m.inc_by("trace_events", trace_events);
        m.inc_by("jobs_completed", self.report.completed() as u64);
        m.inc_by("jobs_failed", self.report.failed() as u64);
        m.inc_by("jobs_rejected", self.report.rejected() as u64);
        m.inc_by("jobs_rate_limited", self.report.rate_limited() as u64);
        m.inc_by("timeouts", self.report.timeouts as u64);
        m.inc_by(
            "degraded_iterations",
            self.report.degraded_iterations as u64,
        );
        m.inc_by("rebalances", self.report.rebalances as u64);
        m.inc_by("batch_rounds", self.report.batch_rounds as u64);
        m.inc_by("rounds_parked", self.report.rounds_parked);
        m.inc_by("scratch_reuses", self.report.scratch_reuses);
        const RUNGS: [&str; 5] = [
            "rung_1_normal",
            "rung_2_degraded",
            "rung_3_redo",
            "rung_4_wait_out",
            "rung_5_restart",
        ];
        for (name, &count) in RUNGS.iter().zip(self.report.recovery_rung_counts.iter()) {
            m.inc_by(name, count);
        }
        m.set_gauge("makespan", self.report.makespan);
        m.set_gauge("utilization", self.report.utilization());
        m.set_gauge("throughput", self.report.throughput());
        m.set_gauge("pipeline_stall_seconds", self.report.pipeline_stall_time);
        self.report.telemetry = Some(tel);
    }

    /// The event loop proper: seeds arrivals and epoch ticks, then pops
    /// until drained or the event budget runs out.
    fn drive(&mut self, workload: &[(f64, JobSpec)]) -> Result<(), ServeError> {
        // Initial samples: epoch 0.
        for (w, m) in self.models.iter_mut().enumerate() {
            self.speeds[w] = m.speed_at(0);
        }
        self.up.copy_from_slice(self.churn.advance_to(0));
        self.arrivals_remaining = workload.len();
        for (t, spec) in workload {
            self.queue.push(*t, EventKind::JobArrival(spec.clone()));
        }
        if self.work_remains() {
            self.queue
                .push(self.cfg.epoch, EventKind::EpochTick { epoch: 1 });
        }

        while let Some((t, kind)) = self.queue.pop() {
            self.now = t;
            self.report.events_processed += 1;
            if self.report.events_processed > self.cfg.max_events {
                return Err(ServeError::Runaway {
                    events: self.report.events_processed,
                });
            }
            match kind {
                EventKind::JobArrival(spec) => self.on_arrival(spec)?,
                EventKind::TaskComplete {
                    job,
                    worker,
                    generation,
                    redo,
                } => self.on_task_complete(job, worker, generation, redo, t)?,
                EventKind::WorkerSpeedChange { worker, speed } => self.speeds[worker] = speed,
                EventKind::Timeout {
                    job,
                    generation,
                    arm,
                } => self.on_timeout(job, generation, arm)?,
                EventKind::WorkerChurn { worker, up } => self.on_churn(worker, up)?,
                EventKind::EpochTick { epoch } => self.on_epoch_tick(epoch),
                // A batch window expired: drop the spent flush markers,
                // then re-run admission so the held group (plus
                // whatever mates accumulated) is flushed.
                EventKind::BatchFlush => {
                    self.pending_flushes.retain(|&(_, at)| at > t);
                    let pending = self.pending.len();
                    trace_into(&mut self.telemetry, t, || TraceEventKind::BatchFlush {
                        pending,
                    });
                    self.try_admit()?;
                }
            }
        }
        Ok(())
    }

    fn work_remains(&self) -> bool {
        self.arrivals_remaining > 0 || !self.pending.is_empty() || !self.resident.is_empty()
    }

    fn avail_speeds(&self) -> Vec<f64> {
        self.speeds
            .iter()
            .zip(self.up.iter())
            .map(|(&s, &u)| if u { s } else { 0.0 })
            .collect()
    }

    fn sample_queue_depth(&mut self) {
        self.report.queue_depth.push((self.now, self.pending.len()));
        let in_flight: usize = self.resident.values().map(|j| j.window.len()).sum();
        if let Some(tel) = self.telemetry.as_mut() {
            tel.metrics
                .sample("queue_depth", self.now, self.pending.len() as f64);
            tel.metrics
                .sample("resident_jobs", self.now, self.resident.len() as f64);
            tel.metrics
                .sample("pipeline_depth", self.now, in_flight as f64);
        }
    }
}
