//! Micro-benchmarks of the coding substrate: encode and decode throughput
//! for the paper's MDS configurations and the polynomial codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s2c2_coding::mds::{MdsCode, MdsParams};
use s2c2_coding::polynomial::{PolyParams, PolynomialCode};
use s2c2_linalg::{Matrix, Vector};

fn bench_mds_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("mds_encode");
    for (n, k) in [(12usize, 10usize), (12, 6), (10, 7), (50, 40)] {
        let a = Matrix::from_fn(k * 40, 64, |r, cc| ((r * 3 + cc) % 17) as f64);
        let code = MdsCode::new(MdsParams::new(n, k)).expect("valid (n, k)");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("({n},{k})")),
            &a,
            |b, a| b.iter(|| code.encode(a, 8).expect("encode")),
        );
    }
    group.finish();
}

fn bench_mds_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("mds_decode_worst_case");
    for (n, k) in [(12usize, 10usize), (10, 7), (50, 40)] {
        let a = Matrix::from_fn(k * 40, 64, |r, cc| ((r * 3 + cc) % 17) as f64);
        let code = MdsCode::new(MdsParams::new(n, k)).expect("valid (n, k)");
        let enc = code.encode(&a, 8).expect("encode");
        let x = Vector::filled(64, 1.0);
        // Worst case: the last k workers (max parity involvement).
        let chunks: Vec<usize> = (0..8).collect();
        let responses: Vec<_> = (n - k..n)
            .flat_map(|w| enc.worker_compute_chunks(w, &chunks, &x))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("({n},{k})")),
            &responses,
            |b, responses| b.iter(|| code.decode_matvec(enc.layout(), responses).expect("decode")),
        );
    }
    group.finish();
}

fn bench_poly_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("polynomial_hessian");
    group.sample_size(20);
    let dim = 96;
    let a = Matrix::from_fn(dim, dim, |r, cc| ((r + cc * 5) % 13) as f64 * 0.1);
    let a_t = a.transpose();
    let code = PolynomialCode::new(PolyParams::new(12, 3, 3)).expect("valid params");
    let enc = code.encode_pair(&a_t, &a, 4).expect("encode");
    let w = Vector::filled(dim, 0.25);
    group.bench_function("encode_pair", |b| {
        b.iter(|| code.encode_pair(&a_t, &a, 4).expect("encode"))
    });
    let chunks: Vec<usize> = (0..4).collect();
    let responses: Vec<_> = (3..12)
        .flat_map(|wk| enc.worker_compute_chunks(wk, &chunks, Some(&w)))
        .collect();
    group.bench_function("decode_product", |b| {
        b.iter(|| {
            code.decode_product(enc.layout(), &responses)
                .expect("decode")
        })
    });
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_allocator");
    for n in [12usize, 50, 200] {
        let speeds: Vec<f64> = (0..n)
            .map(|i| 0.3 + 0.7 * ((i * 7 % 10) as f64 / 10.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &speeds, |b, speeds| {
            b.iter(|| s2c2_core::allocate_chunks(speeds, n * 4 / 5, 32).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(
    codecs,
    bench_mds_encode,
    bench_mds_decode,
    bench_poly_roundtrip,
    bench_allocator
);
criterion_main!(codecs);
