//! Criterion benches — one per paper figure.
//!
//! Each bench first regenerates its figure's table (Quick scale) and
//! prints it, then times the full experiment so regressions in the
//! scheduling stack show up as bench regressions. Run
//! `cargo run -p s2c2-bench --release --bin figures -- all` for the
//! Full-scale tables recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use s2c2_bench::experiments::{
    fig01_motivation, fig02_traces, fig03_storage, fig06_logreg, fig07_pagerank, fig08_cloud,
    fig12_polynomial, fig13_scale, prediction, Scale,
};

fn bench_fig01(c: &mut Criterion) {
    println!("{}", fig01_motivation::run(Scale::Quick).render());
    c.bench_function("fig01_motivation", |b| {
        b.iter(|| fig01_motivation::run(Scale::Quick))
    });
}

fn bench_fig02(c: &mut Criterion) {
    let out = fig02_traces::run(Scale::Quick);
    println!("{}", out.traces.render());
    c.bench_function("fig02_traces", |b| {
        b.iter(|| fig02_traces::run(Scale::Quick))
    });
}

fn bench_fig03(c: &mut Criterion) {
    println!("{}", fig03_storage::run(Scale::Quick).render());
    c.bench_function("fig03_storage", |b| {
        b.iter(|| fig03_storage::run(Scale::Quick))
    });
}

fn bench_prediction(c: &mut Criterion) {
    println!("{}", prediction::run(Scale::Quick).render());
    let mut group = c.benchmark_group("prediction_6_1");
    group.sample_size(10);
    group.bench_function("train_and_score", |b| {
        b.iter(|| prediction::run(Scale::Quick))
    });
    group.finish();
}

fn bench_fig06(c: &mut Criterion) {
    println!("{}", fig06_logreg::run(Scale::Quick).render());
    let mut group = c.benchmark_group("fig06_logreg");
    group.sample_size(10);
    group.bench_function("sweep", |b| b.iter(|| fig06_logreg::run(Scale::Quick)));
    group.finish();
}

fn bench_fig07(c: &mut Criterion) {
    println!("{}", fig07_pagerank::run(Scale::Quick).render());
    let mut group = c.benchmark_group("fig07_pagerank");
    group.sample_size(10);
    group.bench_function("sweep", |b| b.iter(|| fig07_pagerank::run(Scale::Quick)));
    group.finish();
}

fn bench_fig08(c: &mut Criterion) {
    let figs = fig08_cloud::run(Scale::Quick);
    println!("{}", figs.fig8.render());
    println!("{}", figs.fig9.render());
    println!("{}", figs.fig10.render());
    println!("{}", figs.fig11.render());
    let mut group = c.benchmark_group("fig08_to_11_cloud");
    group.sample_size(10);
    group.bench_function("both_environments", |b| {
        b.iter(|| fig08_cloud::run(Scale::Quick))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    println!("{}", fig12_polynomial::run(Scale::Quick).render());
    let mut group = c.benchmark_group("fig12_polynomial");
    group.sample_size(10);
    group.bench_function("both_environments", |b| {
        b.iter(|| fig12_polynomial::run(Scale::Quick))
    });
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    println!("{}", fig13_scale::run(Scale::Quick).render());
    let mut group = c.benchmark_group("fig13_scale");
    group.sample_size(10);
    group.bench_function("both_environments", |b| {
        b.iter(|| fig13_scale::run(Scale::Quick))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_prediction,
    bench_fig06,
    bench_fig07,
    bench_fig08,
    bench_fig12,
    bench_fig13
);
criterion_main!(figures);
