//! Ablation benches for the design choices DESIGN.md calls out: chunk
//! granularity, timeout margin, parity conditioning, predictor choice.
//!
//! Each prints its ablation table (Quick scale) once, then times the
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use s2c2_bench::experiments::{ablations, Scale};

fn bench_chunks(c: &mut Criterion) {
    println!("{}", ablations::chunk_granularity(Scale::Quick).render());
    let mut group = c.benchmark_group("ablation_chunks");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| ablations::chunk_granularity(Scale::Quick))
    });
    group.finish();
}

fn bench_timeout(c: &mut Criterion) {
    println!("{}", ablations::timeout_margin(Scale::Quick).render());
    let mut group = c.benchmark_group("ablation_timeout");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| ablations::timeout_margin(Scale::Quick))
    });
    group.finish();
}

fn bench_conditioning(c: &mut Criterion) {
    println!("{}", ablations::parity_conditioning(Scale::Quick).render());
    c.bench_function("ablation_conditioning", |b| {
        b.iter(|| ablations::parity_conditioning(Scale::Quick))
    });
}

fn bench_predictor(c: &mut Criterion) {
    println!("{}", ablations::predictor_choice(Scale::Quick).render());
    let mut group = c.benchmark_group("ablation_predictor");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| ablations::predictor_choice(Scale::Quick))
    });
    group.finish();
}

criterion_group!(
    ablation_suite,
    bench_chunks,
    bench_timeout,
    bench_conditioning,
    bench_predictor
);
criterion_main!(ablation_suite);
