//! Per-kernel regression benches for the batch-first kernel layer.
//!
//! Three comparisons, each pairing the production kernel with the obvious
//! reference it replaced:
//!
//! * **blocked vs naive** — the cache-blocked/unrolled single-RHS `matvec`
//!   against a plain serial dot-product loop.
//! * **multi-RHS vs m× single** — one `matvec_multi` over a contiguous
//!   [`MultiVector`] against `m` independent `matvec` calls (the old
//!   per-member serve path).
//! * **fused vs two-pass** — `encode_matvec_multi` (parity products as
//!   generator-weighted combinations of systematic products) against
//!   materializing the parity partitions and multiplying every one.
//!
//! Runs as a custom `harness = false` binary:
//!
//! * `cargo bench -p s2c2-bench --bench kernel_benches` — full sweep.
//! * `-- --save` — also rewrites `BENCH_KERNELS.json` at the repo root.
//! * `-- --quick` — CI smoke: only the large preset, asserting the blocked
//!   kernel is not slower than the naive reference.

use criterion::{black_box, Criterion};
use s2c2_coding::{MdsCode, MdsParams};
use s2c2_linalg::{Matrix, MultiVector, Vector};

/// Problem sizes: name, rows, cols.
const PRESETS: &[(&str, usize, usize)] = &[
    ("small", 256, 64),
    ("medium", 1024, 256),
    ("large", 4096, 512),
];

/// RHS counts for the multi-RHS comparison.
const RHS_COUNTS: &[usize] = &[4, 8, 16];

fn test_matrix(rows: usize, cols: usize) -> Matrix {
    // Deterministic, mildly irregular values; benches must not depend on
    // an RNG so reruns time the identical computation.
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7) % 17) as f64 * 0.25 - 2.0
    })
}

fn test_multivector(count: usize, len: usize) -> MultiVector {
    MultiVector::from_fn(count, len, |m, i| {
        ((m * 13 + i * 3) % 11) as f64 * 0.5 - 2.5
    })
}

/// Plain serial reference: one fold per row, no unrolling, no blocking.
fn naive_matvec(a: &Matrix, x: &Vector) -> Vector {
    Vector::from_fn(a.rows(), |r| {
        a.row(r)
            .iter()
            .zip(x.as_slice())
            .map(|(av, xv)| av * xv)
            .sum::<f64>()
    })
}

fn bench_blocked_vs_naive(c: &mut Criterion, presets: &[(&str, usize, usize)]) {
    for &(name, rows, cols) in presets {
        let a = test_matrix(rows, cols);
        let x = Vector::from_fn(cols, |i| (i % 7) as f64 - 3.0);
        c.bench_function(&format!("matvec_blocked/{name}"), |b| {
            b.iter(|| black_box(&a).matvec(black_box(&x)))
        });
        c.bench_function(&format!("matvec_naive/{name}"), |b| {
            b.iter(|| naive_matvec(black_box(&a), black_box(&x)))
        });
    }
}

fn bench_multi_vs_single(c: &mut Criterion) {
    for &(name, rows, cols) in PRESETS {
        let a = test_matrix(rows, cols);
        for &m in RHS_COUNTS {
            let xs = test_multivector(m, cols);
            let singles: Vec<Vector> = xs.to_vectors();
            c.bench_function(&format!("matvec_multi/{name}/m{m}"), |b| {
                b.iter(|| black_box(&a).matvec_multi(black_box(&xs)))
            });
            c.bench_function(&format!("matvec_single_x{m}/{name}/m{m}"), |b| {
                b.iter(|| {
                    singles
                        .iter()
                        .map(|x| black_box(&a).matvec(black_box(x)))
                        .collect::<Vec<_>>()
                })
            });
        }
    }
}

fn bench_fused_vs_two_pass(c: &mut Criterion) {
    let code = MdsCode::new(MdsParams::new(10, 8)).expect("valid params");
    let chunks = 4;
    let m = 8;
    for &(name, rows, cols) in &PRESETS[1..] {
        let a = test_matrix(rows, cols);
        let xs = test_multivector(m, cols);
        c.bench_function(&format!("encode_multiply_fused/{name}/m{m}"), |b| {
            b.iter(|| {
                code.encode_matvec_multi(black_box(&a), chunks, black_box(&xs))
                    .expect("encode-multiply")
            })
        });
        c.bench_function(&format!("encode_multiply_two_pass/{name}/m{m}"), |b| {
            b.iter(|| {
                let enc = code.encode(black_box(&a), chunks).expect("encode");
                let all: Vec<usize> = (0..chunks).collect();
                (0..code.params().n)
                    .map(|w| enc.worker_compute_chunks_multi(w, &all, black_box(&xs)))
                    .collect::<Vec<_>>()
            })
        });
    }
}

fn median_ns(c: &Criterion, label: &str) -> f64 {
    c.measurements()
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, d)| d.as_secs_f64() * 1e9)
        .unwrap_or_else(|| panic!("no measurement recorded for {label}"))
}

fn write_report(c: &Criterion, path: &std::path::Path) {
    let mut rows = String::new();
    let mut push_row = |name: &str, fast: &str, slow: &str, fast_ns: f64, slow_ns: f64| {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{name}\", \"{fast}_ns\": {fast_ns:.1}, \"{slow}_ns\": {slow_ns:.1}, \"speedup\": {:.3}}}",
            slow_ns / fast_ns
        ));
    };
    for &(name, _, _) in PRESETS {
        let blocked = median_ns(c, &format!("matvec_blocked/{name}"));
        let naive = median_ns(c, &format!("matvec_naive/{name}"));
        push_row(
            &format!("matvec/{name}"),
            "blocked",
            "naive",
            blocked,
            naive,
        );
    }
    for &(name, _, _) in PRESETS {
        for &m in RHS_COUNTS {
            let multi = median_ns(c, &format!("matvec_multi/{name}/m{m}"));
            let single = median_ns(c, &format!("matvec_single_x{m}/{name}/m{m}"));
            push_row(
                &format!("matvec_multi/{name}/m{m}"),
                "multi",
                "per_member",
                multi,
                single,
            );
        }
    }
    for &(name, _, _) in &PRESETS[1..] {
        let fused = median_ns(c, &format!("encode_multiply_fused/{name}/m8"));
        let two_pass = median_ns(c, &format!("encode_multiply_two_pass/{name}/m8"));
        push_row(
            &format!("encode_multiply/{name}/m8"),
            "fused",
            "two_pass",
            fused,
            two_pass,
        );
    }
    let json = format!(
        "{{\n  \"note\": \"median ns/iter from `cargo bench -p s2c2-bench --bench kernel_benches -- --save` (release); speedup = reference / kernel\",\n  \"kernels\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write BENCH_KERNELS.json");
    println!("wrote {}", path.display());
}

fn main() {
    // `cargo test --benches` compile-checks bench binaries with `--test`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let save = std::env::args().any(|a| a == "--save");

    let mut c = Criterion::default().sample_size(10);
    if quick {
        // CI smoke: the blocked kernel must not regress below the naive
        // reference on the large (memory-resident) preset. The margin
        // absorbs shared-runner timer noise without hiding a real
        // regression to an un-unrolled loop.
        let large = &PRESETS[2..];
        bench_blocked_vs_naive(&mut c, large);
        let blocked = median_ns(&c, "matvec_blocked/large");
        let naive = median_ns(&c, "matvec_naive/large");
        println!(
            "quick check: blocked {blocked:.0} ns vs naive {naive:.0} ns ({:.2}x)",
            naive / blocked
        );
        assert!(
            blocked <= naive * 1.10,
            "blocked matvec ({blocked:.0} ns) slower than naive reference ({naive:.0} ns)"
        );
        return;
    }

    bench_blocked_vs_naive(&mut c, PRESETS);
    bench_multi_vs_single(&mut c);
    bench_fused_vs_two_pass(&mut c);

    if save {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_KERNELS.json");
        write_report(&c, &root);
    }
}
