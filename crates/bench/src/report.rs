//! Tiny table type for experiment outputs.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A labelled numeric table: one header per value column, one label per
/// row. This is the exchange format between experiments and front-ends.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Fig 6 — Logistic Regression, 12 workers"`).
    pub title: String,
    /// Value column headers.
    pub columns: Vec<String>,
    /// Rows: `(label, values)` with `values.len() == columns.len()`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count disagrees with the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Value at `(row_label, column)` — convenience for assertions.
    ///
    /// # Panics
    ///
    /// Panics if the row or column does not exist.
    #[must_use]
    pub fn value(&self, row_label: &str, column: &str) -> f64 {
        let col = self
            .columns
            .iter()
            .position(|c| c == column)
            .unwrap_or_else(|| panic!("no column {column}"));
        let row = self
            .rows
            .iter()
            .find(|(l, _)| l == row_label)
            .unwrap_or_else(|| panic!("no row {row_label}"));
        row.1[col]
    }

    /// Renders a fixed-width text table.
    #[must_use]
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(10)
            + 2;
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<label_width$}", "");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_width$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_width$}");
            for v in values {
                let _ = write!(out, "{v:>col_width$.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        use std::io::Write;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "label,{}", self.columns.join(","))?;
        for (label, values) in &self.rows {
            let vals: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
            writeln!(f, "{label},{}", vals.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row("row1", vec![1.0, 2.0]);
        t.push_row("row2", vec![3.5, 4.25]);
        t
    }

    #[test]
    fn value_lookup() {
        let t = sample();
        assert_eq!(t.value("row2", "b"), 4.25);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        let _ = sample().value("row1", "zzz");
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("demo"));
        assert!(s.contains("row1"));
        assert!(s.contains("4.2500"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("s2c2_bench_report_test");
        let path = dir.join("t.csv");
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("label,a,b"));
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("x", vec!["a".into()]);
        t.push_row("r", vec![1.0, 2.0]);
    }
}
