//! The `serve` experiment: many concurrent coded jobs on one shared
//! pool, S²C² vs conventional MDS vs uncoded under rising offered load.
//!
//! This is the service regime the related work targets (elastic cloud
//! load, tail-latency SLOs) rather than a paper figure: jobs arrive
//! Poisson, queue behind an admission policy, and share the pool's
//! capacity. Three tables come out:
//!
//! * **policies** — sojourn-latency distribution (p50/p95/p99), mean,
//!   throughput, utilization, and queue depth per scheduling mode at a
//!   moderate offered load;
//! * **load** — p99 sojourn latency per mode as the arrival rate rises
//!   (the classic hockey-stick separation);
//! * **threads** — the same S²C² service with 1-thread vs 4-thread
//!   worker matvecs (`s2c2_linalg::parallel` row-partitioning), showing
//!   the intra-worker parallelism delta end to end.
//!
//! Everything is seeded: reruns are bit-identical.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::prelude::*;

/// Pool size for the serve scenario (shared with the committed baseline
/// so `BENCH_BASELINE.json` guards exactly the scenario these tables
/// measure).
pub const POOL: usize = 16;
/// Injected 5×-slow stragglers.
pub const STRAGGLERS: usize = 3;
/// Workload seed (shared by every mode so loads are identical).
pub const SEED: u64 = 0x5EBE;

/// The experiment's three tables.
#[derive(Debug, Clone)]
pub struct ServeOutput {
    /// Per-policy service metrics at the reference load.
    pub policies: Table,
    /// p99 sojourn latency per policy as offered load rises.
    pub load: Table,
    /// Worker-thread scaling of the S²C² service.
    pub threads: Table,
}

/// Builds the scheduling mode for one of the experiment's policy labels.
///
/// # Panics
///
/// Panics on an unknown label.
#[must_use]
pub fn mode(name: &str) -> SchedulerMode {
    match name {
        "uncoded" => SchedulerMode::Uncoded,
        "mds" => SchedulerMode::ConventionalMds,
        "s2c2" => SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        },
        other => panic!("unknown scheduling mode {other}"),
    }
}

/// Runs one service configuration of the canonical serve scenario
/// (also the substrate of the committed baseline's serve rows).
///
/// # Panics
///
/// Panics if the engine rejects the configuration or the run stalls —
/// the scenario must be runnable on every commit.
#[must_use]
pub fn run_service(
    scheduler: SchedulerMode,
    rate: f64,
    jobs: usize,
    threads: usize,
) -> ServiceReport {
    let pool = common::controlled_cluster(POOL, STRAGGLERS, SEED);
    let workload = generate_workload(
        &ArrivalPattern::Poisson { rate },
        &JobPreset::standard_mix(),
        jobs,
        4,
        POOL,
        SEED,
    );
    let mut cfg = ServeConfig::new(scheduler);
    cfg.worker_threads = threads;
    ServiceEngine::new(pool, cfg)
        .expect("serve configuration is valid")
        .run(&workload)
        .expect("service run completes")
}

/// Runs the serve experiment.
#[must_use]
pub fn run(scale: Scale) -> ServeOutput {
    let jobs = scale.pick(16, 60);
    let base_rate = 1.0;

    let mut policies = Table::new(
        format!(
            "Serve — {jobs} jobs over a {POOL}-worker pool ({STRAGGLERS} stragglers), \
             Poisson λ = {base_rate}/s"
        ),
        vec![
            "p50_latency".into(),
            "p95_latency".into(),
            "p99_latency".into(),
            "mean_latency".into(),
            "throughput".into(),
            "utilization".into(),
            "mean_queue".into(),
            "timeouts".into(),
        ],
    );
    for name in ["uncoded", "mds", "s2c2"] {
        let r = run_service(mode(name), base_rate, jobs, 1);
        assert_eq!(r.completed(), jobs, "{name} must serve every job");
        policies.push_row(
            name,
            vec![
                r.latency_percentile(50.0),
                r.latency_percentile(95.0),
                r.latency_percentile(99.0),
                r.mean_latency(),
                r.throughput(),
                r.utilization(),
                r.mean_queue_depth(),
                r.timeouts as f64,
            ],
        );
    }

    let mut load = Table::new(
        "Serve — p99 sojourn latency vs offered load".to_string(),
        vec!["uncoded_p99".into(), "mds_p99".into(), "s2c2_p99".into()],
    );
    for mult in [0.5, 1.0, 2.0] {
        let rate = base_rate * mult;
        let row: Vec<f64> = ["uncoded", "mds", "s2c2"]
            .iter()
            .map(|name| run_service(mode(name), rate, jobs, 1).latency_percentile(99.0))
            .collect();
        load.push_row(format!("load_{mult}x"), row);
    }

    let mut threads = Table::new(
        "Serve — S²C² with parallel worker matvec (s2c2_linalg::parallel)".to_string(),
        vec![
            "p50_latency".into(),
            "p99_latency".into(),
            "mean_latency".into(),
            "throughput".into(),
        ],
    );
    for t in [1usize, 4] {
        let r = run_service(mode("s2c2"), base_rate, jobs, t);
        threads.push_row(
            format!("s2c2[{t}t]"),
            vec![
                r.latency_percentile(50.0),
                r.latency_percentile(99.0),
                r.mean_latency(),
                r.throughput(),
            ],
        );
    }

    ServeOutput {
        policies,
        load,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2c2_beats_conventional_p99_at_same_load() {
        let out = run(Scale::Quick);
        let s2c2 = out.policies.value("s2c2", "p99_latency");
        let mds = out.policies.value("mds", "p99_latency");
        let uncoded = out.policies.value("uncoded", "p99_latency");
        assert!(
            s2c2 < mds,
            "shared-cluster s2c2 p99 {s2c2} must beat conventional mds {mds}"
        );
        assert!(
            mds < uncoded,
            "coded mds p99 {mds} must beat uncoded {uncoded} under stragglers"
        );
    }

    #[test]
    fn parallel_workers_improve_the_service() {
        let out = run(Scale::Quick);
        let seq = out.threads.value("s2c2[1t]", "mean_latency");
        let par = out.threads.value("s2c2[4t]", "mean_latency");
        assert!(
            par < seq,
            "4-thread workers ({par}) must beat 1-thread ({seq})"
        );
    }

    #[test]
    fn load_sweep_is_monotone_for_s2c2() {
        let out = run(Scale::Quick);
        let low = out.load.value("load_0.5x", "s2c2_p99");
        let high = out.load.value("load_2x", "s2c2_p99");
        assert!(
            low <= high,
            "more load cannot shrink the tail: {low} vs {high}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a.policies, b.policies);
        assert_eq!(a.load, b.load);
        assert_eq!(a.threads, b.threads);
    }
}
