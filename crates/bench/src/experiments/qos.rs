//! The `qos` experiment: tenant-weighted capacity shares and
//! deadline-aware admission on the shared service engine.
//!
//! Two tables come out:
//!
//! * **weights** — two tenants submit *identical* saturating job
//!   streams, but tenant 1's jobs carry capacity weight 2. Under
//!   weighted fair-share admission and weighted S²C² capacity
//!   splitting, tenant 1 must achieve ≈ 2× tenant 0's work share while
//!   both contend (measured censored at the earliest tenant drain, so
//!   the eventual full drain cannot mask the enforcement).
//! * **deadline** — the same deadline-carrying Poisson load served
//!   under FIFO admission, earliest-deadline admission, and
//!   earliest-deadline plus infeasibility rejection. EDF lifts the
//!   on-time ratio at identical offered load by spending queueing slack
//!   where the SLOs are loose instead of where they are tight.
//!
//! Everything is seeded: reruns are bit-identical.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::prelude::*;
use s2c2_serve::QueuePolicy;

/// Pool size (shared with the serve experiment's scenario).
pub const POOL: usize = 16;
/// Injected 5×-slow stragglers.
pub const STRAGGLERS: usize = 3;
/// Workload seed.
pub const SEED: u64 = 0x0905;

/// The experiment's tables.
#[derive(Debug, Clone)]
pub struct QosOutput {
    /// Per-tenant achieved vs entitled share under saturation.
    pub weights: Table,
    /// On-time ratio per admission policy at the same offered load.
    pub deadline: Table,
}

/// Runs the weighted-tenant scenario and returns the service report.
///
/// # Panics
///
/// Panics if the engine rejects the configuration or the run stalls.
#[must_use]
pub fn run_weighted(jobs_per_tenant: usize) -> ServiceReport {
    let pool = common::controlled_cluster(POOL, STRAGGLERS, SEED);
    // Identical interleaved streams: same preset, same arrival instants,
    // alternating tenants; only the weight differs.
    let mut arrivals = Vec::with_capacity(2 * jobs_per_tenant);
    for i in 0..(2 * jobs_per_tenant) as u64 {
        let tenant = (i % 2) as u32;
        let weight = if tenant == 1 { 2.0 } else { 1.0 };
        arrivals.push((
            0.01 * i as f64,
            JobPreset::medium()
                .with_weight(weight)
                .instantiate(i, tenant, POOL),
        ));
    }
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.policy = QueuePolicy::WeightedFairShare;
    // Two residency slots: both tenants stay resident and contend for
    // capacity the whole run — the regime weighted shares are about.
    cfg.max_resident = 2;
    ServiceEngine::new(pool, cfg)
        .expect("qos weighted configuration is valid")
        .run(&arrivals)
        .expect("qos weighted run completes")
}

/// Builds the deadline-carrying workload of the admission scenario.
#[must_use]
pub fn deadline_workload(jobs: usize) -> Vec<(f64, JobSpec)> {
    // Deadlines proportional to each size class's unloaded service
    // time: tight for interactive jobs, loose for batch — the shape
    // that makes admission *order* matter under queueing.
    let mix = vec![
        (JobPreset::small().with_deadline(1.5), 5.0),
        (JobPreset::medium().with_deadline(5.0), 3.0),
        (JobPreset::large().with_deadline(20.0), 1.0),
    ];
    generate_workload(
        &ArrivalPattern::Poisson { rate: 4.0 },
        &mix,
        jobs,
        4,
        POOL,
        SEED,
    )
}

/// Runs the deadline scenario under one admission policy.
///
/// # Panics
///
/// Panics if the engine rejects the configuration or the run stalls.
#[must_use]
pub fn run_deadline(jobs: usize, policy: QueuePolicy, reject: bool) -> ServiceReport {
    let pool = common::controlled_cluster(POOL, STRAGGLERS, SEED);
    let workload = deadline_workload(jobs);
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.policy = policy;
    cfg.reject_infeasible_deadlines = reject;
    ServiceEngine::new(pool, cfg)
        .expect("qos deadline configuration is valid")
        .run(&workload)
        .expect("qos deadline run completes")
}

/// Runs the qos experiment.
#[must_use]
pub fn run(scale: Scale) -> QosOutput {
    let per_tenant = scale.pick(10, 24);
    let weighted = run_weighted(per_tenant);
    let mut weights = Table::new(
        format!(
            "QoS — weighted tenants: 2 identical streams of {per_tenant} medium jobs, \
             tenant 1 at weight 2, {POOL}-worker pool ({STRAGGLERS} stragglers)"
        ),
        vec![
            "weight".into(),
            "entitled_share".into(),
            "achieved_share".into(),
            "p50_latency".into(),
            "p99_latency".into(),
            "completed".into(),
        ],
    );
    for t in weighted.tenant_summaries() {
        // Every job of a tenant carries the same weight in this
        // scenario; read it back from the records rather than
        // restating the construction rule.
        let weight = weighted
            .jobs
            .iter()
            .find(|j| j.tenant == t.tenant)
            .map_or(1.0, |j| j.weight);
        weights.push_row(
            format!("tenant{}", t.tenant),
            vec![
                weight,
                t.entitled_share,
                t.achieved_share,
                t.p50_latency,
                t.p99_latency,
                t.completed as f64,
            ],
        );
    }
    assert!(
        weighted.utilization() <= 1.0,
        "utilization must stay within [0, 1]"
    );

    let jobs = scale.pick(40, 80);
    let mut deadline = Table::new(
        format!(
            "QoS — deadline admission: {jobs} SLO-carrying jobs, Poisson λ = 4/s, \
             same offered load per policy"
        ),
        vec![
            "on_time_ratio".into(),
            "p50_latency".into(),
            "p99_latency".into(),
            "completed".into(),
            "rejected".into(),
            "utilization".into(),
        ],
    );
    for (label, policy, reject) in [
        ("fifo", QueuePolicy::Fifo, false),
        ("edf", QueuePolicy::EarliestDeadline, false),
        ("edf+reject", QueuePolicy::EarliestDeadline, true),
    ] {
        let r = run_deadline(jobs, policy, reject);
        assert_eq!(
            r.completed() + r.failed(),
            jobs,
            "{label} must resolve every job"
        );
        assert!(r.utilization() <= 1.0, "{label} utilization out of range");
        deadline.push_row(
            label,
            vec![
                r.on_time_ratio(),
                r.latency_percentile(50.0),
                r.latency_percentile(99.0),
                r.completed() as f64,
                r.rejected() as f64,
                r.utilization(),
            ],
        );
    }

    QosOutput { weights, deadline }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_2_tenant_achieves_proportional_share() {
        let out = run(Scale::Quick);
        let t0 = out.weights.value("tenant0", "achieved_share");
        let t1 = out.weights.value("tenant1", "achieved_share");
        let ratio = t1 / t0;
        assert!(
            ratio >= 1.8,
            "weight-2 tenant achieved {ratio:.2}x the weight-1 share (need >= 1.8x)"
        );
        // Entitlements are exact by construction.
        assert!((out.weights.value("tenant1", "entitled_share") - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn edf_beats_fifo_on_time_at_same_load() {
        let out = run(Scale::Quick);
        let fifo = out.deadline.value("fifo", "on_time_ratio");
        let edf = out.deadline.value("edf", "on_time_ratio");
        assert!(
            edf > fifo,
            "EDF on-time ratio {edf:.3} must strictly beat FIFO {fifo:.3}"
        );
    }

    #[test]
    fn utilization_bounded_across_policies() {
        let out = run(Scale::Quick);
        for row in ["fifo", "edf", "edf+reject"] {
            let u = out.deadline.value(row, "utilization");
            assert!((0.0..=1.0).contains(&u), "{row} utilization {u}");
        }
    }

    /// Regression pin for the engine-module split: the full-scale qos
    /// headline numbers recorded before the refactor (PR 3's
    /// `figures -- qos`) must be preserved exactly — the split, the
    /// backend seam, and the new QoS knobs default to byte-identical
    /// behavior.
    #[test]
    fn full_scale_headlines_preserved_across_refactors() {
        let out = run(Scale::Full);
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        assert!(close(
            out.weights.value("tenant0", "achieved_share"),
            0.3142857142857143
        ));
        assert!(close(
            out.weights.value("tenant1", "achieved_share"),
            0.6857142857142857
        ));
        assert!(close(
            out.weights.value("tenant0", "p50_latency"),
            14.897551891076214
        ));
        assert!(close(
            out.weights.value("tenant1", "p50_latency"),
            7.170875036551426
        ));
        assert!(close(out.deadline.value("fifo", "on_time_ratio"), 0.25));
        assert!(close(out.deadline.value("edf", "on_time_ratio"), 0.9875));
        assert!(close(
            out.deadline.value("edf+reject", "on_time_ratio"),
            0.9875
        ));
        assert!(close(
            out.deadline.value("fifo", "p99_latency"),
            13.533762638708323
        ));
        assert!(close(
            out.deadline.value("edf", "p99_latency"),
            18.915093529112106
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.deadline, b.deadline);
    }
}
