//! The `batch` experiment: coalescing small jobs onto shared
//! encode/dispatch rounds at high arrival rate.
//!
//! S²C²'s win over fixed MDS comes from amortizing coding work across
//! the computation it protects; a stream of *small* jobs gives that win
//! back, because every job pays its own dispatch round-trip, decode,
//! and residency slot regardless of how little compute it carries. The
//! rateless-coding and straggler-exploitation lines of related work
//! make the same observation: at high arrival rates, per-round fixed
//! costs — not per-row compute — dominate.
//!
//! This experiment offers an identical high-λ Poisson stream of
//! small-preset jobs (one shared model matrix, the regime the encode
//! cache and batch key target) to the serve engine three times:
//!
//! * **unbatched** — [`BatchPolicy::Off`]: the engine exactly as it was;
//! * **batch-size** — [`BatchPolicy::SizeThreshold`]: queued mates ride
//!   the policy pick opportunistically, up to 4 per round;
//! * **batch-window** — [`BatchPolicy::TimeWindow`]: picks are
//!   additionally held briefly so mates can accumulate at moderate
//!   queue depths.
//!
//! The cluster model carries realistic per-message latency (the LAN
//! link the paper's controlled cluster uses) so the fixed cost being
//! amortized is visible: batching `m` jobs pays one input transfer, one
//! reply, and one decode LU factorization per round instead of `m`.
//! The table shows sustained throughput and p99 sojourn; the batched
//! rows must beat the unbatched engine on both (asserted in tests and
//! pinned in `BENCH_BASELINE.json`).

use crate::experiments::Scale;
use crate::report::Table;
use s2c2_cluster::{ClusterSpec, CommModel, ComputeModel};
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::prelude::*;

/// Pool size.
pub const POOL: usize = 8;
/// Injected 5×-slow straggler ids.
pub const STRAGGLERS: &[usize] = &[2];
/// Workload seed.
pub const SEED: u64 = 0x0BA7C;
/// Offered load, in jobs per second — chosen above the unbatched
/// engine's sustainable rate and below the batched one's, so the
/// amortization shows up as both throughput and tail latency.
pub const ARRIVAL_RATE: f64 = 200.0;

/// The batched-serving cluster: the paper's controlled straggler setup
/// over a LAN-latency link (2 ms per message) and a worker throughput
/// that leaves small-job rounds fixed-cost-dominated — the regime the
/// batching layer exists for. (`compute_bound()` would hide the fixed
/// costs behind near-zero latency and show only the slot-multiplexing
/// effect.)
#[must_use]
pub fn cluster() -> ClusterSpec {
    ClusterSpec::builder(POOL)
        .comm(CommModel::new(1e9, 2e-3))
        .compute(ComputeModel::new(2e6))
        .decode_flops_per_sec(1e8)
        .seed(SEED)
        .straggler_slowdown(5.0)
        .stragglers(STRAGGLERS, 0.2)
        .build()
}

/// The high-λ small-job stream: every job draws the small preset, so
/// the whole stream shares one model matrix and one batch key.
#[must_use]
pub fn small_job_workload(jobs: usize) -> Vec<(f64, JobSpec)> {
    generate_workload(
        &ArrivalPattern::Poisson { rate: ARRIVAL_RATE },
        &[(JobPreset::small(), 1.0)],
        jobs,
        2,
        POOL,
        SEED,
    )
}

/// Runs the canonical batch scenario under one batching policy.
///
/// # Panics
///
/// Panics if the engine rejects the configuration or the run stalls —
/// both must hold on every commit.
#[must_use]
pub fn run_policy(batch: BatchPolicy, jobs: usize) -> ServiceReport {
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.batch = batch;
    ServiceEngine::new(cluster(), cfg)
        .expect("batch configuration is valid")
        .run(&small_job_workload(jobs))
        .expect("batch run completes")
}

/// The three policies the table compares, with row labels.
#[must_use]
pub fn policies() -> Vec<(&'static str, BatchPolicy)> {
    vec![
        ("unbatched", BatchPolicy::Off),
        ("batch-size", BatchPolicy::SizeThreshold { max_batch: 4 }),
        (
            "batch-window",
            BatchPolicy::TimeWindow {
                window: 0.05,
                max_batch: 4,
            },
        ),
    ]
}

/// Runs the batch experiment.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let jobs = scale.pick(120, 400);
    let mut table = Table::new(
        format!(
            "Batching — {jobs} small jobs at λ = {ARRIVAL_RATE}/s on a {POOL}-worker \
             LAN pool ({} straggler): one encode/dispatch round per batch",
            STRAGGLERS.len()
        ),
        vec![
            "throughput".into(),
            "p50_latency".into(),
            "p99_latency".into(),
            "completed".into(),
            "batch_rounds".into(),
            "mean_batch".into(),
            "utilization".into(),
        ],
    );
    for (label, policy) in policies() {
        let r = run_policy(policy, jobs);
        assert_eq!(r.completed(), jobs, "{label} must serve every job");
        assert!(
            (0.0..=1.0).contains(&r.utilization()),
            "{label} utilization out of range"
        );
        table.push_row(
            label,
            vec![
                r.throughput(),
                r.latency_percentile(50.0),
                r.latency_percentile(99.0),
                r.completed() as f64,
                r.batch_rounds as f64,
                r.mean_batch_size(),
                r.utilization(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_beats_unbatched_on_throughput_and_tail() {
        // The acceptance bar for the whole batching layer: at high λ on
        // the small-job preset, both batched modes must sustain more
        // throughput *and* a lower p99 sojourn than the unbatched
        // engine.
        let t = run(Scale::Quick);
        let off_tp = t.value("unbatched", "throughput");
        let off_p99 = t.value("unbatched", "p99_latency");
        for row in ["batch-size", "batch-window"] {
            assert!(
                t.value(row, "throughput") > off_tp,
                "{row} throughput {} must beat unbatched {off_tp}",
                t.value(row, "throughput")
            );
            assert!(
                t.value(row, "p99_latency") < off_p99,
                "{row} p99 {} must beat unbatched {off_p99}",
                t.value(row, "p99_latency")
            );
        }
    }

    #[test]
    fn batches_actually_form() {
        let t = run(Scale::Quick);
        assert_eq!(t.value("unbatched", "batch_rounds"), 0.0);
        assert_eq!(t.value("unbatched", "mean_batch"), 0.0);
        for row in ["batch-size", "batch-window"] {
            assert!(t.value(row, "batch_rounds") > 0.0, "{row} must batch");
            let mean = t.value(row, "mean_batch");
            assert!(
                mean > 1.0 && mean <= 4.0 + 1e-12,
                "{row} mean batch size {mean} outside (1, 4]"
            );
        }
    }

    #[test]
    fn every_policy_serves_the_same_job_set() {
        let jobs = 60;
        let base: Vec<u64> = {
            let mut ids: Vec<u64> = run_policy(BatchPolicy::Off, jobs)
                .jobs
                .iter()
                .filter(|j| !j.failed)
                .map(|j| j.id)
                .collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(base.len(), jobs);
        for (label, policy) in policies() {
            let mut ids: Vec<u64> = run_policy(policy, jobs)
                .jobs
                .iter()
                .filter(|j| !j.failed)
                .map(|j| j.id)
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, base, "{label} must complete the identical job set");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a, b);
    }
}
