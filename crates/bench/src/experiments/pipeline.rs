//! The `pipeline` experiment: cross-round pipelined serving.
//!
//! Sweeps the in-flight window depth ∈ {1, 2, 4} over the calm and
//! volatile cloud presets at a fixed arrival rate, on an
//! iteration-heavy job mix. At depth 1 every round is a hard barrier:
//! one straggled round stalls the whole job. At depth ≥ 2 fast workers
//! stream ahead into later rounds while a straggled round is re-served,
//! so the per-round stall is absorbed as pipeline depth — the headline
//! number is p99 sojourn and total stall time vs depth at the same λ.
//!
//! Everything tabulated is virtual-clock data, so the table is
//! byte-deterministic across reruns and machines. Wall-clock timings —
//! where the scratch-pool reuse shows up as an allocation drop — go to
//! `BENCH_PIPELINE.json` only (written at full scale, committed at the
//! repo root), never to stdout, which keeps the determinism smoke's
//! stdout diff meaningful.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::prelude::*;
use s2c2_telemetry::export;
use s2c2_trace::CloudTraceConfig;
use std::path::Path;
use std::time::Instant;

/// Pool size: small enough that one slowed worker is a meaningful
/// fraction of capacity, the regime where pipelining pays.
pub const POOL: usize = 8;
/// Workload seed.
pub const SEED: u64 = 0x0909;
/// Fixed arrival rate (jobs/s) across every depth — the sweep varies
/// only the window depth, never the offered load.
pub const ARRIVAL_RATE: f64 = 0.6;
/// Window depths swept.
pub const DEPTHS: &[usize] = &[1, 2, 4];

/// One depth's measurements on one preset.
#[derive(Debug, Clone)]
pub struct DepthRow {
    /// Row label (`calm/depth-1`, …).
    pub label: String,
    /// Cloud preset name (`calm` / `volatile`).
    pub preset: &'static str,
    /// Window depth.
    pub depth: usize,
    /// Median job sojourn latency (virtual seconds).
    pub p50_latency: f64,
    /// 99th-percentile job sojourn latency (virtual seconds).
    pub p99_latency: f64,
    /// Total time completed rounds sat parked awaiting in-order commit.
    pub stall_s: f64,
    /// Rounds that completed out of order and parked.
    pub parked: u64,
    /// Virtual seconds during which ≥ 2 rounds of one job overlapped.
    pub overlap_s: f64,
    /// Completed jobs per second of makespan.
    pub throughput: f64,
    /// Scratch buffers recycled instead of freshly allocated.
    pub scratch_reuses: u64,
    /// Wall-clock milliseconds for the run (excluded from stdout).
    pub wall_ms: f64,
}

/// The experiment's outputs: the deterministic table plus the raw rows
/// (which carry the wall-clock timings for `BENCH_PIPELINE.json`).
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Virtual-clock depth-sweep table (stdout/CSV surface).
    pub table: Table,
    /// Per-run rows including wall-clock milliseconds.
    pub rows: Vec<DepthRow>,
    /// Jobs served per run.
    pub jobs: usize,
}

/// The iteration-heavy workload: pipelining overlaps rounds *within* a
/// job, so the win scales with iterations per job.
#[must_use]
pub fn workload(jobs: usize) -> Vec<(f64, JobSpec)> {
    let mix = vec![(JobPreset::medium(), 3.0), (JobPreset::large(), 1.0)];
    generate_workload(
        &ArrivalPattern::Poisson { rate: ARRIVAL_RATE },
        &mix,
        jobs,
        2,
        POOL,
        SEED,
    )
}

/// Runs one depth on one preset.
///
/// # Panics
///
/// Panics if the engine rejects the configuration or the run stalls —
/// the sweep is over committed presets that must always serve.
#[must_use]
pub fn run_depth(
    jobs: usize,
    preset: &CloudTraceConfig,
    depth: usize,
    telemetry: bool,
) -> ServiceReport {
    let pool = common::cloud_cluster(POOL, preset, SEED);
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.pipeline = PipelinePolicy::Depth(depth);
    cfg.telemetry = telemetry;
    ServiceEngine::new(pool, cfg)
        .expect("pipeline configuration is valid")
        .run(&workload(jobs))
        .expect("pipeline run completes")
}

/// Runs the pipeline experiment.
///
/// # Panics
///
/// Panics if any run drops a job, or if depth 2 fails to improve the
/// p99 sojourn over depth 1 on the volatile preset — the experiment's
/// headline claim, enforced rather than eyeballed.
#[must_use]
pub fn run(scale: Scale) -> PipelineOutput {
    let jobs = scale.pick(10, 28);
    let mut table = Table::new(
        format!(
            "PIPELINE — window depth sweep, {jobs} iteration-heavy jobs at \
             λ={ARRIVAL_RATE}/s, {POOL}-worker cloud pool"
        ),
        vec![
            "p50_sojourn".into(),
            "p99_sojourn".into(),
            "stall_s".into(),
            "parked".into(),
            "overlap_s".into(),
            "throughput".into(),
            "scratch_reuse".into(),
        ],
    );
    let mut rows = Vec::new();
    for (preset_name, preset) in [
        ("calm", CloudTraceConfig::calm()),
        ("volatile", CloudTraceConfig::volatile()),
    ] {
        for &depth in DEPTHS {
            let started = Instant::now();
            let r = run_depth(jobs, &preset, depth, false);
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                r.completed(),
                jobs,
                "{preset_name}/depth-{depth}: every job must complete"
            );
            let row = DepthRow {
                label: format!("{preset_name}/depth-{depth}"),
                preset: preset_name,
                depth,
                p50_latency: r.latency_percentile(50.0),
                p99_latency: r.latency_percentile(99.0),
                stall_s: r.pipeline_stall_time,
                parked: r.rounds_parked,
                overlap_s: r.pipeline_overlap_time,
                throughput: r.throughput(),
                scratch_reuses: r.scratch_reuses,
                wall_ms,
            };
            table.push_row(
                row.label.clone(),
                vec![
                    row.p50_latency,
                    row.p99_latency,
                    row.stall_s,
                    row.parked as f64,
                    row.overlap_s,
                    row.throughput,
                    row.scratch_reuses as f64,
                ],
            );
            rows.push(row);
        }
    }
    let p99 = |label: &str| table.value(label, "p99_sojourn");
    assert!(
        p99("volatile/depth-2") <= p99("volatile/depth-1"),
        "depth 2 must not worsen the volatile p99 sojourn: {} vs {}",
        p99("volatile/depth-2"),
        p99("volatile/depth-1"),
    );
    PipelineOutput { table, rows, jobs }
}

/// Renders the depth sweep (including wall-clock) as the
/// `BENCH_PIPELINE.json` document.
#[must_use]
pub fn bench_json(out: &PipelineOutput) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"workers\": {POOL},\n"));
    s.push_str(&format!("  \"jobs\": {},\n", out.jobs));
    s.push_str(&format!("  \"arrival_rate\": {ARRIVAL_RATE},\n"));
    s.push_str("  \"sweep\": [\n");
    for (i, r) in out.rows.iter().enumerate() {
        let sep = if i + 1 == out.rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"preset\": \"{}\", \"depth\": {}, \"p50_latency\": {:.6}, \
             \"p99_latency\": {:.6}, \"stall_s\": {:.6}, \"parked\": {}, \
             \"overlap_s\": {:.6}, \"throughput\": {:.6}, \"scratch_reuses\": {}, \
             \"wall_ms\": {:.3}}}{sep}\n",
            r.preset,
            r.depth,
            r.p50_latency,
            r.p99_latency,
            r.stall_s,
            r.parked,
            r.overlap_s,
            r.throughput,
            r.scratch_reuses,
            r.wall_ms,
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes the exporter artifact of one traced depth-2 volatile run into
/// `dir` — the JSONL stream exercises the pipeline trace events
/// (`RoundParked` / `RoundRetired` / `PipelineStall`) end to end and is
/// part of the deterministic surface CI diffs across reruns.
///
/// # Errors
///
/// Propagates I/O failures from writing the artifact file.
///
/// # Panics
///
/// Panics if the traced run completes without telemetry attached.
pub fn write_exports(scale: Scale, dir: &Path) -> std::io::Result<()> {
    let jobs = scale.pick(10, 28);
    let r = run_depth(jobs, &CloudTraceConfig::volatile(), 2, true);
    let tel = r
        .telemetry
        .as_ref()
        .expect("telemetry was enabled for this run");
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("pipeline_events.jsonl"),
        export::jsonl(tel.trace.events()),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn deterministic_across_runs() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a.table, b.table, "same seed must reproduce the table");
    }

    #[test]
    fn depth_two_beats_depth_one_on_volatile_p99() {
        let out = run(Scale::Quick);
        let p99 = |label: &str| out.table.value(label, "p99_sojourn");
        assert!(
            p99("volatile/depth-2") <= p99("volatile/depth-1"),
            "pipelining must absorb volatile stalls: {} vs {}",
            p99("volatile/depth-2"),
            p99("volatile/depth-1"),
        );
    }

    #[test]
    fn deeper_windows_overlap_rounds() {
        let out = run(Scale::Quick);
        for preset in ["calm", "volatile"] {
            assert_eq!(
                out.table.value(&format!("{preset}/depth-1"), "overlap_s"),
                0.0,
                "{preset}: a depth-1 window cannot overlap rounds"
            );
            assert!(
                out.table.value(&format!("{preset}/depth-2"), "overlap_s") > 0.0,
                "{preset}: depth 2 must overlap successive rounds"
            );
        }
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let out = run(Scale::Quick);
        for (label, _) in &out.table.rows {
            assert!(
                out.table.value(label, "scratch_reuse") > 0.0,
                "{label}: multi-iteration jobs must recycle scratch buffers"
            );
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let out = run(Scale::Quick);
        let doc = bench_json(&out);
        export::validate_json(&doc).expect("BENCH_PIPELINE.json must be valid JSON");
        assert_eq!(doc.matches("\"depth\"").count(), DEPTHS.len() * 2);
    }

    #[test]
    fn committed_bench_file_keeps_the_headline_claim() {
        // The committed depth sweep must show depth 2 holding or beating
        // the depth-1 p99 on the volatile preset — the smoke that keeps
        // BENCH_PIPELINE.json honest without re-running the full sweep.
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_PIPELINE.json");
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("committed {} must be readable: {e}", path.display()));
        let mut volatile_p99 = Vec::new();
        for line in doc.lines() {
            let line = line.trim();
            if !line.contains("\"preset\": \"volatile\"") {
                continue;
            }
            let field = |key: &str| -> f64 {
                let at = line
                    .find(key)
                    .unwrap_or_else(|| panic!("row carries {key}"));
                let rest = &line[at + key.len()..];
                let end = rest
                    .find([',', '}'])
                    .unwrap_or_else(|| panic!("{key} value is delimited"));
                rest[..end].trim().parse().expect("numeric field")
            };
            volatile_p99.push((field("\"depth\":") as usize, field("\"p99_latency\":")));
        }
        let p99_at = |d: usize| {
            volatile_p99
                .iter()
                .find(|(depth, _)| *depth == d)
                .unwrap_or_else(|| panic!("committed sweep has a volatile depth-{d} row"))
                .1
        };
        assert!(
            p99_at(2) <= p99_at(1),
            "committed sweep must show depth 2 ≤ depth 1 on volatile p99: {} vs {}",
            p99_at(2),
            p99_at(1)
        );
    }

    #[test]
    fn jsonl_export_is_deterministic() {
        let a = run_depth(6, &CloudTraceConfig::volatile(), 2, true);
        let b = run_depth(6, &CloudTraceConfig::volatile(), 2, true);
        let tel = |r: &ServiceReport| {
            export::jsonl(
                r.telemetry
                    .as_ref()
                    .expect("telemetry enabled")
                    .trace
                    .events(),
            )
        };
        assert_eq!(
            tel(&a),
            tel(&b),
            "same seed must export byte-identical JSONL"
        );
    }
}
