//! Figure 1 — the motivation experiment: logistic regression on 12
//! workers under 0–3 stragglers, comparing uncoded 3-replication against
//! optimistic (12,10) and conservative (12,9) MDS coding.
//!
//! Expected shape: replication degrades sharply at 3 stragglers (= the
//! replication factor); (12,10) is flat to 2 stragglers then jumps ~5×;
//! (12,9) is flat throughout but pays a higher healthy-cluster baseline.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::logreg::DistributedLogReg;

/// Runs the experiment; values are total LR latencies normalized to
/// uncoded-3-replication with zero stragglers.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let rows = scale.pick(480, 2400);
    let cols = scale.pick(48, 240);
    let iters = scale.pick(5, 15);
    let data = gisette_like(rows, cols, 0xF1);

    let schemes: Vec<(&str, MdsParams, StrategyKind)> = vec![
        (
            "uncoded-3rep",
            MdsParams::new(12, 12),
            StrategyKind::Replication,
        ),
        ("mds(12,10)", MdsParams::new(12, 10), StrategyKind::MdsCoded),
        ("mds(12,9)", MdsParams::new(12, 9), StrategyKind::MdsCoded),
    ];

    let mut table = Table::new(
        "Fig 1 — LR latency vs stragglers (normalized to uncoded-3rep @ 0)",
        schemes.iter().map(|(n, _, _)| (*n).to_string()).collect(),
    );

    let mut baseline = None;
    for stragglers in 0..=3usize {
        let mut values = Vec::with_capacity(schemes.len());
        for (si, (_, params, kind)) in schemes.iter().enumerate() {
            let cluster = common::controlled_cluster(12, stragglers, 0xF1 + si as u64);
            let cfg = common::exec(*params, cluster, *kind, PredictorSource::LastValue, 10);
            let mut lr = DistributedLogReg::new(&data, &cfg, 0.5, 1e-4)
                .expect("experiment configuration is valid");
            for _ in 0..iters {
                lr.step().expect("iteration succeeds");
            }
            values.push(lr.total_latency());
        }
        if baseline.is_none() {
            baseline = Some(values[0]);
        }
        let base = baseline.expect("set on first row");
        table.push_row(
            format!("{stragglers} stragglers"),
            values.iter().map(|v| v / base).collect(),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Quick);
        // (12,10) flat through 2 stragglers, then blows up.
        let m10_0 = t.value("0 stragglers", "mds(12,10)");
        let m10_2 = t.value("2 stragglers", "mds(12,10)");
        let m10_3 = t.value("3 stragglers", "mds(12,10)");
        assert!(
            (m10_2 / m10_0 - 1.0).abs() < 0.15,
            "flat to 2: {m10_0} vs {m10_2}"
        );
        assert!(m10_3 / m10_0 > 2.5, "jump at 3: {m10_3} vs {m10_0}");
        // (12,9) stays flat through 3 stragglers.
        let m9_0 = t.value("0 stragglers", "mds(12,9)");
        let m9_3 = t.value("3 stragglers", "mds(12,9)");
        assert!(
            (m9_3 / m9_0 - 1.0).abs() < 0.15,
            "conservative flat: {m9_0} vs {m9_3}"
        );
        // Replication degrades with 3 stragglers.
        let r0 = t.value("0 stragglers", "uncoded-3rep");
        let r3 = t.value("3 stragglers", "uncoded-3rep");
        assert!(r3 / r0 > 1.3, "replication degrades: {r0} vs {r3}");
    }
}
