//! Figure 6 — logistic regression on the controlled cluster: 0–6
//! stragglers × five strategies.
//!
//! Expected shape (all normalized to replication @ 0 stragglers):
//! replication degrades sharply past 2 stragglers; (12,10)-MDS flat to 2
//! then ~5×; (12,6)-MDS flat at ~2× baseline; basic S²C² tracks
//! `12/(12−s)`; general S²C² (knowing exact speeds) is lowest everywhere.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::logreg::DistributedLogReg;

/// One column of the figure.
struct Scheme {
    label: &'static str,
    params: MdsParams,
    kind: StrategyKind,
    predictor: PredictorSource,
}

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme {
            label: "uncoded-3rep+spec",
            params: MdsParams::new(12, 12),
            kind: StrategyKind::Replication,
            predictor: PredictorSource::LastValue,
        },
        Scheme {
            label: "mds(12,10)",
            params: MdsParams::new(12, 10),
            kind: StrategyKind::MdsCoded,
            predictor: PredictorSource::LastValue,
        },
        Scheme {
            label: "mds(12,6)",
            params: MdsParams::new(12, 6),
            kind: StrategyKind::MdsCoded,
            predictor: PredictorSource::LastValue,
        },
        Scheme {
            label: "s2c2-basic(12,6)",
            params: MdsParams::new(12, 6),
            kind: StrategyKind::S2c2Basic,
            predictor: PredictorSource::LastValue,
        },
        Scheme {
            label: "s2c2-general(12,6)",
            params: MdsParams::new(12, 6),
            kind: StrategyKind::S2c2General,
            // "knowing the exact speeds" — the oracle variant of Fig 6.
            predictor: PredictorSource::Oracle,
        },
    ]
}

/// Runs the experiment over `workload(straggler_count, scheme) -> latency`.
fn sweep(scale: Scale, title: &str, mut total_latency: impl FnMut(usize, &Scheme) -> f64) -> Table {
    let schemes = schemes();
    let mut table = Table::new(title, schemes.iter().map(|s| s.label.to_string()).collect());
    let max_stragglers = scale.pick(4, 6);
    let mut baseline = None;
    for stragglers in 0..=max_stragglers {
        let values: Vec<f64> = schemes
            .iter()
            .map(|s| total_latency(stragglers, s))
            .collect();
        if baseline.is_none() {
            baseline = Some(values[0]);
        }
        let base = baseline.expect("set on first row");
        table.push_row(
            format!("{stragglers} stragglers"),
            values.iter().map(|v| v / base).collect(),
        );
    }
    table
}

/// Runs Figure 6 (logistic regression).
#[must_use]
pub fn run(scale: Scale) -> Table {
    let rows = scale.pick(480, 2400);
    let cols = scale.pick(48, 240);
    let iters = scale.pick(5, 15);
    let data = gisette_like(rows, cols, 0xF6);
    sweep(
        scale,
        "Fig 6 — LR relative execution time (normalized to replication @ 0)",
        |stragglers, scheme| {
            let cluster = common::controlled_cluster(12, stragglers, 0xF6);
            let cfg = common::exec(
                scheme.params,
                cluster,
                scheme.kind,
                scheme.predictor.clone(),
                12,
            );
            let mut lr = DistributedLogReg::new(&data, &cfg, 0.5, 1e-4)
                .expect("experiment configuration is valid");
            for _ in 0..iters {
                lr.step().expect("iteration succeeds");
            }
            lr.total_latency()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Quick);
        // Conservative MDS flat but expensive.
        let c0 = t.value("0 stragglers", "mds(12,6)");
        let c4 = t.value("4 stragglers", "mds(12,6)");
        assert!((c4 / c0 - 1.0).abs() < 0.2, "mds(12,6) flat: {c0} vs {c4}");
        // S2C2 at 0 stragglers beats conservative MDS by ~10/6.
        let s0 = t.value("0 stragglers", "s2c2-general(12,6)");
        assert!(
            c0 / s0 > 1.3,
            "s2c2 squeezes the slack: mds {c0} vs s2c2 {s0}"
        );
        // S2C2 general <= basic everywhere.
        for row in ["0 stragglers", "2 stragglers", "4 stragglers"] {
            let b = t.value(row, "s2c2-basic(12,6)");
            let g = t.value(row, "s2c2-general(12,6)");
            assert!(g <= b * 1.05, "{row}: general {g} vs basic {b}");
        }
        // (12,10) collapses at 3+.
        let m0 = t.value("0 stragglers", "mds(12,10)");
        let m3 = t.value("3 stragglers", "mds(12,10)");
        assert!(m3 / m0 > 2.5, "mds(12,10) collapse: {m0} vs {m3}");
        // S2C2 keeps working at 4 stragglers, well below the collapsed
        // (12,10).
        let s4 = t.value("4 stragglers", "s2c2-general(12,6)");
        let m4 = t.value("4 stragglers", "mds(12,10)");
        assert!(s4 < m4 * 0.6, "s2c2 {s4} vs collapsed mds {m4}");
    }
}
