//! Figure 12 — S²C² on polynomial codes: Hessian `Aᵀ·diag(w)·A`, 12
//! nodes, 3×3 grid (any 9 of 12 decode), under low and high
//! mis-prediction environments.
//!
//! Expected shape: conventional ≈ 1.19× S²C² (low), ≈ 1.14× (high); the
//! gain is capped below the ideal (12−9)/9 = 33% because the
//! `diag(w)·B̃ᵢ` pass is not schedulable.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_coding::mds::MdsParams;
use s2c2_core::strategy::StrategyKind;
use s2c2_linalg::Vector;
use s2c2_trace::CloudTraceConfig;
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::exec::ExecConfig;
use s2c2_workloads::hessian::{DistributedHessian, PolyStrategyKind};

fn environment(name: &str, preset: &CloudTraceConfig, scale: Scale, seed: u64) -> Vec<f64> {
    let dim = scale.pick(72, 360);
    let iters = scale.pick(4, 15);
    let data = gisette_like(dim, dim, seed);
    let w = Vector::from_fn(dim, |i| 0.05 + 0.2 / (1.0 + i as f64 * 0.01));

    let mut latencies = Vec::with_capacity(2);
    for kind in [PolyStrategyKind::Conventional, PolyStrategyKind::S2c2] {
        let cluster = common::cloud_cluster(12, preset, seed);
        let cfg = ExecConfig::new(MdsParams::new(12, 9), cluster)
            .strategy(StrategyKind::S2c2General)
            .predictor(common::lstm_predictor(preset, seed))
            .chunks_per_worker(12);
        let mut hess = DistributedHessian::new(&data.features, &cfg, 3, kind)
            .expect("experiment configuration is valid");
        for _ in 0..2 {
            let _ = hess.compute(&w).expect("warmup iteration succeeds");
        }
        let mut total = 0.0;
        for _ in 0..iters {
            total += hess.compute(&w).expect("iteration succeeds").latency;
        }
        latencies.push(total);
    }
    let base = latencies[1]; // normalize to S2C2
    let _ = name;
    latencies.iter().map(|l| l / base).collect()
}

/// Runs Figure 12.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 12 — polynomial codes ± S2C2 (normalized to poly-s2c2)",
        vec!["conventional poly".into(), "poly with s2c2".into()],
    );
    table.push_row(
        "low mis-prediction",
        environment("low", &CloudTraceConfig::calm(), scale, 0xF12),
    );
    table.push_row(
        "high mis-prediction",
        environment("high", &CloudTraceConfig::volatile(), scale, 0xF13),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2c2_wins_but_gains_capped() {
        let t = run(Scale::Quick);
        for row in ["low mis-prediction", "high mis-prediction"] {
            let conv = t.value(row, "conventional poly");
            assert!(conv > 1.0, "{row}: conventional {conv} should trail s2c2");
        }
        // The n/ab cap only holds while at most n − ab nodes straggle at
        // once; the calm preset is built to stay inside that budget. The
        // volatile preset deliberately exceeds it (that is the paper's
        // motivation), so conventional can trail by more — bound it only
        // by the preset's worst slow/fast speed ratio.
        let calm = t.value("low mis-prediction", "conventional poly");
        assert!(
            calm < 12.0 / 9.0 + 0.05,
            "calm environment: gain {calm} cannot exceed the n/ab bound plus slack"
        );
        let volatile = t.value("high mis-prediction", "conventional poly");
        assert!(
            volatile < 5.0,
            "volatile environment: gain {volatile} exceeds the straggler speed ratio"
        );
    }
}
