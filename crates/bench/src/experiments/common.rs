//! Shared experiment plumbing.

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_predict::lstm::{train, LstmConfig, TrainedLstm};
use s2c2_trace::{CloudTraceConfig, TraceSet};
use s2c2_workloads::exec::ExecConfig;

/// The controlled-cluster (§7.1) spec: `n` workers, the first
/// `stragglers` of them 5× slow, everyone with up-to-20% jitter.
///
/// Straggler ids are spread (not clustered at 0) so replication's replica
/// sets are stressed the way random placement would be.
#[must_use]
pub fn controlled_cluster(n: usize, stragglers: usize, seed: u64) -> ClusterSpec {
    let ids: Vec<usize> = (0..stragglers).map(|i| (i * 5 + 2) % n).collect();
    let mut uniq = ids.clone();
    uniq.sort_unstable();
    uniq.dedup();
    // Fall back to sequential ids if the spread pattern collides.
    let ids = if uniq.len() == stragglers {
        ids
    } else {
        (0..stragglers).collect()
    };
    ClusterSpec::builder(n)
        .compute_bound()
        .seed(seed)
        .straggler_slowdown(5.0)
        .stragglers(&ids, 0.2)
        .build()
}

/// A cloud cluster (§7.2) under the given trace preset.
#[must_use]
pub fn cloud_cluster(n: usize, preset: &CloudTraceConfig, seed: u64) -> ClusterSpec {
    ClusterSpec::builder(n)
        .compute_bound()
        .seed(seed)
        .cloud(preset)
        .build()
}

/// Trains the paper's LSTM (1→4→1) on traces generated from `preset` and
/// returns a per-worker predictor source for deployment in S²C².
#[must_use]
pub fn lstm_predictor(preset: &CloudTraceConfig, seed: u64) -> PredictorSource {
    let traces = TraceSet::generate(preset, 20, 160, seed);
    let series: Vec<Vec<f64>> = traces
        .traces()
        .iter()
        .map(|t| t.samples().to_vec())
        .collect();
    let refs: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();
    let cfg = LstmConfig {
        epochs: 20,
        ..LstmConfig::default()
    };
    let model: TrainedLstm = train(&cfg, &refs);
    PredictorSource::Prototype(Box::new(model.online()))
}

/// Builds an `ExecConfig` for one experiment column.
#[must_use]
pub fn exec(
    params: MdsParams,
    cluster: ClusterSpec,
    strategy: StrategyKind,
    predictor: PredictorSource,
    chunks: usize,
) -> ExecConfig {
    ExecConfig::new(params, cluster)
        .strategy(strategy)
        .predictor(predictor)
        .chunks_per_worker(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlled_cluster_has_requested_stragglers() {
        let mut spec = controlled_cluster(12, 3, 1);
        let slow = spec
            .workers
            .iter_mut()
            .map(|m| m.speed_at(0))
            .filter(|&s| s < 0.5)
            .count();
        assert_eq!(slow, 3);
    }

    #[test]
    fn controlled_cluster_handles_max_stragglers() {
        for s in 0..=6 {
            let spec = controlled_cluster(12, s, 2);
            assert_eq!(spec.n(), 12);
        }
    }

    #[test]
    fn lstm_predictor_trains() {
        let p = lstm_predictor(&CloudTraceConfig::calm(), 3);
        assert!(matches!(p, PredictorSource::Prototype(_)));
    }
}
