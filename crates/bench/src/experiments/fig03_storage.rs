//! Figure 3 — effective per-node storage over 270 LR iterations:
//! "uncoded with perfect prediction" vs S²C² on (12,10)-MDS data.
//!
//! Expected shape: the uncoded working set grows toward a large fraction
//! of the whole matrix (the paper measures ~67%) while the coded layout
//! stays flat at 1/k = 10%.

use crate::experiments::Scale;
use crate::report::Table;
use s2c2_core::storage_model::simulate_storage;
use s2c2_trace::{BoxedSpeedModel, CloudTraceConfig};

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let iterations = scale.pick(60, 270);
    let rows = scale.pick(600, 2400);
    let preset = CloudTraceConfig::paper();
    let workers: Vec<BoxedSpeedModel> = (0..12)
        .map(|i| Box::new(preset.model_for_node(i, 0xF3)) as BoxedSpeedModel)
        .collect();
    let series = simulate_storage(workers, rows, 10, iterations);

    let mut table = Table::new(
        "Fig 3 — mean per-node storage fraction over LR iterations",
        vec!["uncoded (perfect prediction)".into(), "s2c2 (12,10)".into()],
    );
    let stride = (iterations / 27).max(1);
    for t in (0..iterations).step_by(stride) {
        table.push_row(
            format!("iter {t}"),
            vec![series.uncoded_fraction[t], series.coded_fraction[t]],
        );
    }
    // Always include the endpoint.
    table.push_row(
        format!("iter {}", iterations - 1),
        vec![
            series.uncoded_fraction[iterations - 1],
            series.coded_fraction[iterations - 1],
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoded_grows_coded_flat() {
        let t = run(Scale::Quick);
        let first = &t.rows[0].1;
        let last = &t.rows[t.rows.len() - 1].1;
        assert!(
            last[0] > first[0] * 1.5,
            "uncoded grows: {} -> {}",
            first[0],
            last[0]
        );
        assert!((last[1] - 0.1).abs() < 1e-9, "coded pinned at 1/k");
        assert!(last[0] > 2.0 * last[1], "uncoded ends well above coded");
    }
}
