//! The `trace` experiment: the telemetry layer over the e2e scenario.
//!
//! Re-runs the canonical recurring-matrix workload with tracing enabled
//! on every execution backend and reports what the telemetry layer saw:
//! trace-event volume, recovery-ladder rung counts, and the virtual
//! phase profile (dispatch / compute / collect / decode split of total
//! iteration time). Everything tabulated is virtual-clock data, so the
//! table — like the exported JSONL event log and Chrome trace timeline —
//! is byte-deterministic and backend-independent.
//!
//! The exporter artifacts land under `results/`:
//!
//! * `trace_events.jsonl` — one JSON object per trace event;
//! * `trace_chrome.json` — Chrome trace-event format (load in
//!   `chrome://tracing` or Perfetto) with one track per worker and one
//!   per tenant.

use crate::experiments::{common, e2e, Scale};
use crate::report::Table;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::prelude::*;
use s2c2_telemetry::{export, Telemetry};
use std::path::Path;

/// Runs the canonical e2e scenario with telemetry enabled.
///
/// # Panics
///
/// Panics if the engine rejects the configuration or the run fails —
/// the scenario is the committed e2e one, which must always serve.
#[must_use]
pub fn run_traced(backend: BackendKind, jobs: usize) -> ServiceReport {
    let pool = common::controlled_cluster(e2e::POOL, e2e::STRAGGLERS, e2e::SEED);
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.backend = backend;
    cfg.telemetry = true;
    ServiceEngine::new(pool, cfg)
        .expect("trace configuration is valid")
        .run(&e2e::trace_workload(jobs))
        .expect("trace run completes")
}

fn telemetry(report: &ServiceReport) -> &Telemetry {
    report
        .telemetry
        .as_ref()
        .expect("telemetry was enabled for this run")
}

/// Runs the trace experiment.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let jobs = scale.pick(10, 30);
    let mut table = Table::new(
        format!(
            "TRACE — telemetry over the {jobs}-job e2e scenario, \
             {}-worker pool ({} straggler)",
            e2e::POOL,
            e2e::STRAGGLERS
        ),
        vec![
            "trace_events".into(),
            "rung1_normal".into(),
            "rung2_degraded".into(),
            "rung3_redo".into(),
            "rung4_wait".into(),
            "rung5_restart".into(),
            "dispatch_s".into(),
            "compute_s".into(),
            "collect_s".into(),
            "decode_s".into(),
            "iter_total_s".into(),
        ],
    );
    for backend in [
        BackendKind::Sim,
        BackendKind::SimVerified,
        BackendKind::Threaded,
    ] {
        let r = run_traced(backend, jobs);
        let tel = telemetry(&r);
        let p = r.phase_virtual;
        let rungs = r.recovery_rung_counts;
        table.push_row(
            backend.to_string(),
            vec![
                tel.trace.len() as f64,
                rungs[0] as f64,
                rungs[1] as f64,
                rungs[2] as f64,
                rungs[3] as f64,
                rungs[4] as f64,
                p.dispatch,
                p.compute,
                p.collect,
                p.decode,
                r.iteration_time_total,
            ],
        );
    }
    table
}

/// Writes the exporter artifacts (JSONL event log, Chrome trace) of one
/// traced Sim run into `dir`.
///
/// # Errors
///
/// Propagates I/O failures from writing the artifact files.
pub fn write_exports(scale: Scale, dir: &Path) -> std::io::Result<()> {
    let jobs = scale.pick(10, 30);
    let r = run_traced(BackendKind::Sim, jobs);
    let events = telemetry(&r).trace.events();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("trace_events.jsonl"), export::jsonl(events))?;
    std::fs::write(dir.join("trace_chrome.json"), export::chrome_trace(events))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_backend_independent() {
        let jobs = 6;
        let sim = run_traced(BackendKind::Sim, jobs);
        let verified = run_traced(BackendKind::SimVerified, jobs);
        let threaded = run_traced(BackendKind::Threaded, jobs);
        let base = &telemetry(&sim).trace;
        assert!(!base.is_empty(), "the scenario must emit events");
        assert_eq!(
            base,
            &telemetry(&verified).trace,
            "sim-verified must replay the identical virtual event stream"
        );
        assert_eq!(
            base,
            &telemetry(&threaded).trace,
            "threaded must replay the identical virtual event stream"
        );
    }

    #[test]
    fn report_rung_counts_match_the_trace() {
        let r = run_traced(BackendKind::Sim, 8);
        assert_eq!(
            r.recovery_rung_counts,
            telemetry(&r).trace.rung_counts(),
            "aggregate counters and the event log must tell one story"
        );
        assert!(
            r.recovery_rung_counts[0] > 0,
            "normal starts must occur in the canonical scenario"
        );
    }

    #[test]
    fn virtual_phases_sum_to_iteration_time() {
        for backend in [BackendKind::Sim, BackendKind::Threaded] {
            let r = run_traced(backend, 8);
            let sum = r.phase_virtual.total();
            assert!(
                (sum - r.iteration_time_total).abs() <= 0.01 * r.iteration_time_total,
                "{backend}: phase sum {sum} vs iteration total {}",
                r.iteration_time_total
            );
            assert!(r.iteration_time_total > 0.0);
        }
    }

    #[test]
    fn jsonl_export_is_deterministic() {
        let a = run_traced(BackendKind::Sim, 6);
        let b = run_traced(BackendKind::Sim, 6);
        let ja = export::jsonl(telemetry(&a).trace.events());
        let jb = export::jsonl(telemetry(&b).trace.events());
        assert_eq!(ja, jb, "same seed must export byte-identical JSONL");
        assert!(!ja.is_empty());
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let r = run_traced(BackendKind::Sim, 6);
        let chrome = export::chrome_trace(telemetry(&r).trace.events());
        export::validate_json(&chrome).expect("chrome trace must be valid JSON");
    }

    #[test]
    fn disabling_telemetry_reproduces_the_e2e_report() {
        // The tracing flag must be observability-only: the same scenario
        // with telemetry off is the e2e run, bit for bit.
        let jobs = 6;
        let traced = run_traced(BackendKind::Sim, jobs);
        let plain = e2e::run_backend(BackendKind::Sim, jobs);
        assert_eq!(traced.latencies(), plain.latencies());
        assert_eq!(traced.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(traced.events_processed, plain.events_processed);
    }
}
