//! Ablations of the design choices DESIGN.md calls out.
//!
//! * chunk granularity vs latency/decode cost,
//! * timeout margin vs latency/wasted work,
//! * random vs Cauchy vs Vandermonde parity conditioning,
//! * predictor choice end-to-end.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_cluster::{ClusterSim, ClusterSpec};
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::s2c2::{S2c2Mode, S2c2Strategy};
use s2c2_core::strategy::MatvecStrategy;
use s2c2_linalg::solve::condition_number_1;
use s2c2_linalg::structured::{cauchy, cauchy_parity_nodes, vandermonde};
use s2c2_linalg::{Matrix, Vector};
use s2c2_predict::arima::{ArimaModel, ArimaOrder};
use s2c2_trace::{CloudTraceConfig, TraceSet};

fn run_s2c2(
    a: &Matrix,
    params: MdsParams,
    chunks: usize,
    predictor: &PredictorSource,
    cluster: ClusterSpec,
    iters: usize,
    margin: f64,
) -> (f64, usize, f64) {
    let mut strategy = S2c2Strategy::new(a, params, chunks, S2c2Mode::General, predictor, params.n)
        .expect("valid configuration");
    strategy.set_timeout_margin(margin);
    let mut sim = ClusterSim::new(cluster);
    let x = Vector::filled(a.cols(), 1.0);
    let mut latency = 0.0;
    let mut wasted = 0usize;
    for iter in 0..iters {
        let out = strategy
            .run_iteration(&mut sim, iter, &x)
            .expect("iteration succeeds");
        latency += out.metrics.latency;
        wasted += out.metrics.total_wasted_rows();
    }
    (latency, wasted, strategy.misprediction_rate())
}

/// Chunk-granularity ablation: more chunks ⇒ finer allocation (less
/// quantization waste) but more decode systems.
#[must_use]
pub fn chunk_granularity(scale: Scale) -> Table {
    let rows = scale.pick(576, 2880);
    let cols = scale.pick(48, 192);
    let iters = scale.pick(6, 15);
    let a = Matrix::from_fn(rows, cols, |r, c| ((r * 3 + c * 7) % 17) as f64 - 8.0);
    let mut table = Table::new(
        "Ablation — chunks per partition (s2c2-general(12,6), 2 stragglers)",
        vec![
            "total latency".into(),
            "wasted rows".into(),
            "misprediction rate".into(),
        ],
    );
    for chunks in [1usize, 2, 4, 8, 16, 32] {
        let cluster = common::controlled_cluster(12, 2, 0xAB1);
        let (latency, wasted, mispred) = run_s2c2(
            &a,
            MdsParams::new(12, 6),
            chunks,
            &PredictorSource::LastValue,
            cluster,
            iters,
            0.15,
        );
        table.push_row(
            format!("{chunks} chunks"),
            vec![latency, wasted as f64, mispred],
        );
    }
    table
}

/// Timeout-margin ablation on a volatile cloud.
#[must_use]
pub fn timeout_margin(scale: Scale) -> Table {
    let rows = scale.pick(560, 2100);
    let cols = scale.pick(56, 210);
    let iters = scale.pick(8, 20);
    let a = Matrix::from_fn(rows, cols, |r, c| ((r + c * 3) % 13) as f64 - 6.0);
    let mut table = Table::new(
        "Ablation — timeout margin (s2c2-general(10,7), volatile cloud)",
        vec![
            "total latency".into(),
            "wasted rows".into(),
            "misprediction rate".into(),
        ],
    );
    for margin in [0.05, 0.10, 0.15, 0.30, 0.50] {
        let cluster = common::cloud_cluster(10, &CloudTraceConfig::volatile(), 0xAB2);
        let (latency, wasted, mispred) = run_s2c2(
            &a,
            MdsParams::new(10, 7),
            14,
            &PredictorSource::LastValue,
            cluster,
            iters,
            margin,
        );
        table.push_row(
            format!("margin {margin:.2}"),
            vec![latency, wasted as f64, mispred],
        );
    }
    table
}

/// Parity-construction conditioning ablation: worst observed condition
/// number of full-size decode submatrices for each construction.
#[must_use]
pub fn parity_conditioning(_scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation — decode-system conditioning (worst κ₁ over leading submatrices)",
        vec!["random".into(), "cauchy".into(), "vandermonde".into()],
    );
    for (n, k) in [(12usize, 10usize), (12, 6), (10, 7), (50, 40)] {
        let m = n - k;
        // Random parity: same construction as MdsCode.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xAB3);
        let random = Matrix::from_fn(m, k, |_, _| loop {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            if v.abs() > 1e-3 {
                break v;
            }
        });
        let (x, y) = cauchy_parity_nodes(n, k);
        let cauchy_parity = cauchy(&x, &y);
        let vander_points: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
        let vander = vandermonde(&vander_points, k);

        // Worst case over a few m×m column selections (leading, trailing,
        // strided) — the shapes decode actually inverts.
        let kappa = |p: &Matrix| -> f64 {
            let mut worst: f64 = 0.0;
            let selections: Vec<Vec<usize>> = vec![
                (0..m).collect(),
                (k - m..k).collect(),
                (0..m).map(|i| i * (k / m).max(1)).collect(),
            ];
            for sel in selections {
                let sub = Matrix::from_fn(m, m, |r, c| p.get(r, sel[c].min(k - 1)));
                if let Ok(cnum) = condition_number_1(&sub) {
                    worst = worst.max(cnum);
                }
            }
            worst
        };
        table.push_row(
            format!("({n},{k})"),
            vec![kappa(&random), kappa(&cauchy_parity), kappa(&vander)],
        );
    }
    table
}

/// Predictor-choice ablation: end-to-end S²C² latency under each source.
#[must_use]
pub fn predictor_choice(scale: Scale) -> Table {
    let rows = scale.pick(560, 2100);
    let cols = scale.pick(56, 210);
    let iters = scale.pick(8, 20);
    let a = Matrix::from_fn(rows, cols, |r, c| ((r * 5 + c) % 11) as f64 - 5.0);
    let preset = CloudTraceConfig::volatile();

    // Trained models.
    let traces = TraceSet::generate(&preset, 20, 160, 0xAB4);
    let series: Vec<Vec<f64>> = traces
        .traces()
        .iter()
        .map(|t| t.samples().to_vec())
        .collect();
    let refs: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();
    let ar1 = ArimaModel::fit(ArimaOrder::Ar1, &refs);
    let lstm = common::lstm_predictor(&preset, 0xAB4);

    let sources: Vec<(&str, PredictorSource)> = vec![
        ("uniform", PredictorSource::Uniform),
        ("last-value", PredictorSource::LastValue),
        (
            "arima(1,0,0)",
            PredictorSource::Prototype(Box::new(ar1.online())),
        ),
        ("lstm", lstm),
        ("oracle", PredictorSource::Oracle),
    ];

    let mut table = Table::new(
        "Ablation — predictor choice (s2c2-general(10,7), volatile cloud)",
        vec!["total latency".into(), "misprediction rate".into()],
    );
    for (label, source) in sources {
        let cluster = common::cloud_cluster(10, &preset, 0xAB5);
        let (latency, _wasted, mispred) =
            run_s2c2(&a, MdsParams::new(10, 7), 14, &source, cluster, iters, 0.15);
        table.push_row(label, vec![latency, mispred]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_chunks_reduce_latency() {
        // Coarse chunking cannot adapt (a cancelled worker's chunk has no
        // alternative host), so the scheduler ends up waiting out
        // stragglers; finer chunking shortens the rounds.
        let t = chunk_granularity(Scale::Quick);
        let coarse = t.value("1 chunks", "total latency");
        let fine = t.value("32 chunks", "total latency");
        assert!(
            fine < coarse,
            "finer chunks should cut latency: {coarse} vs {fine}"
        );
    }

    #[test]
    fn random_parity_is_best_conditioned_at_scale() {
        let t = parity_conditioning(Scale::Quick);
        let rand_k = t.value("(50,40)", "random");
        let cauchy_k = t.value("(50,40)", "cauchy");
        assert!(
            rand_k * 1e3 < cauchy_k,
            "random κ {rand_k:.3e} should beat Cauchy κ {cauchy_k:.3e} by orders of magnitude"
        );
    }

    #[test]
    fn oracle_is_lower_bound_among_predictors() {
        let t = predictor_choice(Scale::Quick);
        let oracle = t.value("oracle", "total latency");
        for rival in ["uniform", "last-value", "lstm"] {
            let v = t.value(rival, "total latency");
            assert!(oracle <= v * 1.02, "oracle {oracle} vs {rival} {v}");
        }
    }

    #[test]
    fn tight_margins_mispredict_more() {
        let t = timeout_margin(Scale::Quick);
        let tight = t.value("margin 0.05", "misprediction rate");
        let loose = t.value("margin 0.50", "misprediction rate");
        assert!(tight >= loose, "tight {tight} vs loose {loose}");
    }
}
