//! The `e2e` experiment: the serve engine's execution backends compared
//! on one recurring-matrix trace workload.
//!
//! A trace of jobs drawn from the standard presets (each preset carries
//! one model matrix identity, so the stream re-submits the same models
//! over and over) is served three times:
//!
//! * **sim** — the timing-only backend: the schedule, no numerics;
//! * **sim-verified** — master-side numerics: every completed iteration
//!   is decoded from the timing model's worker coverage and checked
//!   against a sequential `A·x` reference;
//! * **threaded** — real OS-thread workers: the same chunk tasks are
//!   dispatched to a [`s2c2_cluster::threaded::ThreadedCluster`],
//!   cancelled in step with the §4.3 recovery ladder, and decoded from
//!   actual worker replies.
//!
//! Virtual latencies are backend-independent by construction (the table
//! shows it); what the numeric rows add is proof the schedule *computes
//! the right answers* — verified iteration counts, the worst observed
//! decode error, and the encode-cache hit rate showing recurring jobs
//! skip re-encoding.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::prelude::*;

/// Pool size (small: the threaded row spawns one OS thread per worker).
pub const POOL: usize = 8;
/// Injected 5×-slow stragglers.
pub const STRAGGLERS: usize = 1;
/// Workload seed.
pub const SEED: u64 = 0x0E2E;

/// Builds the recurring-matrix trace workload: presets cycle, so every
/// job re-submits one of three model matrices.
#[must_use]
pub fn trace_workload(jobs: usize) -> Vec<(f64, JobSpec)> {
    let instants: Vec<f64> = (0..jobs).map(|i| 0.4 * i as f64).collect();
    generate_workload(
        &ArrivalPattern::Trace(instants),
        &JobPreset::standard_mix(),
        jobs,
        3,
        POOL,
        SEED,
    )
}

/// Runs the canonical e2e scenario under one backend.
///
/// # Panics
///
/// Panics if the engine rejects the configuration, the run stalls, or a
/// numeric backend fails verification — all must hold on every commit.
#[must_use]
pub fn run_backend(backend: BackendKind, jobs: usize) -> ServiceReport {
    let pool = common::controlled_cluster(POOL, STRAGGLERS, SEED);
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.backend = backend;
    ServiceEngine::new(pool, cfg)
        .expect("e2e configuration is valid")
        .run(&trace_workload(jobs))
        .expect("e2e run completes and verifies")
}

/// Runs the e2e experiment.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let jobs = scale.pick(10, 30);
    let mut table = Table::new(
        format!(
            "E2E — execution backends on a {jobs}-job recurring-matrix trace, \
             {POOL}-worker pool ({STRAGGLERS} straggler)"
        ),
        vec![
            "p50_latency".into(),
            "p99_latency".into(),
            "completed".into(),
            "verified_iters".into(),
            "cache_hits".into(),
            "cache_misses".into(),
            "cache_hit_rate".into(),
            "max_decode_err".into(),
        ],
    );
    for backend in [
        BackendKind::Sim,
        BackendKind::SimVerified,
        BackendKind::Threaded,
    ] {
        let r = run_backend(backend, jobs);
        assert_eq!(
            r.completed(),
            jobs,
            "{backend} backend must serve every job"
        );
        table.push_row(
            backend.to_string(),
            vec![
                r.latency_percentile(50.0),
                r.latency_percentile(99.0),
                r.completed() as f64,
                r.verified_iterations as f64,
                r.encode_cache_hits as f64,
                r.encode_cache_misses as f64,
                r.encode_cache_hit_rate(),
                r.max_decode_error,
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_backend_independent() {
        let t = run(Scale::Quick);
        for col in ["p50_latency", "p99_latency", "completed"] {
            let sim = t.value("sim", col);
            let verified = t.value("sim-verified", col);
            let threaded = t.value("threaded", col);
            assert_eq!(sim, verified, "{col} must not depend on the backend");
            assert_eq!(sim, threaded, "{col} must not depend on the backend");
        }
    }

    #[test]
    fn recurring_trace_hits_the_encode_cache() {
        let t = run(Scale::Quick);
        for row in ["sim-verified", "threaded"] {
            assert!(
                t.value(row, "cache_hit_rate") > 0.0,
                "{row}: recurring matrices must hit the cache"
            );
            // Three presets -> exactly three encodings; the rest hit.
            assert_eq!(t.value(row, "cache_misses"), 3.0, "{row}");
        }
        assert_eq!(t.value("sim", "cache_hit_rate"), 0.0, "sim never encodes");
    }

    #[test]
    fn numeric_backends_verify_every_iteration() {
        let t = run(Scale::Quick);
        assert_eq!(t.value("sim", "verified_iters"), 0.0);
        let verified = t.value("sim-verified", "verified_iters");
        assert!(verified > 0.0);
        assert_eq!(t.value("threaded", "verified_iters"), verified);
        for row in ["sim-verified", "threaded"] {
            assert!(
                t.value(row, "max_decode_err") < 1e-6,
                "{row}: decode must match the sequential reference"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a, b);
    }
}
